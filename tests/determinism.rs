//! Determinism guarantees: correlation maps are reproducible run-to-run.
//!
//! Thread scheduling varies between runs, but the master groups TCM rounds by
//! interval number (not arrival order), sampling decisions are pure functions of
//! sequence numbers, and the workloads are seeded — so the recovered maps must be
//! bit-identical across repeated runs.

use std::sync::Arc;

use jessy::prelude::*;
use jessy::workloads::{barnes_hut, lu, sor, water};

fn run_once(kind: WorkloadKind) -> Tcm {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(4));
    config.intervals_per_round = 2;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .build();
    match kind {
        WorkloadKind::Sor => {
            let cfg = sor::SorConfig::small();
            let h = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| sor::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::BarnesHut => {
            let cfg = barnes_hut::BhConfig::small();
            let h = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::WaterSpatial => {
            let cfg = water::WaterConfig::small();
            let h = Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| water::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::Lu => {
            let cfg = lu::LuConfig::small();
            let h = Arc::new(cluster.init(|ctx| lu::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| lu::thread_body(jt, &cfg, &h));
        }
    }
    cluster.master_output().unwrap().tcm.clone()
}

#[test]
fn sor_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::Sor);
    let b = run_once(WorkloadKind::Sor);
    assert_eq!(a.raw(), b.raw(), "SOR map must be bit-identical across runs");
    assert!(a.total() > 0.0);
}

#[test]
fn barnes_hut_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::BarnesHut);
    let b = run_once(WorkloadKind::BarnesHut);
    assert_eq!(a.raw(), b.raw());
}

#[test]
fn lu_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::Lu);
    let b = run_once(WorkloadKind::Lu);
    assert_eq!(a.raw(), b.raw());
}

#[test]
fn water_tcm_is_reproducible_in_structure() {
    // Water's rebind phase takes per-box locks whose acquisition order varies with
    // scheduling, so its OAL stream is only structurally stable: assert the maps agree
    // to within a tight tolerance rather than bit-exactly.
    let a = run_once(WorkloadKind::WaterSpatial);
    let b = run_once(WorkloadKind::WaterSpatial);
    let acc = jessy::core::accuracy_abs(&a, &b);
    assert!(acc > 0.95, "water maps diverged: {acc}");
}
