//! Determinism guarantees: correlation maps are reproducible run-to-run.
//!
//! Thread scheduling varies between runs, but the master groups TCM rounds by
//! interval number (not arrival order), sampling decisions are pure functions of
//! sequence numbers, and the workloads are seeded — so the recovered maps must be
//! bit-identical across repeated runs.

use std::sync::Arc;

use jessy::prelude::*;
use jessy::workloads::{barnes_hut, lu, phase_shift, sessions, sor, water};
use proptest::prelude::*;

fn run_once(kind: WorkloadKind) -> Tcm {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(4));
    config.intervals_per_round = 2;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .build();
    match kind {
        WorkloadKind::Sor => {
            let cfg = sor::SorConfig::small();
            let h = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| sor::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::BarnesHut => {
            let cfg = barnes_hut::BhConfig::small();
            let h = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::WaterSpatial => {
            let cfg = water::WaterConfig::small();
            let h = Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| water::thread_body(jt, &cfg, &h));
        }
        WorkloadKind::Lu => {
            let cfg = lu::LuConfig::small();
            let h = Arc::new(cluster.init(|ctx| lu::setup(ctx, &cfg, 4, 2)));
            cluster.run(move |jt| lu::thread_body(jt, &cfg, &h));
        }
        // The drift-era workloads have their own reproducibility properties
        // below (journal + drift trajectory included, drift watching on).
        WorkloadKind::PhaseShift => {
            phase_shift::run_on(&mut cluster, phase_shift::PhaseShiftConfig::small());
        }
        WorkloadKind::Sessions => {
            sessions::run_on(&mut cluster, sessions::SessionsConfig::small());
        }
    }
    cluster.master_output().unwrap().tcm.clone()
}

#[test]
fn sor_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::Sor);
    let b = run_once(WorkloadKind::Sor);
    assert_eq!(a.raw(), b.raw(), "SOR map must be bit-identical across runs");
    assert!(a.total() > 0.0);
}

#[test]
fn barnes_hut_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::BarnesHut);
    let b = run_once(WorkloadKind::BarnesHut);
    assert_eq!(a.raw(), b.raw());
}

#[test]
fn lu_tcm_is_reproducible() {
    let a = run_once(WorkloadKind::Lu);
    let b = run_once(WorkloadKind::Lu);
    assert_eq!(a.raw(), b.raw());
}

#[test]
fn water_tcm_is_reproducible_in_structure() {
    // Water's rebind phase takes per-box locks whose acquisition order varies with
    // scheduling, so its OAL stream is only structurally stable: assert the maps agree
    // to within a tight tolerance rather than bit-exactly.
    let a = run_once(WorkloadKind::WaterSpatial);
    let b = run_once(WorkloadKind::WaterSpatial);
    let acc = jessy::core::accuracy_abs(&a, &b);
    assert!(acc > 0.95, "water maps diverged: {acc}");
}

// ---------------------------------------------------------------- drift-era
// workloads. Phase-shift and sessions stress the controller (a mid-run flip,
// Zipf-skewed short-lived sessions), so reproducibility is asserted with drift
// watching ON and over the full observable surface: TCM bits, the canonical
// journal, and the drift/re-activation trajectory itself.

/// Drift-watching profiler used by the reproducibility properties.
fn drift_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.adaptive_threshold = Some(0.1);
    config.drift_threshold = Some(0.3);
    config.drift_hysteresis_rounds = 2;
    config.drift_max_reactivations = 8;
    config
}

/// One traced run: (journal lines, TCM bits, drift re-activations).
fn traced_run(body: impl FnOnce(&mut Cluster) -> RunReport) -> (String, Vec<f64>, u64) {
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(drift_profiler())
        .trace(sink.clone())
        .build();
    let report = body(&mut cluster);
    let master = report.master.as_ref().expect("master ran");
    (
        to_json_lines(&sink.sorted_events()),
        master.tcm.raw().to_vec(),
        master.drift_reactivations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Phase-shift is reproducible for any flip point — including the journal
    /// and the drift trajectory, which is what replay/debugging leans on.
    #[test]
    fn phase_shift_runs_are_reproducible(flip_round in 2usize..8) {
        let cfg = phase_shift::PhaseShiftConfig {
            flip_round,
            ..phase_shift::PhaseShiftConfig::small()
        };
        let a = traced_run(|c| phase_shift::run_on(c, cfg));
        let b = traced_run(|c| phase_shift::run_on(c, cfg));
        prop_assert_eq!(a.1, b.1, "TCM must be bit-identical");
        prop_assert_eq!(a.2, b.2, "drift trajectory must replay");
        prop_assert_eq!(a.0, b.0, "journals must match line for line");
    }

    /// Sessions is reproducible for any workload seed and skew: every random
    /// draw is keyed by (seed, thread, session), never by scheduling.
    #[test]
    fn sessions_runs_are_reproducible(seed in 0u64..1_000_000, zipf_s in 0.5f64..1.5) {
        let cfg = sessions::SessionsConfig {
            seed,
            zipf_s,
            ..sessions::SessionsConfig::small()
        };
        let a = traced_run(|c| sessions::run_on(c, cfg));
        let b = traced_run(|c| sessions::run_on(c, cfg));
        prop_assert_eq!(a.1, b.1, "TCM must be bit-identical");
        prop_assert_eq!(a.2, b.2, "drift trajectory must replay");
        prop_assert_eq!(a.0, b.0, "journals must match line for line");
    }
}
