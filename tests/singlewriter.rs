//! Differential property test for the single-writer heap refactor.
//!
//! Drives arbitrary access/sync/migration schedules through the refactored engine
//! (`Gos` + packed `ThreadSpace` arenas, epoch-lazy arming, version-based
//! invalidation) and the retained seed engine (`gos::heap::reference::ReferenceGos`,
//! the pre-refactor `RwLock`/`Arc`/`Mutex` layout with eager state transitions), and
//! asserts the two are observationally identical: every `AccessOutcome`, every
//! post-op access state, the home payloads and versions, the per-interval OAL
//! streams a mimicked at-most-once profiler would emit, and the final TCM —
//! bit-for-bit.

use std::collections::HashSet;

use proptest::prelude::*;

use jessy::core::oal::{Oal, OalEntry};
use jessy::core::TcmBuilder;
use jessy::gos::heap::reference::ReferenceGos;
use jessy::gos::protocol::ConsistencyModel;
use jessy::gos::{CostModel, Gos, GosConfig, ObjectId, ThreadSpace};
use jessy::net::{ClockBoard, ClockHandle, LatencyModel, NodeId, ThreadId};

/// One step of a schedule, in raw indices (resolved modulo the actual counts).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Thread `t` reads or writes object `o`; writes store a value derived from `val`.
    Access { t: usize, o: usize, write: bool, val: u32 },
    /// Thread `t` releases (flush), acquires (apply notices) and opens an interval.
    Sync { t: usize },
    /// Relocate object `o`'s home to node `dest % n_nodes`.
    MigrateHome { o: usize, dest: usize },
    /// Thread `t` migrates to node `dest % n_nodes`, dropping its heap and
    /// prefetching a fixed sticky slice at the new node.
    ThreadMigrate { t: usize, dest: usize },
}

/// Decode a raw generated tuple into an op (~7/11 accesses, 2/11 syncs, 1/11 each
/// migration flavour — roughly the paper workloads' sync-to-access ratio).
fn decode(raw: (u32, usize, usize, u32)) -> Op {
    let (k, a, b, val) = raw;
    match k {
        0..=6 => Op::Access { t: a, o: b, write: k % 2 == 0, val },
        7 | 8 => Op::Sync { t: a },
        9 => Op::MigrateHome { o: b, dest: a },
        _ => Op::ThreadMigrate { t: a, dest: b },
    }
}

/// Per-thread mimic of the profiler bookkeeping, kept symmetric on both engines.
struct Mimic {
    node_of: Vec<u16>,
    logged: Vec<HashSet<ObjectId>>,
    interval: Vec<u64>,
    cur_new: Vec<Vec<OalEntry>>,
    cur_ref: Vec<Vec<OalEntry>>,
    ref_candidates: Vec<Vec<ObjectId>>,
    oals_new: Vec<Oal>,
    oals_ref: Vec<Oal>,
}

impl Mimic {
    fn new(n_threads: usize, n_nodes: usize) -> Self {
        Mimic {
            node_of: (0..n_threads).map(|t| (t % n_nodes) as u16).collect(),
            logged: vec![HashSet::new(); n_threads],
            interval: vec![0; n_threads],
            cur_new: vec![Vec::new(); n_threads],
            cur_ref: vec![Vec::new(); n_threads],
            ref_candidates: vec![Vec::new(); n_threads],
            oals_new: Vec::new(),
            oals_ref: Vec::new(),
        }
    }
}

/// Flush + acquire + interval turnover for thread `t`, asserting both engines agree.
fn do_sync(
    t: usize,
    g: &Gos,
    r: &ReferenceGos,
    clocks: &[ClockHandle],
    spaces: &mut [ThreadSpace],
    m: &mut Mimic,
) -> Result<(), String> {
    let node = NodeId(m.node_of[t]);
    let tid = ThreadId(t as u32);
    prop_assert_eq!(
        g.flush_thread(&mut spaces[t], node, &clocks[t]),
        r.flush_thread(tid, node),
        "flush count diverged for thread {}",
        t
    );
    prop_assert_eq!(
        g.apply_notices(&mut spaces[t], node, &clocks[t]),
        r.apply_notices(tid, node),
        "notice count diverged for thread {}",
        t
    );
    m.oals_new.push(Oal {
        thread: tid,
        interval: m.interval[t],
        entries: std::mem::take(&mut m.cur_new[t]),
    });
    m.oals_ref.push(Oal {
        thread: tid,
        interval: m.interval[t],
        entries: std::mem::take(&mut m.cur_ref[t]),
    });
    m.logged[t].clear();
    m.interval[t] += 1;
    // Interval open: the refactored side armed lazily at log time; the seed walks
    // the previous interval's logged set now.
    spaces[t].begin_interval();
    r.set_false_invalid(tid, std::mem::take(&mut m.ref_candidates[t]));
    prop_assert_eq!(
        spaces[t].populated(),
        r.populated(tid),
        "populated count diverged for thread {}",
        t
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The refactored access path is observationally identical to the seed path.
    #[test]
    fn refactored_path_matches_seed_reference(
        n_nodes in 2usize..4,
        n_threads in 2usize..5,
        object_specs in prop::collection::vec((0u32..2, 2u32..8, 0usize..4, 0u32..2), 3..12),
        raw_ops in prop::collection::vec((0u32..11, 0usize..8, 0usize..16, 0u32..1000), 0..120),
    ) {
        let g = Gos::new(GosConfig {
            n_nodes,
            n_threads,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let r = ReferenceGos::new(n_nodes, n_threads);
        let board = ClockBoard::new(n_threads);
        let clocks: Vec<ClockHandle> = (0..n_threads)
            .map(|i| board.handle(ThreadId(i as u32)))
            .collect();
        let mut spaces: Vec<ThreadSpace> = (0..n_threads)
            .map(|i| ThreadSpace::new(ThreadId(i as u32)))
            .collect();

        // Identical class registrations and allocation order on both engines give
        // identical ids, element sequence numbers and sampled tags.
        let sc_n = g.classes().register_scalar("S", 2);
        let ar_n = g.classes().register_array("A[]", 1);
        let sc_r = r.classes().register_scalar("S", 2);
        let ar_r = r.classes().register_array("A[]", 1);
        prop_assert_eq!(sc_n, sc_r);
        prop_assert_eq!(ar_n, ar_r);
        let mut objs: Vec<ObjectId> = Vec::new();
        for &(is_array, len, home, sampled) in &object_specs {
            let node = NodeId((home % n_nodes) as u16);
            let (id_n, id_r) = if is_array == 1 {
                (
                    g.alloc_array(node, ar_n, len, &clocks[0], None).id,
                    r.alloc_array(node, ar_r, len, None).id,
                )
            } else {
                (
                    g.alloc_scalar(node, sc_n, &clocks[0], None).id,
                    r.alloc_scalar(node, sc_r, None).id,
                )
            };
            prop_assert_eq!(id_n, id_r);
            g.object(id_n).set_sampled(sampled == 1);
            r.object(id_r).set_sampled(sampled == 1);
            objs.push(id_n);
        }
        // The cluster freezes the table before threads run; exercise that path too.
        g.freeze_object_table();

        let mut m = Mimic::new(n_threads, n_nodes);

        for &raw in &raw_ops {
            let op = decode(raw);
            match op {
                Op::Access { t, o, write, val } => {
                    let t = t % n_threads;
                    let obj = objs[o % objs.len()];
                    let node = NodeId(m.node_of[t]);
                    let tid = ThreadId(t as u32);
                    let (out_n, out_r) = if write {
                        let w = |d: &mut [f64]| {
                            let i = val as usize % d.len();
                            d[i] = f64::from(val) + 1.0;
                        };
                        (
                            g.write(&mut spaces[t], node, obj, &clocks[t], w).1,
                            r.write(tid, node, obj, w).1,
                        )
                    } else {
                        (
                            g.read(&mut spaces[t], node, obj, &clocks[t], |_| {}).1,
                            r.read(tid, node, obj, |_| {}).1,
                        )
                    };
                    prop_assert_eq!(out_n, out_r, "outcome diverged on {:?}", op);
                    prop_assert_eq!(
                        spaces[t].access_state(obj),
                        r.access_state(tid, obj),
                        "access state diverged on {:?}",
                        op
                    );
                    // Profiler mimic: at-most-once log of sampled objects, with
                    // false-invalid rearming for the next interval.
                    if out_n.sampled && m.logged[t].insert(obj) {
                        m.cur_new[t].push(OalEntry {
                            obj: out_n.obj,
                            class: out_n.class,
                            bytes: out_n.payload_bytes as u64,
                        });
                        m.cur_ref[t].push(OalEntry {
                            obj: out_r.obj,
                            class: out_r.class,
                            bytes: out_r.payload_bytes as u64,
                        });
                        spaces[t].arm_next_interval(obj);
                        m.ref_candidates[t].push(obj);
                    }
                }
                Op::Sync { t } => {
                    do_sync(t % n_threads, &g, &r, &clocks, &mut spaces, &mut m)?;
                }
                Op::MigrateHome { o, dest } => {
                    let obj = objs[o % objs.len()];
                    let dest = NodeId((dest % n_nodes) as u16);
                    prop_assert_eq!(
                        g.migrate_home(obj, dest, &clocks[0]),
                        r.migrate_home(obj, dest),
                        "migrate_home diverged on {:?}",
                        op
                    );
                }
                Op::ThreadMigrate { t, dest } => {
                    let t = t % n_threads;
                    let tid = ThreadId(t as u32);
                    let src = NodeId(m.node_of[t]);
                    g.drop_thread_cache(&mut spaces[t], src, &clocks[t]);
                    r.drop_thread_cache(tid, src);
                    prop_assert_eq!(spaces[t].populated(), 0);
                    prop_assert_eq!(r.populated(tid), 0);
                    // Armed traps (and pending next-interval arms) are heap state:
                    // dropping the heap drops them on both engines.
                    m.ref_candidates[t].clear();
                    m.node_of[t] = (dest % n_nodes) as u16;
                    let dest = NodeId(m.node_of[t]);
                    // Sticky-set prefetch of a deterministic slice at the new node.
                    let sticky: Vec<ObjectId> = objs.iter().take(3).copied().collect();
                    prop_assert_eq!(
                        g.prefetch_into(&mut spaces[t], dest, sticky.iter().copied(), &clocks[t]),
                        r.prefetch_into(tid, dest, sticky.iter().copied()),
                        "prefetch bytes diverged on {:?}",
                        op
                    );
                }
            }
        }

        // Drain: every thread releases, acquires and closes its last interval.
        for t in 0..n_threads {
            do_sync(t, &g, &r, &clocks, &mut spaces, &mut m)?;
        }

        // Home copies and versions are bit-identical.
        for &obj in &objs {
            let (cn, cr) = (g.object(obj), r.object(obj));
            prop_assert_eq!(cn.home(), cr.home(), "{} home diverged", obj);
            prop_assert_eq!(cn.version(), cr.version(), "{} version diverged", obj);
            let bits_n: Vec<u64> = cn.snapshot_home().iter().map(|v| v.to_bits()).collect();
            let bits_r: Vec<u64> = cr.snapshot_home().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits_n, bits_r, "{} home payload diverged", obj);
        }

        // The OAL streams match exactly, and so do the TCMs they reduce to.
        prop_assert_eq!(&m.oals_new, &m.oals_ref);
        let mut tb_n = TcmBuilder::new(n_threads);
        let mut tb_r = TcmBuilder::new(n_threads);
        for oal in &m.oals_new {
            tb_n.ingest(oal);
        }
        for oal in &m.oals_ref {
            tb_r.ingest(oal);
        }
        tb_n.close_round();
        tb_r.close_round();
        let bits_n: Vec<u64> = tb_n.tcm().raw().iter().map(|v| v.to_bits()).collect();
        let bits_r: Vec<u64> = tb_r.tcm().raw().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_n, bits_r, "TCM diverged");
    }
}
