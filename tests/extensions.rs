//! Integration tests for the extensions built on the paper's Section V agenda:
//! connectivity prefetching, the dynamic balancer, home-effect analysis, the
//! distributed TCM reduction, and PCCT profiling — all driven together.

use std::sync::Arc;

use jessy::core::distributed::ShardedTcmReducer;
use jessy::core::{HomeAwareAnalyzer, Pcct, TcmBuilder};
use jessy::prelude::*;
use jessy::workloads::{barnes_hut, lu, sor};

fn fast_cluster(nodes: usize, threads: usize, profiler: ProfilerConfig) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads(threads)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler)
        .build()
}

#[test]
fn connectivity_prefetch_reduces_faults_without_changing_results() {
    let run = |depth: u32| {
        let cfg = barnes_hut::BhConfig::small();
        let mut cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .prefetch_depth(depth)
            .profiler(ProfilerConfig::disabled())
            .build();
        let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 4, 2));
        let h = Arc::new(handles.clone());
        cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &h));
        let mut reader = cluster.adopt_thread(ThreadId(0));
        let positions: Vec<f64> = handles
            .bodies
            .iter()
            .map(|&b| reader.read(b, |d| d[1] + d[2] + d[3]))
            .collect();
        (cluster.report(), positions)
    };
    let (plain, pos_plain) = run(0);
    let (prefetched, pos_pre) = run(2);
    assert!(
        prefetched.proto.real_faults < plain.proto.real_faults,
        "prefetch must absorb faults: {} vs {}",
        prefetched.proto.real_faults,
        plain.proto.real_faults
    );
    assert!(prefetched.proto.objects_prefetched > 0);
    // Numerical results identical: prefetching is a pure transport optimization.
    for (a, b) in pos_plain.iter().zip(&pos_pre) {
        assert_eq!(a, b, "prefetching altered the computation");
    }
}

#[test]
fn sharded_reduction_matches_the_master_on_a_real_oal_stream() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.record_oals = true;
    let mut cluster = fast_cluster(2, 4, config);
    let cfg = sor::SorConfig::small();
    let handles = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 2)));
    cluster.run(move |jt| sor::thread_body(jt, &cfg, &handles));
    let master = cluster.master_output().unwrap();

    // Rebuild centrally (single round — grouping differs from the master's
    // per-interval rounds, so compare against the same single-round rebuild).
    let mut central = TcmBuilder::new(4);
    for oal in &master.oal_log {
        central.ingest(oal);
    }
    central.close_round();

    let mut sharded = ShardedTcmReducer::new(8, 4);
    for oal in &master.oal_log {
        sharded.ingest(oal);
    }
    sharded.close_round();
    assert_eq!(sharded.reduce().raw(), central.tcm().raw());
    assert!(central.tcm().total() > 0.0);
}

#[test]
fn home_analysis_on_lu_recommends_nothing_for_owner_homed_blocks() {
    // LU homes every block at its owner's node; the analyzer should find only
    // borderline candidates (wavefront reads), never the owner's own blocks.
    let mut config = ProfilerConfig::ground_truth();
    config.record_oals = true;
    let mut cluster = fast_cluster(2, 4, config);
    let cfg = lu::LuConfig::small();
    let handles = cluster.init(|ctx| lu::setup(ctx, &cfg, 4, 2));
    let h = Arc::new(handles.clone());
    cluster.run(move |jt| lu::thread_body(jt, &cfg, &h));
    let master = cluster.master_output().unwrap();

    let placement: Vec<NodeId> = (0..4).map(|t| cluster.shared().node_of(ThreadId(t))).collect();
    let mut analyzer = HomeAwareAnalyzer::new(2, 4);
    for oal in &master.oal_log {
        analyzer.ingest(oal, &placement);
    }
    let report = analyzer.build(&cluster.shared().gos, &placement);
    // A recommendation is only valid if the destination strictly out-pulls the
    // current home — verify the invariant on whatever was recommended.
    for rec in &report.recommendations {
        assert!(rec.accesses_at_dest > 0);
        assert_ne!(rec.from, rec.to);
    }
    // The realizable + stranded split always covers the whole pairwise mass.
    assert!(report.stranded_fraction() >= 0.0 && report.stranded_fraction() <= 1.0);
}

#[test]
fn pcct_profiles_the_workloads_call_structure() {
    // Drive a PCCT from the same stacks the invariants miner uses: BH pushes
    // bh.simulate → bh.computeForces / bh.integrate phase frames.
    let mut cluster = fast_cluster(1, 1, ProfilerConfig::disabled());
    let cfg = barnes_hut::BhConfig {
        n_bodies: 64,
        rounds: 2,
        ..barnes_hut::BhConfig::small()
    };
    let handles = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 1, 1)));
    let pcct_out: Arc<parking_lot::Mutex<Pcct>> = Arc::new(parking_lot::Mutex::new(Pcct::new()));
    let out = Arc::clone(&pcct_out);
    cluster.run(move |jt| {
        // Sample the stack at every phase by interleaving with the workload manually:
        // run one round, sample, run the next.
        jt.push_frame(handles.method);
        jt.set_local_ref(0, handles.space);
        let mut pcct = Pcct::new();
        for _ in 0..cfg.rounds {
            barnes_hut::build_tree(jt, &cfg, &handles);
            jt.barrier();
            jt.push_frame(handles.force_method);
            pcct.record(jt.stack().frames().map(|f| f.method()));
            jt.pop_frame();
            jt.barrier();
            pcct.record(jt.stack().frames().map(|f| f.method()));
            jt.barrier();
        }
        jt.pop_frame();
        *out.lock() = pcct;
    });
    let pcct = pcct_out.lock();
    assert_eq!(pcct.samples(), 2 * cfg.rounds as u64);
    assert!(pcct.contexts() >= 2, "simulate and simulate→computeForces");
    let hot = pcct.hot_contexts(3);
    assert!(!hot.is_empty());
}

#[test]
fn full_self_optimizing_pipeline() {
    // Everything at once: scattered placement + tracking + dynamic rebalancing +
    // prefetched migrations. The run must finish coherent (SOR equals its reference)
    // even while threads migrate under it.
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .placement((0..8).map(|t| NodeId((t % 4) as u16)).collect())
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .prefetch_depth(1)
        .profiler(config)
        .rebalance(jessy::runtime::RebalanceConfig {
            after_rounds: 4,
            with_prefetch: true,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 1e18,
            ..Default::default()
        })
        .build();
    let cfg = sor::SorConfig {
        n: 64,
        m: 32,
        rounds: 8,
        omega: 1.25,
    };
    let handles = cluster.init(|ctx| sor::setup(ctx, &cfg, 8, 4));
    let h = Arc::new(handles.clone());
    cluster.run(move |jt| sor::thread_body(jt, &cfg, &h));

    // Coherence under migration: final grid equals the sequential reference.
    let reference = sor::reference(&cfg);
    let ref_sum: f64 = reference.iter().flatten().sum();
    let mut reader = cluster.adopt_thread(ThreadId(0));
    let sum = sor::checksum(&mut reader, &handles);
    assert!(
        (sum - ref_sum).abs() < 1e-9 * ref_sum.abs().max(1.0),
        "self-optimization corrupted the computation: {sum} vs {ref_sum}"
    );
}
