//! Cross-crate integration tests: the whole system driven through the `jessy` facade.

use std::sync::Arc;

use jessy::pagedsm::{InducedTcmBuilder, PageLayout};
use jessy::prelude::*;
use jessy::workloads::{barnes_hut, sor, water};

fn fast_cluster(nodes: usize, threads: usize, profiler: ProfilerConfig) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads(threads)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler)
        .build()
}

#[test]
fn all_three_workloads_run_with_the_full_profiler_stack() {
    for kind in WorkloadKind::ALL {
        let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
        config.footprint = Some(FootprintConfig {
            mode: FootprintMode::Timer(1_000_000),
            min_gap: 1,
        });
        config.stack = Some(StackSamplingConfig {
            gap_ns: 1_000_000,
            lazy_extraction: true,
        });
        let mut cluster = fast_cluster(2, 4, config);
        let report = kind.run_on(&mut cluster, WorkloadPreset::Small);
        assert!(report.proto.accesses > 0, "{kind:?}: no accesses");
        assert!(
            report.profiler.intervals_closed > 0,
            "{kind:?}: no intervals"
        );
        let master = report.master.expect("profiling on");
        assert!(master.oals_ingested > 0, "{kind:?}: no OALs reached master");
        assert!(master.tcm.total() >= 0.0);
    }
}

#[test]
fn profiling_overhead_is_bounded_on_simulated_time() {
    // The paper's headline: enabling correlation tracking costs at most a few percent
    // of execution time. Compare simulated times with realistic cost models.
    let run = |profiler: ProfilerConfig| {
        let mut cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .profiler(profiler)
            .build();
        sor::run_on(&mut cluster, sor::SorConfig::small())
    };
    let base = run(ProfilerConfig::disabled());
    let tracked = run(ProfilerConfig::tracking_at(SamplingRate::NX(1)));
    let overhead = tracked.overhead_pct(&base);
    // At this toy problem size the fixed per-interval profiling work is amortized over
    // very little compute, so the bound is loose; the paper-scale band (a few percent)
    // is asserted by the table2/table3 benches at Table I sizes.
    assert!(
        overhead < 30.0,
        "correlation tracking overhead {overhead:.2}% out of band"
    );
    assert!(base.sim_exec_ns > 0);
}

#[test]
fn oal_traffic_is_a_small_fraction_of_gos_traffic() {
    // Table III's shape: OAL volume is a few percent of GOS volume below full
    // sampling for fine/medium-grained workloads.
    let mut cluster = fast_cluster(4, 4, ProfilerConfig::tracking_at(SamplingRate::NX(1)));
    let report = barnes_hut::run_on(&mut cluster, barnes_hut::BhConfig::small());
    let frac = report.net.oal_over_gos();
    assert!(frac > 0.0, "OAL traffic must exist");
    assert!(frac < 0.25, "OAL traffic fraction {frac} out of band");
}

#[test]
fn page_grain_replay_blurs_the_inherent_pattern() {
    // Fig. 1 end to end through the facade.
    let n_threads = 8;
    let mut config = ProfilerConfig::ground_truth();
    config.record_oals = true;
    let mut cluster = fast_cluster(2, n_threads, config);
    let cfg = barnes_hut::BhConfig::small();
    let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, 2));
    let handles = Arc::new(handles);
    cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &handles));

    let master = cluster.master_output().unwrap();
    let layout = PageLayout::from_gos(&cluster.shared().gos);
    let mut induced = InducedTcmBuilder::new(n_threads);
    for oal in &master.oal_log {
        induced.ingest(oal, &layout);
    }
    let induced = induced.build();

    let contrast = |tcm: &Tcm| {
        let half = n_threads / 2;
        let (mut intra, mut cross) = (1e-12, 1e-12);
        for i in 1..n_threads {
            for j in (i + 1)..n_threads {
                let v = tcm.at(ThreadId(i as u32), ThreadId(j as u32));
                if (i < half) == (j < half) {
                    intra += v;
                } else {
                    cross += v;
                }
            }
        }
        intra / cross
    };
    let inherent_contrast = contrast(&master.tcm);
    let induced_contrast = contrast(&induced);
    assert!(
        inherent_contrast > 2.0 * induced_contrast,
        "page grain must blur the galaxy structure: inherent {inherent_contrast:.1}x vs induced {induced_contrast:.1}x"
    );
}

#[test]
fn reports_and_maps_serialize() {
    let mut cluster = fast_cluster(2, 2, ProfilerConfig::tracking_at(SamplingRate::Full));
    let report = water::run_on(&mut cluster, water::WaterConfig::small());
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("sim_exec_ns"));
    let tcm = report.master.as_ref().unwrap().tcm.clone();
    let json = serde_json::to_string(&tcm).unwrap();
    let back: Tcm = serde_json::from_str(&json).unwrap();
    assert_eq!(back.raw(), tcm.raw());
}

#[test]
fn prelude_quickstart_shape() {
    // The README snippet, kept honest.
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(ProfilerConfig::tracking_at(SamplingRate::NX(1)))
        .build();
    let report = sor::run_on(&mut cluster, sor::SorConfig::small());
    let tcm = &report.master.as_ref().unwrap().tcm;
    assert!(tcm.total() > 0.0);
}

#[test]
fn migration_cost_model_matches_ground_truth_end_to_end() {
    // Predicted sticky faults (without prefetch) == observed re-faults after a real
    // migration; with prefetch they vanish. The validation Section III promises.
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.footprint = Some(FootprintConfig {
        mode: FootprintMode::Nonstop,
        min_gap: 1,
    });
    config.stack = Some(StackSamplingConfig {
        gap_ns: 0,
        lazy_extraction: true,
    });
    let mut cluster = fast_cluster(2, 1, config);
    let (method, chain) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Node", 4);
        let method = ctx.register_method("walk", 1);
        let ids: Vec<ObjectId> = (0..8).map(|_| ctx.alloc_scalar_at(NodeId(0), class).id).collect();
        for w in ids.windows(2) {
            ctx.add_ref(w[0], w[1]);
        }
        (method, ids)
    });
    let chain_run = chain.clone();
    let observed: Arc<parking_lot::Mutex<(usize, usize)>> =
        Arc::new(parking_lot::Mutex::new((0, 0)));
    let obs = Arc::clone(&observed);
    cluster.run(move |jt| {
        jt.push_frame(method);
        jt.set_local_ref(0, chain_run[0]);
        for _ in 0..3 {
            for _pass in 0..2 {
                for &o in &chain_run {
                    jt.read(o, |_| {});
                }
            }
            jt.barrier();
        }
        let predicted = jt.profiler().resolve_sticky(jt.gos(), jt.clock());
        let report = jt.migrate_to(NodeId(1), true);
        // Re-walk the chain: count the objects that would really fault after the
        // prefetched migration (each chain object is touched exactly once).
        let faults_after = jessy::runtime::migration::count_would_fault(
            jt.gos(),
            jt.space(),
            jt.node(),
            chain_run.iter().copied(),
        );
        *obs.lock() = (predicted.selected.len().min(report.prefetched_objects), faults_after);
    });
    let (prefetched, faults_after) = *observed.lock();
    assert!(prefetched >= 6, "most of the chain predicted sticky: {prefetched}");
    assert_eq!(
        faults_after,
        8 - prefetched,
        "every non-prefetched chain object faults, every prefetched one hits"
    );
}
