//! Property-based tests over the core invariants (proptest).

use std::collections::HashMap;

use proptest::prelude::*;

use jessy::core::oal::{Oal, OalEntry};
use jessy::core::sampling::{multiples_in, GapTable};
use jessy::core::sticky::resolution::resolve_sticky_set;
use jessy::core::stack_sampling::StackSampler;
use jessy::core::{accuracy_abs, e_abs, e_euc, SamplingRate, StackSamplingConfig, Tcm, TcmBuilder};
use jessy::gos::prime::{is_prime, nearest_prime};
use jessy::gos::twin::Diff;
use jessy::gos::{ClassId, CostModel, Gos, GosConfig, ObjectId};
use jessy::net::{ClockBoard, LatencyModel, NodeId, ThreadId};
use jessy::runtime::{LoadBalancer, MoveFilter};
use jessy::stack::{JavaStack, MethodId, Slot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------------------------------------------------------------- primes & gaps

    #[test]
    fn nearest_prime_is_prime_and_closest(n in 2u64..1_000_000) {
        let p = nearest_prime(n);
        prop_assert!(is_prime(p));
        let d = p.abs_diff(n);
        // No prime strictly closer; at equal distance the upward one wins.
        for q in n.saturating_sub(d)..=(n + d) {
            if is_prime(q) {
                prop_assert!(q.abs_diff(n) >= d, "prime {q} closer to {n} than {p}");
                if q.abs_diff(n) == d {
                    prop_assert!(p >= n || q == p, "tie must break upward: {n} -> {p}, rival {q}");
                }
            }
        }
    }

    #[test]
    fn multiples_in_matches_brute_force(start in 0u64..10_000, len in 0u64..500, gap in 1u64..600) {
        let brute = (start..start + len).filter(|x| x % gap == 0).count() as u64;
        prop_assert_eq!(multiples_in(start, len, gap), brute);
    }

    #[test]
    fn scaled_bytes_estimator_is_unbiased_over_cycles(
        unit_bytes in prop::sample::select(vec![8usize, 64, 512]),
        rate_n in prop::sample::select(vec![1u32, 2, 4, 8]),
        lens in prop::collection::vec(1u32..32, 500..1500),
    ) {
        let gaps = GapTable::new(4096);
        let class = ClassId(0);
        gaps.register_class(class, unit_bytes, SamplingRate::NX(rate_n));
        let mut seq = 0u64;
        let mut scaled = 0u64;
        let mut truth = 0u64;
        for len in &lens {
            scaled += gaps.scaled_bytes(class, seq, *len);
            truth += *len as u64 * unit_bytes as u64;
            seq += *len as u64;
        }
        // Exactly unbiased over full gap cycles; allow the partial-cycle remainder.
        let gap = gaps.state(class).real_gap;
        let slack = gap as f64 * unit_bytes as f64 * 32.0 / truth as f64;
        let err = (scaled as f64 - truth as f64).abs() / truth as f64;
        prop_assert!(err <= slack + 0.05, "bias {err} (slack {slack}) at gap {gap}");
    }

    // ---------------------------------------------------------------- twin/diff

    #[test]
    fn diff_roundtrip_reconstructs_any_mutation(
        base in prop::collection::vec(-1e6f64..1e6, 1..200),
        writes in prop::collection::vec((0usize..200, -1e6f64..1e6), 0..50),
    ) {
        let twin = base.clone();
        let mut current = base.clone();
        for (idx, v) in &writes {
            if *idx < current.len() {
                current[*idx] = *v;
            }
        }
        let diff = Diff::compute(&twin, &current);
        let mut home = twin.clone();
        diff.apply(&mut home);
        prop_assert_eq!(home, current);
        prop_assert!(diff.changed_words() <= writes.len());
    }

    #[test]
    fn diff_wire_bytes_never_exceed_full_payload_much(
        base in prop::collection::vec(0f64..10.0, 1..128),
    ) {
        // Worst case (everything changed): one run, 8 bytes overhead.
        let changed: Vec<f64> = base.iter().map(|v| v + 1.0).collect();
        let diff = Diff::compute(&base, &changed);
        prop_assert!(diff.wire_bytes() <= base.len() * 8 + 8);
    }

    // ---------------------------------------------------------------- TCM & metrics

    #[test]
    fn tcm_builder_is_permutation_invariant(
        accesses in prop::collection::vec((0u32..6, 0u32..20, 1u64..1000), 1..60),
        seed in 0u64..1000,
    ) {
        let to_oals = |acc: &[(u32, u32, u64)]| -> Vec<Oal> {
            acc.iter()
                .map(|(t, o, b)| Oal {
                    thread: ThreadId(*t),
                    interval: 0,
                    entries: vec![OalEntry { obj: ObjectId(*o), class: ClassId(0), bytes: *b }],
                })
                .collect()
        };
        let mut fwd = TcmBuilder::new(6);
        for oal in to_oals(&accesses) {
            fwd.ingest(&oal);
        }
        fwd.close_round();

        // Deterministic shuffle from the seed.
        let mut shuffled = accesses.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut rev = TcmBuilder::new(6);
        for oal in to_oals(&shuffled) {
            rev.ingest(&oal);
        }
        rev.close_round();
        prop_assert_eq!(fwd.tcm().raw(), rev.tcm().raw());
    }

    #[test]
    fn distance_metrics_behave_like_distances(
        pairs in prop::collection::vec((0u32..5, 0u32..5, 0f64..1e6), 1..20),
        scale in 0.1f64..3.0,
    ) {
        let mut a = Tcm::new(5);
        for (i, j, v) in &pairs {
            a.add_pair(ThreadId(*i), ThreadId(*j), *v);
        }
        // Identity.
        prop_assert!(e_abs(&a, &a).abs() < 1e-12);
        prop_assert!(e_euc(&a, &a).abs() < 1e-12);
        if a.total() > 0.0 {
            // Pure rescaling: both metrics equal |1 - scale|.
            let mut b = a.clone();
            b.scale(scale);
            prop_assert!((e_abs(&b, &a) - (scale - 1.0).abs()).abs() < 1e-9);
            prop_assert!((e_euc(&b, &a) - (scale - 1.0).abs()).abs() < 1e-9);
            // Accuracy is clamped into [0, 1].
            let acc = accuracy_abs(&b, &a);
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    // ---------------------------------------------------------------- balancer

    #[test]
    fn balancer_plan_is_balanced_and_deterministic(
        pairs in prop::collection::vec((0u32..8, 0u32..8, 1f64..1e6), 0..24),
        n_nodes in 1usize..5,
    ) {
        let mut tcm = Tcm::new(8);
        for (i, j, v) in &pairs {
            tcm.add_pair(ThreadId(*i), ThreadId(*j), *v);
        }
        let lb = LoadBalancer::new();
        let plan = lb.plan(&tcm, n_nodes);
        prop_assert_eq!(plan.placement.len(), 8);
        let cap = 8usize.div_ceil(n_nodes);
        for node in 0..n_nodes {
            let load = plan.placement.iter().filter(|p| p.index() == node).count();
            prop_assert!(load <= cap, "node {node} overloaded: {load} > {cap}");
        }
        prop_assert!((0.0..=1.0).contains(&plan.intra_fraction));
        // Determinism.
        let plan2 = lb.plan(&tcm, n_nodes);
        prop_assert_eq!(plan.placement, plan2.placement);
    }

    #[test]
    fn balancer_plan_is_view_agnostic_and_order_invariant(
        pairs in prop::collection::vec((0u32..8, 0u32..8, 1u64..1_000_000), 0..24),
        n_nodes in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Integer-valued weights: per-cell accumulation is exact however the
        // insertions are ordered, so any plan difference is the planner's fault.
        let mut tcm = Tcm::new(8);
        for (i, j, v) in &pairs {
            tcm.add_pair(ThreadId(*i), ThreadId(*j), *v as f64);
        }
        let mut shuffled = pairs.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut reordered = Tcm::new(8);
        for (i, j, v) in &shuffled {
            reordered.add_pair(ThreadId(*i), ThreadId(*j), *v as f64);
        }
        let lb = LoadBalancer::new();
        let dense = lb.plan(&tcm, n_nodes);
        // Same correlation structure through a different backend (sparse cells)
        // or built in a different order must yield the identical plan: the
        // partitioner's determinism may not lean on the packed-triangle layout.
        let sparse = lb.plan(&tcm.to_sparse(), n_nodes);
        prop_assert_eq!(&dense.placement, &sparse.placement, "dense vs sparse view");
        let reordered = lb.plan(&reordered, n_nodes);
        prop_assert_eq!(&dense.placement, &reordered.placement, "insertion order leaked");
    }

    #[test]
    fn refinement_never_scores_below_its_seed(
        pairs in prop::collection::vec((0u32..8, 0u32..8, 1u64..1_000_000), 0..24),
        n_nodes in 1usize..5,
    ) {
        let mut tcm = Tcm::new(8);
        for (i, j, v) in &pairs {
            tcm.add_pair(ThreadId(*i), ThreadId(*j), *v as f64);
        }
        let lb = LoadBalancer::new();
        let seed_plan = lb.greedy_seed(&tcm, n_nodes);
        let out = lb.refine(&tcm, n_nodes, &seed_plan.placement, &MoveFilter::default());
        let refined = lb.intra_fraction(&tcm, &out.placement);
        // Refinement only applies exact positive-gain steps, so it can never
        // hand back a placement worse than the greedy seed it started from.
        prop_assert!(
            refined >= seed_plan.intra_fraction - 1e-9,
            "refine lost mass: {} -> {}", seed_plan.intra_fraction, refined
        );
        // And it must still respect capacity.
        let cap = 8usize.div_ceil(n_nodes);
        for node in 0..n_nodes {
            let load = out.placement.iter().filter(|p| p.index() == node).count();
            prop_assert!(load <= cap, "node {node} overloaded after refine");
        }
    }

    #[test]
    fn topk_plan_stays_within_the_noise_of_dense(
        n_cliques in 2usize..5,
        members in 2usize..4,
        noise in prop::collection::vec((0u32..16, 0u32..16), 0..12),
    ) {
        // Clique-structured truth: heavy intra-clique mass plus unit cross noise.
        // The top-k head is sized to hold every heavy edge, so a plan drawn from
        // it can only lose what the noise it dropped was worth.
        let n = n_cliques * members;
        let heavy = 1_000.0;
        let mut tcm = Tcm::new(n);
        let mut heavy_edges = 0usize;
        for c in 0..n_cliques {
            for a in 0..members {
                for b in (a + 1)..members {
                    let i = (c * members + a) as u32;
                    let j = (c * members + b) as u32;
                    tcm.add_pair(ThreadId(i), ThreadId(j), heavy);
                    heavy_edges += 1;
                }
            }
        }
        let mut noise_mass = 0.0;
        for (a, b) in &noise {
            let (a, b) = (*a as usize % n, *b as usize % n);
            if a != b && a / members != b / members {
                tcm.add_pair(ThreadId(a as u32), ThreadId(b as u32), 1.0);
                noise_mass += 2.0; // both endpoints, matching Tcm::total()
            }
        }
        let mut topk = jessy::core::TopKPairs::new(n, heavy_edges);
        topk.observe_round(&tcm.to_sparse(), |_| 0.0);
        let lb = LoadBalancer::new();
        let dense_plan = lb.plan(&tcm, n_cliques);
        let topk_plan = lb.plan(&topk, n_cliques);
        // Score BOTH on the dense truth the top-k planner never saw.
        let dense_intra = lb.intra_fraction(&tcm, &dense_plan.placement);
        let topk_intra = lb.intra_fraction(&tcm, &topk_plan.placement);
        let bound = noise_mass / tcm.total();
        prop_assert!(
            topk_intra >= dense_intra - bound - 1e-9,
            "top-k plan fell past the noise bound: {topk_intra} < {dense_intra} - {bound}"
        );
    }

    // ---------------------------------------------------------------- sticky resolution

    #[test]
    fn resolution_selects_unique_objects_and_respects_budget(
        n in 2usize..40,
        extra_edges in prop::collection::vec((0usize..40, 0usize..40), 0..30),
        budget_bytes in 0u64..4000,
    ) {
        let gos = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 1,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let class = gos.classes().register_scalar("N", 2);
        let gaps = GapTable::new(4096);
        gaps.register_class(class, 16, SamplingRate::Full);
        let ids: Vec<ObjectId> = (0..n)
            .map(|_| {
                let c = gos.alloc_scalar(NodeId(0), class, &clock, None);
                c.set_sampled(true);
                c.id
            })
            .collect();
        for w in ids.windows(2) {
            gos.object(w[0]).add_ref(w[1]);
        }
        for (a, b) in &extra_edges {
            if *a < n && *b < n {
                gos.object(ids[*a]).add_ref(ids[*b]);
            }
        }
        let budget = HashMap::from([(class, budget_bytes)]);
        let res = resolve_sticky_set(&gos, &gaps, &ids[..1], &budget, 2.0, &clock);
        // Uniqueness.
        let mut seen = res.selected.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), res.selected.len(), "duplicates selected");
        // Budget semantics (everything sampled at gap 1 → scaled == payload bytes).
        let collected = res.collected.get(&class).copied().unwrap_or(0);
        if res.budget_met && budget_bytes > 0 {
            prop_assert!(collected >= budget_bytes);
            // Stops as soon as satisfied: no more than one object's overshoot.
            prop_assert!(collected < budget_bytes + 16);
        }
        prop_assert_eq!(res.total_bytes, res.selected.len() as u64 * 16);
    }
}

// ---------------------------------------------------------------- stack sampler

// Random stack operations; after a sample, force-compare every frame by popping one
// frame per sample — every reported invariant for the then-top frame must match its
// live slot content.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stack_sampler_invariants_are_sound(
        ops in prop::collection::vec(0u8..4, 1..80),
        refs in prop::collection::vec(0u32..50, 80),
    ) {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let costs = CostModel::free();
        let mut stack = JavaStack::new();
        let mut sampler = StackSampler::new(StackSamplingConfig { gap_ns: 0, lazy_extraction: true });
        stack.push_raw(MethodId(0), 3);

        for (k, op) in ops.iter().enumerate() {
            match op {
                0 => { stack.push_raw(MethodId(1), 3); }
                1 => if stack.depth() > 1 { stack.pop(); },
                2 => {
                    let slot = k % 3;
                    stack.set_local(slot, Slot::Ref(ObjectId(refs[k % refs.len()])));
                }
                _ => sampler.sample(&mut stack, &clock, &costs),
            }
        }

        // Drain: sample + pop until empty; at each step the first-visited (top) frame
        // was just compared, so its invariants must match live content.
        while stack.depth() > 0 {
            sampler.sample(&mut stack, &clock, &costs);
            let top_depth = stack.depth() - 1;
            for inv in sampler.invariants() {
                if inv.depth == top_depth {
                    let live = stack.frame(top_depth).slot(inv.slot).as_ref_obj();
                    prop_assert_eq!(live, Some(inv.obj),
                        "stale invariant at depth {} slot {}", inv.depth, inv.slot);
                }
            }
            stack.pop();
        }
    }
}

// ---------------------------------------------------------------- distributed TCM

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_reduction_is_exact_for_any_stream(
        accesses in prop::collection::vec((0u32..8, 0u32..64, 1u64..500), 1..120),
        n_shards in 1usize..9,
    ) {
        use jessy::core::distributed::ShardedTcmReducer;
        let oals: Vec<jessy::core::Oal> = accesses
            .iter()
            .map(|(t, o, b)| jessy::core::Oal {
                thread: ThreadId(*t),
                interval: 0,
                entries: vec![jessy::core::OalEntry {
                    obj: ObjectId(*o),
                    class: ClassId(0),
                    bytes: *b,
                }],
            })
            .collect();
        let mut central = TcmBuilder::new(8);
        for o in &oals {
            central.ingest(o);
        }
        central.close_round();
        let mut sharded = ShardedTcmReducer::new(n_shards, 8);
        for o in &oals {
            sharded.ingest(o);
        }
        sharded.close_round();
        let reduced = sharded.reduce();
        prop_assert_eq!(reduced.raw(), central.tcm().raw());
    }

    /// Chaos variant: the same *degraded* OAL stream — shuffled out of order,
    /// partially dropped, with duplicated batches — fed to the centralized builder
    /// and the sharded reducer must still produce bit-identical maps, with round
    /// closes interleaved mid-stream. All perturbations derive from a seeded hash,
    /// so every failure replays exactly.
    #[test]
    fn sharded_reduction_survives_shuffled_dropped_duplicated_streams(
        raw in prop::collection::vec(
            (0u32..8, 0u64..6, prop::collection::vec((0u32..40, 1u64..500), 0..6)),
            1..80,
        ),
        n_shards in 1usize..9,
        seed in 0u64..1_000_000_000,
        drop_mod in 2u64..8,
        dup_mod in 2u64..8,
    ) {
        use jessy::core::distributed::ShardedTcmReducer;
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        // Base stream, then seeded chaos: drop ~1/drop_mod, duplicate ~1/dup_mod.
        let mut stream: Vec<jessy::core::Oal> = Vec::new();
        for (k, (t, i, es)) in raw.iter().enumerate() {
            let oal = jessy::core::Oal {
                thread: ThreadId(*t),
                interval: *i,
                entries: es
                    .iter()
                    .map(|&(o, b)| jessy::core::OalEntry {
                        obj: ObjectId(o),
                        class: ClassId(0),
                        bytes: b,
                    })
                    .collect(),
            };
            let h = mix(seed ^ k as u64);
            if h.is_multiple_of(drop_mod) {
                continue;
            }
            if h % dup_mod == 1 {
                stream.push(oal.clone());
            }
            stream.push(oal);
        }
        // Seeded Fisher–Yates shuffle: arrival order is adversarial but replayable.
        for i in (1..stream.len()).rev() {
            let j = (mix(seed.wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            stream.swap(i, j);
        }
        let mut central = TcmBuilder::new(8);
        let mut sharded = ShardedTcmReducer::new(n_shards, 8);
        for (k, o) in stream.iter().enumerate() {
            central.ingest(o);
            sharded.ingest(o);
            if k % 7 == 6 {
                central.close_round();
                sharded.close_round();
            }
        }
        central.close_round();
        sharded.close_round();
        let reduced = sharded.reduce();
        prop_assert_eq!(reduced.raw(), central.tcm().raw());
    }

    /// The optimized pipeline (thread bitsets, packed-triangular maps, sparse
    /// per-class maps, scoped-thread shard closes) must be **bit-identical** to the
    /// retained scalar reference — the seed's `Vec<ThreadId>` + dense-matrix
    /// implementation — over arbitrary OAL streams: multi-class, multi-interval
    /// (duplicate thread/object loggings), closed over multiple rounds. OAL bytes
    /// are integer-valued f64 with per-cell sums far below 2⁵³, so f64 accrual is
    /// exact and no ordering choice may perturb a single bit. Also closes shards in
    /// a seeded shuffled order (adversarial completion order) and merges by shard
    /// index, which must reproduce the serial round map exactly.
    #[test]
    fn bitset_triangular_parallel_reduction_matches_scalar_reference(
        raw in prop::collection::vec(
            (0u32..8, 0u64..4, prop::collection::vec((0u32..48, 0u32..3, 1u64..100_000), 0..6)),
            2..80,
        ),
        n_shards in 2usize..9,
        seed in 0u64..1_000_000_000,
    ) {
        use jessy::core::distributed::{merge_round_summaries, ShardedTcmReducer};
        use jessy::core::tcm::reference::ScalarTcmBuilder;
        use jessy::core::RoundSummary;
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let t = ThreadId;
        let oals: Vec<jessy::core::Oal> = raw
            .iter()
            .map(|(th, i, es)| jessy::core::Oal {
                thread: ThreadId(*th),
                interval: *i,
                entries: es
                    .iter()
                    .map(|&(o, c, b)| jessy::core::OalEntry {
                        obj: ObjectId(o),
                        class: ClassId(c as u16),
                        bytes: b,
                    })
                    .collect(),
            })
            .collect();

        let mut scalar = ScalarTcmBuilder::new(8);
        let mut serial = TcmBuilder::new(8);
        let mut parallel = ShardedTcmReducer::new(n_shards, 8);
        parallel.set_parallel_threshold(0); // force scoped threads even on tiny rounds
        let half = oals.len() / 2;
        for chunk in [&oals[..half], &oals[half..]] {
            for o in chunk {
                scalar.ingest(o);
                serial.ingest(o);
                parallel.ingest(o);
            }
            let rs = scalar.close_round();
            let ss = serial.close_round();
            let (_, ps) = parallel.close_round();
            // Serial bitset pipeline == parallel shard pipeline, bit for bit.
            prop_assert_eq!(ss.tcm.raw(), ps.tcm.raw());
            prop_assert_eq!(&ss.per_class, &ps.per_class);
            // Both == the scalar reference at every pair.
            prop_assert_eq!(rs.per_class.len(), ss.per_class.len());
            for i in 0..8u32 {
                for j in 0..8u32 {
                    prop_assert_eq!(
                        ss.tcm.at(t(i), t(j)).to_bits(),
                        rs.tcm.at(t(i), t(j)).to_bits(),
                        "round map pair ({}, {})", i, j
                    );
                }
            }
            for (class, dense) in &rs.per_class {
                let sparse = &ss.per_class[class];
                for i in 0..8u32 {
                    for j in 0..8u32 {
                        prop_assert_eq!(
                            sparse.at(t(i), t(j)).to_bits(),
                            dense.at(t(i), t(j)).to_bits(),
                            "class {:?} pair ({}, {})", class, i, j
                        );
                    }
                }
            }
        }
        // Cumulative maps agree too.
        let reduced = parallel.reduce();
        prop_assert_eq!(serial.tcm().raw(), reduced.raw());
        for i in 0..8u32 {
            for j in 0..8u32 {
                prop_assert_eq!(
                    serial.tcm().at(t(i), t(j)).to_bits(),
                    scalar.tcm().at(t(i), t(j)).to_bits()
                );
            }
        }

        // Shuffled shard-close order (arbitrary completion order) + index-order
        // merge reproduces the serial round summary exactly.
        let mut serial2 = TcmBuilder::new(8);
        let mut r2 = ShardedTcmReducer::new(n_shards, 8);
        for o in &oals {
            serial2.ingest(o);
            r2.ingest(o);
        }
        let expect = serial2.close_round();
        let mut shards = r2.into_shards();
        let mut order: Vec<usize> = (0..shards.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (mix(seed ^ i as u64) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut by_shard: Vec<Option<RoundSummary>> = (0..shards.len()).map(|_| None).collect();
        for &s in &order {
            by_shard[s] = Some(shards[s].close_round());
        }
        let summaries: Vec<RoundSummary> = by_shard.into_iter().map(|s| s.unwrap()).collect();
        let merged = merge_round_summaries(8, &summaries);
        prop_assert_eq!(merged.objects, expect.objects);
        prop_assert_eq!(merged.tcm.raw(), expect.tcm.raw());
        prop_assert_eq!(&merged.per_class, &expect.per_class);
    }

    // ------------------------------------------------------------ LU numerics

    #[test]
    fn lu_reference_reconstructs_random_diagonally_dominant_matrices(seed in 0u64..500) {
        use jessy::workloads::lu::{reference, LuConfig};
        // The entry function is seed-independent, but sweep block/size combos.
        let combos = [(16usize, 4usize), (16, 8), (32, 8), (24, 8)];
        let (n, block) = combos[(seed % combos.len() as u64) as usize];
        let cfg = LuConfig { n, block };
        let nb = cfg.nb();
        let blocks = reference(&cfg);
        // Spot-check reconstruction at a few pseudo-random coordinates.
        let b = cfg.block;
        let entry = |bi: usize, bj: usize, e: usize| blocks[bi * nb + bj][e];
        let mut state = seed.wrapping_add(7);
        for _ in 0..16 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (state >> 33) as usize % n;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = (state >> 33) as usize % n;
            let mut dot = 0.0;
            for k in 0..=r.min(c) {
                // L is unit lower triangular, U upper; both packed into the blocks.
                let l = if k == r {
                    1.0
                } else {
                    entry(r / b, k / b, (r % b) * b + k % b)
                };
                let u = entry(k / b, c / b, (k % b) * b + c % b);
                dot += l * u;
            }
            let orig = if r == c {
                cfg.n as f64 + 1.0
            } else {
                ((r * 31 + c * 17) % 13) as f64 / 13.0
            };
            prop_assert!(
                (dot - orig).abs() < 1e-7 * (1.0 + orig.abs()),
                "A[{}][{}]: {} vs {}", r, c, dot, orig
            );
        }
    }

    // ------------------------------------------------------------ PCCT

    #[test]
    fn pcct_totals_are_consistent(paths in prop::collection::vec(prop::collection::vec(0u32..6, 1..6), 1..50)) {
        use jessy::core::Pcct;
        use jessy::stack::MethodId;
        let mut p = Pcct::new();
        for path in &paths {
            p.record(path.iter().map(|&m| MethodId(m)));
        }
        prop_assert_eq!(p.samples(), paths.len() as u64);
        // Sum of exclusive counts over hot contexts equals total samples.
        let hot = p.hot_contexts(usize::MAX);
        let total: u64 = hot.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, paths.len() as u64);
        // Every path's first method appears with inclusive count >= its occurrences
        // as a root.
        for path in &paths {
            prop_assert!(p.method_total(MethodId(path[0])) >= 1);
        }
    }
}

// ---------------------------------------------------------------- crash recovery

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PR 3 invariant: `ProfilerCheckpoint` — the coordinator snapshot a crashed
    /// master restores from — serializes and deserializes to an *identical* value
    /// over arbitrary coordinator states (arbitrary OAL streams driven through the
    /// real scheduler/controller/TCM machinery plus arbitrary report tails), and
    /// the restore path itself is an identity: a scheduler rebuilt from its
    /// snapshot re-snapshots equal, as does a restored adaptive controller.
    #[test]
    fn profiler_checkpoint_serde_roundtrip_is_identity(
        raw in prop::collection::vec(
            (0u32..6, 0u64..8, prop::collection::vec((0u32..40, 0u32..3, 1u64..500), 0..5)),
            1..60,
        ),
        ipr in 1u64..4,
        deadline_raw in 0u64..5, // 0 ⇒ no deadline
        quarantine_raw in prop::collection::vec(0u64..9, 6), // 8 ⇒ not quarantined
        epoch in 0u64..5,
        threshold in 0.01f64..0.5,
        coverage in prop::collection::vec(0.0f64..1.0, 0..8),
    ) {
        use jessy::core::sampling::ClassGapState;
        use jessy::core::BudgetedController;
        use jessy::core::TcmBuilder;
        use jessy::runtime::{
            AppliedRateChange, PlannedMigration, ProfilerCheckpoint, RoundScheduler,
            SkippedRateChange,
        };

        let oals: Vec<Oal> = raw
            .iter()
            .map(|(t, i, es)| Oal {
                thread: ThreadId(*t),
                interval: *i,
                entries: es
                    .iter()
                    .map(|&(o, c, b)| OalEntry {
                        obj: ObjectId(o),
                        class: ClassId(c as u16),
                        bytes: b,
                    })
                    .collect(),
            })
            .collect();

        // Drive the real machinery into an arbitrary mid-run state.
        let deadline = (deadline_raw > 0).then(|| deadline_raw - 1);
        let quarantine: Vec<Option<u64>> =
            quarantine_raw.iter().map(|&q| (q < 8).then_some(q)).collect();
        let mut sched = RoundScheduler::new(6, ipr, deadline);
        sched.set_quarantine(quarantine);
        let mut builder = TcmBuilder::new(6);
        let gaps = GapTable::new(4096);
        for c in 0..3u16 {
            gaps.register_class(ClassId(c), 64, SamplingRate::NX(2));
        }
        let mut ctl = BudgetedController::new(threshold, None);
        for (k, oal) in oals.iter().enumerate() {
            builder.ingest(oal);
            sched.ingest(oal.clone());
            if k % 5 == 4 {
                for closed in sched.ready_rounds() {
                    let summary = builder.close_round();
                    ctl.on_round(&summary.per_class, &gaps, closed.coverage, 0.0);
                }
            }
        }

        let rates: Vec<(ClassId, ClassGapState)> =
            (0..3u16).map(|c| (ClassId(c), gaps.state(ClassId(c)))).collect();
        let cp = ProfilerCheckpoint {
            epoch,
            rounds: sched.next_round(),
            tcm: builder.tcm().clone(),
            scheduler: sched.checkpoint(),
            controller: Some(ctl.checkpoint()),
            rates,
            oals: oals.len() as u64,
            objects_organized: raw.len() as u64 * 2,
            round_coverage: coverage,
            round_cost_fraction: vec![threshold / 2.0, 0.0],
            rate_changes: vec![AppliedRateChange {
                round: epoch,
                class_name: "Body".to_string(),
                new_rate: "4X".to_string(),
                relative_distance: threshold * 1.5,
                resampled_objects: raw.len(),
                drift: epoch % 2 == 1,
            }],
            skipped: vec![SkippedRateChange { round: epoch + 1, coverage: threshold }],
            planned_migrations: vec![PlannedMigration {
                thread: ThreadId(1),
                from: NodeId(0),
                to: NodeId(1),
                gain_bytes: threshold * 1e6,
                sticky_cost_bytes: threshold * 1e3,
            }],
            rebalanced: epoch % 2 == 0,
            last_moved_round: vec![None, Some(epoch), None, Some(epoch + 2), None, None],
            placement_telemetry: jessy::runtime::PlacementTelemetry {
                plans: epoch + 1,
                directives: 2,
                planned_bytes: threshold * 1e3,
                vetoed_gain: 1,
                vetoed_cooldown: epoch % 3,
                vetoed_cost: 0,
                vetoed_budget: 1,
                fenced_directives: 0,
                applied_migrations: 1,
                migrated_bytes: 4096,
                homes_migrated: 3,
                homes_repaired: 2,
                repaired_bytes: 512,
                intra_trajectory: vec![jessy::runtime::IntraSample {
                    round: epoch,
                    before: threshold / 2.0,
                    after: threshold,
                }],
            },
            oal_log: oals,
            timeline: vec![jessy::runtime::RoundTimeline {
                round: epoch,
                coverage: threshold,
                deadline_hit: epoch % 2 == 1,
                classes: vec![jessy::runtime::ClassRoundState {
                    class_name: "Body".to_string(),
                    rate: "4X".to_string(),
                    relative_distance: threshold,
                    converged: false,
                }],
            }],
        };

        // Serialize → deserialize is the identity, f64 bits included.
        let json = serde_json::to_string(&cp).expect("checkpoint serializes");
        let back: ProfilerCheckpoint = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &cp);

        // The restore path is also an identity: rebuild ∘ snapshot == snapshot.
        let rebuilt = RoundScheduler::from_checkpoint(&cp.scheduler);
        prop_assert_eq!(rebuilt.checkpoint(), cp.scheduler);
        let mut restored_ctl = BudgetedController::new(threshold, None);
        restored_ctl.restore(cp.controller.as_ref().unwrap());
        prop_assert_eq!(&restored_ctl.checkpoint(), cp.controller.as_ref().unwrap());
    }
}

// ---------------------------------------------------------------- profiler state machine

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive a single-thread profiler with random access/sync sequences and check the
    /// paper's core invariants: OAL entries are unique per interval (at-most-once),
    /// only sampled objects are logged, and every logged size is the gap-scaled
    /// amortized size.
    #[test]
    fn profiler_oals_respect_at_most_once_and_sampling(
        ops in prop::collection::vec((0u8..4, 0usize..12), 10..150),
    ) {
        use jessy::core::{ProfilerConfig, ProfilerShared, ThreadProfiler};
        let gos = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 1,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy::gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let mut space = jessy::gos::ThreadSpace::new(ThreadId(0));
        // 64-byte class at 8X → gap 8 → prime 7: objects 0 and 7 sampled.
        let shared = ProfilerShared::new(ProfilerConfig::tracking_at(
            jessy::core::SamplingRate::NX(8),
        ));
        let class = gos.classes().register_scalar("Body", 8);
        shared.register_class(class, 64);
        let gap = shared.gaps().gap(class);
        let objs: Vec<_> = (0..12)
            .map(|_| {
                let core = gos.alloc_scalar(NodeId(0), class, &clock, None);
                shared.tag_new_object(&core);
                core
            })
            .collect();
        let mut prof = ThreadProfiler::new(std::sync::Arc::clone(&shared), ThreadId(0));

        let mut oals = Vec::new();
        for (op, idx) in &ops {
            match op {
                0 | 1 => {
                    // Read or write the chosen object.
                    let id = objs[*idx].id;
                    let out = if *op == 0 {
                        gos.read(&mut space, NodeId(0), id, &clock, |_| {}).1
                    } else {
                        gos.write(&mut space, NodeId(0), id, &clock, |d| d[0] += 1.0).1
                    };
                    prof.on_access(&gos, &mut space, &out, &clock);
                }
                _ => {
                    // Sync point: close + flush + open.
                    if let Some(oal) = prof.close_interval() {
                        oals.push(oal);
                    }
                    gos.flush_thread(&mut space, NodeId(0), &clock);
                    gos.apply_notices(&mut space, NodeId(0), &clock);
                    prof.open_interval(&mut space);
                }
            }
        }
        if let Some(oal) = prof.close_interval() {
            oals.push(oal);
        }

        for oal in &oals {
            // At-most-once per interval.
            let mut ids: Vec<_> = oal.entries.iter().map(|e| e.obj).collect();
            ids.sort_unstable();
            let len_before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), len_before, "duplicate OAL entry in an interval");
            for e in &oal.entries {
                let core = gos.object(e.obj);
                prop_assert!(core.is_sampled(), "unsampled object {} logged", e.obj);
                prop_assert_eq!(e.bytes, 64 * gap, "gap-scaled amortized size");
            }
        }
        // Interval ids are strictly increasing.
        for w in oals.windows(2) {
            prop_assert!(w[0].interval < w[1].interval);
        }
    }
}
