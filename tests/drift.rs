//! End-to-end drift re-activation: the phase-shift workload flips its sharing
//! graph mid-run and the adaptive controller must notice — un-converge the
//! `Cell` class, walk the rate finer, and re-converge — while the pre-fix
//! frozen-forever baseline stays blind. The journal records the whole arc
//! (`ClassDrifted` → fresh `ClassConverged`), which `jessy_obs::drift_spans`
//! mines back into bounded re-convergence lags; the sessions workload feeds
//! the per-class waste analysis the same journal supports.

use jessy::net::{CrashWindow, FaultPlan, MasterCrashWindow, PartitionWindow};
use jessy::obs::EventKind;
use jessy::prelude::*;
use jessy::workloads::phase_shift::{self, PhaseShiftConfig};
use jessy::workloads::sessions::{self, SessionsConfig};

/// Adaptive profiler without drift watching — the pre-fix behavior.
fn frozen_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.adaptive_threshold = Some(0.1);
    config
}

/// The same profiler with post-convergence drift re-activation on.
fn drift_profiler() -> ProfilerConfig {
    let mut config = frozen_profiler();
    config.drift_threshold = Some(0.3);
    config.drift_hysteresis_rounds = 2;
    config.drift_max_reactivations = 8;
    config
}

fn run_phase_shift(
    profiler: ProfilerConfig,
    faults: Option<FaultPlan>,
    cfg: PhaseShiftConfig,
) -> (RunReport, Vec<TraceEvent>) {
    let sink = JournalSink::shared();
    let mut builder = Cluster::builder()
        .nodes(4)
        .threads(8)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler)
        .trace(sink.clone());
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut cluster = builder.build();
    let report = phase_shift::run_on(&mut cluster, cfg);
    (report, sink.sorted_events())
}

/// The Cell row of the last timeline round.
fn final_cell_state(report: &RunReport) -> ClassRoundStateView {
    let master = report.master.as_ref().expect("master ran");
    let last = master.timeline.last().expect("timeline recorded");
    let cell = last
        .classes
        .iter()
        .find(|c| c.class_name == "Cell")
        .expect("Cell class tracked");
    ClassRoundStateView {
        rate: cell.rate.clone(),
        converged: cell.converged,
    }
}

struct ClassRoundStateView {
    rate: String,
    converged: bool,
}

/// The headline end-to-end arc: flip → drift re-activation → finer rate →
/// re-convergence, all visible in the report *and* the journal.
#[test]
fn phase_flip_unfreezes_and_reconverges_the_cell_class() {
    let cfg = PhaseShiftConfig::small();
    let (report, events) = run_phase_shift(drift_profiler(), None, cfg);
    let master = report.master.as_ref().expect("master ran");

    assert!(
        master.drift_reactivations >= 1,
        "the flip must trip the drift detector"
    );
    let drift_changes: Vec<_> = master.rate_changes.iter().filter(|c| c.drift).collect();
    assert!(
        !drift_changes.is_empty(),
        "re-activation must surface as a drift-flagged rate change"
    );
    assert!(
        drift_changes
            .iter()
            .all(|c| c.class_name == "Cell" && c.round >= cfg.flip_round as u64),
        "only the flipped class drifts, and only after the flip: {drift_changes:?}"
    );

    // The journal tells the same story: a ClassDrifted span that closes.
    let spans = jessy::obs::drift_spans(&events);
    assert!(!spans.is_empty(), "journal must carry the drift span");
    let span = &spans[0];
    assert_eq!(span.class, "Cell");
    assert!(span.relative_distance > 0.3, "trip distance above threshold");
    let lag = span.lag().expect("phase B is long enough to re-converge");
    assert!(
        lag >= 1 && lag <= (cfg.rounds - cfg.flip_round) as u64,
        "bounded re-convergence lag, got {lag}"
    );

    // Timeline lag agrees and the class ends converged at a finer-than-initial rate.
    let timeline_lag = phase_shift::reconvergence_lag(&report, cfg.flip_round);
    assert!(timeline_lag >= 1, "timeline must show un-converged post-flip rounds");
    let cell = final_cell_state(&report);
    assert!(cell.converged, "Cell must re-converge before the run ends");
    assert_ne!(
        cell.rate, "1X",
        "phase B needs a finer gap than the phase-A convergence rate"
    );
}

/// The pre-fix baseline is blind: no re-activation, no drift events, lag 0 —
/// which is exactly the bug, not a virtue.
#[test]
fn frozen_baseline_never_reacts_to_the_flip() {
    let cfg = PhaseShiftConfig::small();
    let (report, events) = run_phase_shift(frozen_profiler(), None, cfg);
    let master = report.master.as_ref().expect("master ran");

    assert_eq!(master.drift_reactivations, 0);
    assert!(master.rate_changes.iter().all(|c| !c.drift));
    assert_eq!(
        phase_shift::reconvergence_lag(&report, cfg.flip_round),
        0,
        "frozen-forever never un-converges after the flip"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ClassDrifted { .. })),
        "no drift events without drift watching"
    );
    let cell = final_cell_state(&report);
    assert!(cell.converged);
    assert_eq!(cell.rate, "1X", "stale phase-A rate persists to the end");
}

/// A master crash in the middle of the phase change must not resurrect stale
/// convergence: the restored controller (checkpointed drift state + replayed
/// OALs) still re-activates and re-converges at a finer rate.
#[test]
fn master_crash_mid_phase_change_does_not_resurrect_stale_convergence() {
    let cfg = PhaseShiftConfig::small();
    let mut profiler = drift_profiler();
    profiler.checkpoint_every_rounds = Some(3);
    let plan = FaultPlan {
        // Down across the rounds where the drift streak builds and fires
        // (flip at 4, hysteresis 2 → re-activation lands near round 6).
        master_crashes: vec![MasterCrashWindow {
            from_interval: 6,
            until_interval: 9,
        }],
        ..FaultPlan::default()
    };
    let (report, events) = run_phase_shift(profiler, Some(plan), cfg);
    let master = report.master.as_ref().expect("master ran");

    assert_eq!(master.restores, 1, "the crash window must actually restart the master");
    assert!(master.checkpoints_taken >= 1);
    assert!(
        master.drift_reactivations >= 1,
        "restore + replay must still trip the drift detector"
    );
    let spans = jessy::obs::drift_spans(&events);
    assert!(
        spans.iter().any(|s| s.class == "Cell"),
        "the journal still carries the drift span across the restart"
    );
    let cell = final_cell_state(&report);
    assert!(cell.converged, "Cell re-converges despite the crash");
    assert_ne!(
        cell.rate, "1X",
        "restoring a pre-flip checkpoint must not freeze the stale phase-A rate back in"
    );
}

/// Without a flip, drift watching must be inert end to end: zero re-activations
/// and a TCM bit-identical to the drift-off run (the "zero-drift runs are
/// unchanged" acceptance gate, at test scale).
#[test]
fn calm_run_with_drift_watching_is_bit_identical_to_without() {
    let calm = PhaseShiftConfig {
        flip_round: PhaseShiftConfig::small().rounds, // never flips
        ..PhaseShiftConfig::small()
    };
    let (with_drift, _) = run_phase_shift(drift_profiler(), None, calm);
    let (without, _) = run_phase_shift(frozen_profiler(), None, calm);
    let (dm, fm) = (
        with_drift.master.as_ref().unwrap(),
        without.master.as_ref().unwrap(),
    );
    assert_eq!(dm.drift_reactivations, 0);
    assert_eq!(dm.tcm.raw(), fm.tcm.raw(), "drift watching is free when nothing drifts");
    assert_eq!(dm.rate_changes, fm.rate_changes);
}

/// CI runs the chaos-composition tests under a seed matrix (`JESSY_CHAOS_SEED`);
/// locally the plan's default seed applies. The assertions must hold for any seed.
fn chaos_seed() -> u64 {
    std::env::var("JESSY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| FaultPlan::default().seed)
}

/// Drift profiler hardened for chaos: rounds close by deadline when a fault
/// withholds OALs, and rounds below the coverage floor are untrusted (neither
/// steered on nor counted toward the drift streak).
fn chaos_drift_profiler() -> ProfilerConfig {
    let mut config = drift_profiler();
    config.round_deadline_intervals = Some(3);
    config.min_round_coverage = 0.95;
    config
}

/// A node crash window straddling the flip: the dark rounds are untrusted
/// (below the coverage floor), so the drift streak waits for the rejoin — and
/// then still fires and re-converges. The flip is never lost to the fault.
#[test]
fn phase_flip_inside_node_crash_window_still_reconverges() {
    let cfg = PhaseShiftConfig {
        rounds: 20,
        ..PhaseShiftConfig::small()
    };
    let plan = FaultPlan {
        seed: chaos_seed(),
        // Node 3 (threads 6 and 7) is dark for intervals 3..7 — the flip at
        // round 4 happens entirely inside the window.
        node_crashes: vec![CrashWindow {
            node: NodeId(3),
            from_interval: 3,
            until_interval: Some(7),
        }],
        ..FaultPlan::default()
    };
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(chaos_drift_profiler())
        .faults(plan)
        .trace(sink.clone())
        .build();
    let report = phase_shift::run_on(&mut cluster, cfg);
    let master = report.master.as_ref().expect("master ran");

    assert!(report.net.faults.crash_suppressed > 0, "the window must bite");
    assert_eq!(report.rejoins, 2, "both node-3 threads rejoin");
    assert!(
        master.drift_reactivations >= 1,
        "the flip must still trip the detector once trusted rounds resume"
    );
    let cell = final_cell_state(&report);
    assert!(cell.converged, "Cell re-converges despite the crash window");
    assert_ne!(cell.rate, "1X");
}

/// A network partition straddling the flip: OALs behind the cut defer, the
/// heal flushes them, and the controller still un-freezes and re-converges.
#[test]
fn phase_flip_inside_partition_window_still_reconverges() {
    let cfg = PhaseShiftConfig {
        rounds: 20,
        ..PhaseShiftConfig::small()
    };
    // Probe the fault-free run length (same latency model as the chaos run, so
    // virtual time advances identically) and size the window to straddle the
    // flip at round 4 of 20.
    let probe = {
        let mut cluster = Cluster::builder()
            .nodes(4)
            .threads(8)
            .latency(LatencyModel::fast_ethernet())
            .costs(CostModel::free())
            .profiler(chaos_drift_profiler())
            .build();
        phase_shift::run_on(&mut cluster, cfg)
    };
    let span = probe.sim_exec_ns.max(10);
    let plan = FaultPlan {
        seed: chaos_seed(),
        partitions: vec![PartitionWindow {
            island: vec![NodeId(3)],
            from_ns: span / 10,
            heal_ns: Some(span / 2),
        }],
        ..FaultPlan::default()
    };
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::free())
        .profiler(chaos_drift_profiler())
        .faults(plan)
        .trace(sink.clone())
        .build();
    let report = phase_shift::run_on(&mut cluster, cfg);
    let master = report.master.as_ref().expect("master ran");

    assert!(
        report.net.faults.partitioned > 0,
        "the cut must sever some sends: {:?}",
        report.net.faults
    );
    assert!(
        report.lost_oals.is_empty(),
        "a healed partition loses nothing: {:?}",
        report.lost_oals
    );
    assert!(
        master.drift_reactivations >= 1,
        "the flip must still trip the detector after the heal"
    );
    let cell = final_cell_state(&report);
    assert!(cell.converged, "Cell re-converges despite the partition");
    assert_ne!(cell.rate, "1X");
}

/// The Zipf sessions workload drives the journal's waste analysis: hot catalog
/// items are fetched by many nodes (replicas) and refetched after invalidation
/// churn (duplicates), and the skew concentrates waste on the Item class.
#[test]
fn sessions_journal_mines_per_class_waste() {
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(drift_profiler())
        .trace(sink.clone())
        .build();
    let report = sessions::run_on(&mut cluster, SessionsConfig::small());
    let master = report.master.as_ref().expect("master ran");
    assert!(master.tcm.total() > 0.0, "sessions must produce a sharing profile");

    let waste = jessy::obs::analyze_waste(&sink.sorted_events());
    assert!(!waste.classes.is_empty(), "faults must be mined into class rows");
    assert!(waste.total_fault_bytes > 0);
    assert!(
        waste.classes.iter().any(|c| c.replica_objects > 0),
        "Zipf-hot items are fetched by several nodes: {waste:?}"
    );
    assert!(
        waste.classes.iter().any(|c| c.duplicate_fetches > 0),
        "write churn on hot items forces refetches: {waste:?}"
    );
}
