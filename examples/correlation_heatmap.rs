//! Fig. 1 — inherent vs induced sharing patterns.
//!
//! Runs Barnes-Hut (two galaxies, contiguous body chunks per thread) once with
//! ground-truth object-grain tracking and replays the same access stream at 4 KB page
//! grain. The inherent map shows the two-galaxy block structure; the induced map blurs
//! it through false sharing — the paper's motivation for fine-grained tracking.
//!
//! ```text
//! cargo run --release --example correlation_heatmap
//! ```

use jessy::pagedsm::{InducedTcmBuilder, PageLayout};
use jessy::prelude::*;
use jessy::workloads::barnes_hut::{self, BhConfig};
use std::sync::Arc;

fn main() {
    let n_threads = 16;
    let cfg = BhConfig {
        n_bodies: 1024,
        rounds: 3,
        theta: 0.7,
        dt: 0.025,
        seed: 42,
    };

    // Ground truth with the OAL stream recorded for the page-grain replay.
    let mut config = ProfilerConfig::ground_truth();
    config.record_oals = true;
    let mut cluster = Cluster::builder()
        .nodes(8)
        .threads(n_threads)
        .profiler(config)
        .build();
    let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, 8));
    let handles = Arc::new(handles);
    println!(
        "running Barnes-Hut: {} bodies in two galaxies, {} threads…",
        cfg.n_bodies, n_threads
    );
    cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &handles));

    let master = cluster.master_output().expect("profiling was on");
    let inherent = &master.tcm;

    // Replay the identical OAL stream at page granularity.
    let layout = PageLayout::from_gos(&cluster.shared().gos);
    let mut induced_builder = InducedTcmBuilder::new(n_threads);
    for oal in &master.oal_log {
        induced_builder.ingest(oal, &layout);
    }
    let induced = induced_builder.build();

    println!("\n(a) inherent pattern — object-grain tracking:");
    print!("{}", inherent.ascii_heatmap());
    println!("\n(b) induced pattern — page-grain (4 KB) tracking of the same run:");
    print!("{}", induced.ascii_heatmap());

    // Quantify the blur: intra-galaxy vs cross-galaxy contrast, excluding thread 0
    // (the tree builder touches everything).
    let contrast = |tcm: &Tcm| -> f64 {
        let half = n_threads / 2;
        let (mut intra, mut cross) = (0.0, 0.0);
        let (mut ni, mut nc) = (0, 0);
        for i in 1..n_threads {
            for j in (i + 1)..n_threads {
                let v = tcm.at(ThreadId(i as u32), ThreadId(j as u32));
                if (i < half) == (j < half) {
                    intra += v;
                    ni += 1;
                } else {
                    cross += v;
                    nc += 1;
                }
            }
        }
        (intra / ni as f64) / (cross / nc as f64).max(1e-12)
    };
    println!("\nintra/cross-galaxy contrast:");
    println!("  inherent : {:>7.2}x", contrast(inherent));
    println!("  induced  : {:>7.2}x   (false sharing erases the structure)", contrast(&induced));
    println!(
        "\npage touches the page-grain tracker would fault on: {}",
        induced_builder.page_touches()
    );
}
