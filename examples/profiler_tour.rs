//! The full profiler suite on one run — a guided tour.
//!
//! Runs Barnes-Hut with *everything* enabled: adaptive correlation tracking,
//! sticky-set footprinting, stack sampling, dynamic rebalancing, connectivity
//! prefetching — then prints every artifact the profiling stack produces: the TCM and
//! its heatmap, adaptive rate decisions, balancer directives, per-class sticky
//! footprints, stack invariants, and the home-effect analysis of the recorded OAL
//! stream.
//!
//! ```text
//! cargo run --release --example profiler_tour
//! ```

use jessy::core::HomeAwareAnalyzer;
use jessy::prelude::*;
use jessy::workloads::barnes_hut::{self, BhConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let n_nodes = 4;
    let n_threads = 8;
    let cfg = BhConfig {
        n_bodies: 1024,
        rounds: 4,
        ..BhConfig::paper()
    };

    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.05);
    config.intervals_per_round = 2;
    config.record_oals = true;
    config.footprint = Some(FootprintConfig {
        mode: FootprintMode::Nonstop,
        min_gap: 1,
    });
    config.stack = Some(StackSamplingConfig {
        gap_ns: 1_000_000,
        lazy_extraction: true,
    });

    let mut cluster = Cluster::builder()
        .nodes(n_nodes)
        .threads(n_threads)
        .placement((0..n_threads).map(|t| NodeId((t % n_nodes) as u16)).collect())
        .prefetch_depth(1)
        .profiler(config)
        .rebalance(jessy::runtime::RebalanceConfig {
            after_rounds: 3,
            ..Default::default()
        })
        .build();

    println!(
        "Barnes-Hut: {} bodies, {} rounds, {} threads on {} nodes (scattered start)",
        cfg.n_bodies, cfg.rounds, n_threads, n_nodes
    );
    println!("profiler: adaptive 1X tracking + nonstop footprinting + 1ms stack sampling");
    println!("runtime : dynamic rebalancing after 3 rounds + depth-1 prefetching\n");

    let handles = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, n_nodes)));
    type PerThread = (HashMap<jessy::gos::ClassId, f64>, usize);
    let observations: Arc<Mutex<Vec<PerThread>>> = Arc::new(Mutex::new(Vec::new()));
    let obs = Arc::clone(&observations);
    let h = Arc::clone(&handles);
    cluster.run(move |jt| {
        barnes_hut::thread_body(jt, &cfg, &h);
        obs.lock()
            .push((jt.profiler().average_footprint(), jt.profiler().invariants().len()));
    });

    let report = cluster.report();
    let master = report.master.as_ref().unwrap();
    let shared = cluster.shared();

    println!("== execution ==");
    println!("simulated time   : {:>9.1} ms", report.sim_exec_ms());
    println!("object faults    : {:>9}", report.proto.real_faults);
    println!("corr. faults     : {:>9}", report.proto.false_invalid_faults);
    println!("prefetched objs  : {:>9}", report.proto.objects_prefetched);
    println!("OAL / GOS traffic: {:>8.2}%", report.net.oal_over_gos() * 100.0);

    println!("\n== adaptive controller ==");
    if master.rate_changes.is_empty() {
        println!("(all classes converged at their initial rates)");
    }
    for ch in &master.rate_changes {
        println!(
            "round {:>2}: {:<6} -> {:<5} (relative distance {:.3})",
            ch.round, ch.class_name, ch.new_rate, ch.relative_distance
        );
    }
    println!("final gaps:");
    for class in shared.prof.gaps().classes() {
        let st = shared.prof.gaps().state(class);
        println!(
            "  {:<6} rate {:<5} real gap {:>4}",
            shared.gos.classes().info(class).name,
            st.rate.label(),
            st.real_gap
        );
    }

    println!("\n== dynamic balancer ==");
    for m in &master.planned_migrations {
        println!(
            "{} {} -> {}: gain {:>9.0} B/round vs sticky cost {:>9.0} B",
            m.thread, m.from, m.to, m.gain_bytes, m.sticky_cost_bytes
        );
    }
    let migrations = shared.migration_log.lock();
    println!(
        "executed {} migrations moving {} KB of context+sticky prefetch",
        migrations.len(),
        migrations.iter().map(|m| m.total_bytes()).sum::<usize>() / 1024
    );
    drop(migrations);

    println!("\n== sticky sets & stacks (per-thread averages) ==");
    let per_thread = observations.lock();
    for (t, (fp, invariants)) in per_thread.iter().enumerate() {
        let total: f64 = fp.values().sum();
        println!(
            "t{t}: footprint {:>8.0} B over {} classes, {} stack invariants",
            total,
            fp.len(),
            invariants
        );
    }
    drop(per_thread);

    println!("\n== home-effect analysis of the recorded OAL stream ==");
    let placement: Vec<NodeId> = (0..n_threads as u32)
        .map(|t| shared.node_of(ThreadId(t)))
        .collect();
    let mut analyzer = HomeAwareAnalyzer::new(n_nodes, n_threads);
    for oal in &master.oal_log {
        analyzer.ingest(oal, &placement);
    }
    let home = analyzer.build(&shared.gos, &placement);
    println!(
        "stranded volume: {:.1}% of pair-shared bytes; {} re-homing candidates",
        home.stranded_fraction() * 100.0,
        home.recommendations.len()
    );

    println!("\n== thread correlation map ==");
    print!("{}", master.tcm.ascii_heatmap());
}
