//! Adaptive sampling-rate tuning (Section II.B).
//!
//! Runs Water-Spatial with the adaptive controller enabled: the profiler starts every
//! class at a coarse 1X rate, the master compares successive per-class correlation
//! maps, and classes whose maps have not converged are stepped finer — each step
//! broadcasting a rate change and re-tagging the class's objects by sequence number.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use jessy::prelude::*;
use jessy::workloads::water::{self, WaterConfig};
use std::sync::Arc;

fn main() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.05);
    config.intervals_per_round = 2;

    let n_threads = 4;
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(n_threads)
        .profiler(config)
        .build();

    let cfg = WaterConfig {
        rounds: 12,
        ..WaterConfig::paper()
    };
    println!(
        "running Water-Spatial: {} molecules, {} rounds, adaptive threshold 5%…",
        cfg.n_molecules, cfg.rounds
    );
    let handles = cluster.init(|ctx| water::setup(ctx, &cfg, n_threads, 4));
    let handles = Arc::new(handles);
    cluster.run(move |jt| water::thread_body(jt, &cfg, &handles));

    let shared = cluster.shared();
    let master = cluster.master_output().expect("profiling was on");

    println!("\nTCM rounds closed: {}", master.rounds);
    println!("rate changes applied by the controller:");
    if master.rate_changes.is_empty() {
        println!("  (none — every class converged at its initial rate)");
    }
    for ch in &master.rate_changes {
        println!(
            "  round {:>3}: {:<10} -> {:<5} (relative distance {:.3}, {} objects re-tagged)",
            ch.round, ch.class_name, ch.new_rate, ch.relative_distance, ch.resampled_objects
        );
    }

    println!("\nfinal per-class sampling state:");
    for class in shared.prof.gaps().classes() {
        let info = shared.gos.classes().info(class);
        let st = shared.prof.gaps().state(class);
        println!(
            "  {:<10} unit {:>4} B  rate {:<5} nominal gap {:>4}  real (prime) gap {:>4}",
            info.name,
            st.unit_bytes,
            st.rate.label(),
            st.nominal_gap,
            st.real_gap
        );
    }

    println!(
        "\nfalse-invalid traps armed: {}   OAL entries logged: {}",
        shared.prof.stats().snapshot().fi_armed,
        shared.prof.stats().snapshot().oal_entries
    );
    println!("\nfinal correlation heatmap:");
    print!("{}", master.tcm.ascii_heatmap());
}
