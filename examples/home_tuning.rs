//! Home-effect tuning: the paper's Section V enhancement, end to end.
//!
//! SOR with a pathological initial homing: every row lives on node 0 (a common
//! real-world accident — one thread allocated all shared data before the workers
//! spawned), while the threads that relax the rows run on four nodes. The home-aware
//! analyzer consumes the profiled OAL stream, splits pair-shared volume into the
//! *realizable* part (homed at either sharer's node) and the *stranded* part (homed at
//! neither — the paper's "tricky case"), and recommends object home migrations.
//! Re-running after applying them shows the recovered locality.
//!
//! ```text
//! cargo run --release --example home_tuning
//! ```

use jessy::core::HomeAwareAnalyzer;
use jessy::prelude::*;
use jessy::workloads::sor::{self, SorConfig};
use std::sync::Arc;

const N_NODES: usize = 4;
const N_THREADS: usize = 4;

fn run(cfg: SorConfig, tuned_homes: Option<&[(ObjectId, NodeId)]>) -> (RunReport, Cluster) {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.record_oals = true;
    let mut cluster = Cluster::builder()
        .nodes(N_NODES)
        .threads(N_THREADS)
        .profiler(config)
        .build();
    // Pathological homing: everything on node 0.
    let handles = Arc::new(cluster.init(|ctx| sor::setup_with_homes(ctx, &cfg, |_| NodeId(0))));
    if let Some(moves) = tuned_homes {
        let clock = cluster.shared().master_clock();
        for (obj, dest) in moves {
            cluster.shared().gos.migrate_home(*obj, *dest, &clock);
        }
    }
    let h = Arc::clone(&handles);
    cluster.run(move |jt| sor::thread_body(jt, &cfg, &h));
    (cluster.report(), cluster)
}

fn main() {
    let cfg = SorConfig {
        n: 512,
        m: 512,
        rounds: 6,
        omega: 1.25,
    };
    println!(
        "SOR {}x{}, {} rounds, {} nodes / {} threads — all rows initially homed on n0",
        cfg.n, cfg.m, cfg.rounds, N_NODES, N_THREADS
    );

    // --- Pass 1: profile under the bad homing.
    let (baseline, cluster) = run(cfg, None);
    let master = baseline.master.as_ref().unwrap();
    let placement: Vec<NodeId> = (0..N_THREADS as u32)
        .map(|t| cluster.shared().node_of(ThreadId(t)))
        .collect();

    let mut analyzer = HomeAwareAnalyzer::new(N_NODES, N_THREADS);
    for oal in &master.oal_log {
        analyzer.ingest(oal, &placement);
    }
    let report = analyzer.build(&cluster.shared().gos, &placement);

    println!("\n== home-effect analysis of the profile ==");
    println!("objects observed          : {}", analyzer.n_objects());
    println!(
        "realizable pair volume    : {:.0} KB (homed at one of the sharers' nodes)",
        report.realizable.total() / 1024.0
    );
    println!(
        "stranded pair volume      : {:.0} KB ({:.1}% — the paper's tricky case)",
        report.stranded.total() / 1024.0,
        report.stranded_fraction() * 100.0
    );
    println!("home-migration candidates : {}", report.recommendations.len());
    for rec in report.recommendations.iter().take(4) {
        println!(
            "  {}: {} -> {}  ({} interval-accesses at dest vs {} elsewhere)",
            rec.obj, rec.from, rec.to, rec.accesses_at_dest, rec.accesses_elsewhere
        );
    }

    // --- Pass 2: apply and re-run the identical workload.
    let moves: Vec<(ObjectId, NodeId)> =
        report.recommendations.iter().map(|r| (r.obj, r.to)).collect();
    let (tuned, _c2) = run(cfg, Some(&moves));

    println!("\n== before vs after re-homing {} rows ==", moves.len());
    println!(
        "object faults  : {:>8} -> {:>8}  ({:+.1}%)",
        baseline.proto.real_faults,
        tuned.proto.real_faults,
        (tuned.proto.real_faults as f64 / baseline.proto.real_faults as f64 - 1.0) * 100.0
    );
    println!(
        "fetched volume : {:>7.0}KB -> {:>7.0}KB",
        baseline.net.class(MsgClass::ObjData).bytes as f64 / 1024.0,
        tuned.net.class(MsgClass::ObjData).bytes as f64 / 1024.0
    );
    println!(
        "diff volume    : {:>7.0}KB -> {:>7.0}KB (writers now flush locally)",
        baseline.net.class(MsgClass::DiffUpdate).bytes as f64 / 1024.0,
        tuned.net.class(MsgClass::DiffUpdate).bytes as f64 / 1024.0
    );
    println!(
        "sim exec time  : {:>7.1}ms -> {:>7.1}ms  ({:+.1}%)",
        baseline.sim_exec_ms(),
        tuned.sim_exec_ms(),
        tuned.overhead_pct(&baseline)
    );
}
