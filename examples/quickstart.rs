//! Quickstart: run a workload on a simulated DJVM cluster with correlation tracking
//! on, and inspect what the profiler recovered.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jessy::prelude::*;
use jessy::workloads::sor::{self, SorConfig};

fn main() {
    // An 4-node cluster running 8 application threads, profiling at rate 1X.
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(8)
        .profiler(ProfilerConfig::tracking_at(SamplingRate::NX(1)))
        .build();

    // SOR at a demo-friendly size (use SorConfig::paper() for the 2K × 2K run).
    let cfg = SorConfig {
        n: 256,
        m: 256,
        rounds: 6,
        omega: 1.25,
    };
    println!("running SOR {}x{} for {} rounds on 4 nodes / 8 threads…", cfg.n, cfg.m, cfg.rounds);
    let report = sor::run_on(&mut cluster, cfg);

    println!("\n== execution ==");
    println!("simulated execution time : {:>10.2} ms", report.sim_exec_ms());
    println!("real wall-clock          : {:>10.2} ms", report.wall_ns as f64 / 1e6);
    println!("object faults            : {:>10}", report.proto.real_faults);
    println!("correlation faults       : {:>10}", report.proto.false_invalid_faults);
    println!("diffs flushed            : {:>10}", report.proto.diffs_flushed);

    println!("\n== traffic ==");
    println!("GOS (coherence) volume   : {:>10.1} KB", report.gos_kb());
    println!("OAL (profiling) volume   : {:>10.1} KB", report.oal_kb());
    println!(
        "profiling overhead       : {:>10.2} % of GOS volume",
        report.net.oal_over_gos() * 100.0
    );

    let master = report.master.as_ref().expect("profiling was on");
    println!("\n== profiling ==");
    println!("OAL batches ingested     : {:>10}", master.oals_ingested);
    println!("TCM rounds               : {:>10}", master.rounds);
    println!(
        "TCM build (real)         : {:>10.2} ms",
        master.tcm_build_real_ns as f64 / 1e6
    );

    // Crash-stop recovery counters (DESIGN.md §12). All zero on a fault-free run;
    // inject a FaultPlan with master_crashes to see them move.
    println!("\n== recovery ==");
    println!("checkpoints taken        : {:>10}", master.checkpoints_taken);
    println!("restores                 : {:>10}", master.restores);
    println!("OALs replayed            : {:>10}", master.replayed_oals);
    println!("stale-epoch OALs fenced  : {:>10}", master.fenced_oals);
    println!("nodes quarantined        : {:>10}", master.quarantined_nodes);
    println!("node rejoin handshakes   : {:>10}", report.rejoins);

    println!("\nthread correlation map (bytes shared per thread pair):");
    for (i, row) in master.tcm.rows().enumerate() {
        print!("  t{i}: ");
        for v in row {
            print!("{:>9.0} ", v);
        }
        println!();
    }
    println!("\nheatmap (darker = more sharing — note the near-neighbour band of SOR):");
    print!("{}", master.tcm.ascii_heatmap());
}
