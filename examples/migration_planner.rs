//! Migration planning from profiles: the paper's end-use.
//!
//! Runs Barnes-Hut under a deliberately bad placement (galaxy members scattered
//! across nodes) with the full profiler on — correlation tracking, sticky-set
//! footprinting and stack sampling. One thread migrates mid-run with sticky-set
//! prefetch so its induced faults are hidden. After the run the recovered TCM feeds
//! the load balancer, which plans a placement reuniting the galaxies, and each
//! candidate migration is weighed: correlation gain vs sticky-set (prefetch) cost —
//! exactly the cost model Section III argues for.
//!
//! ```text
//! cargo run --release --example migration_planner
//! ```

use jessy::prelude::*;
use jessy::workloads::barnes_hut::{self, BhConfig};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let n_threads = 8usize;
    // Scatter placement: thread i on node i % 4 — galaxy A's threads (0-3) and galaxy
    // B's threads (4-7) end up interleaved over the nodes.
    let placement: Vec<NodeId> = (0..n_threads).map(|t| NodeId((t % 4) as u16)).collect();

    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(4));
    config.footprint = Some(FootprintConfig {
        mode: FootprintMode::Nonstop, // exact access frequencies
        min_gap: 1,
    });
    config.stack = Some(StackSamplingConfig {
        gap_ns: 100_000, // 100 µs: a sample roughly every interval
        lazy_extraction: true,
    });

    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(n_threads)
        .placement(placement.clone())
        .profiler(config)
        .build();

    let cfg = BhConfig {
        n_bodies: 1024,
        rounds: 4,
        ..BhConfig::paper()
    };
    let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, 4));
    let handles = Arc::new(handles);
    let migration_log: Arc<Mutex<Vec<jessy::runtime::MigrationReport>>> =
        Arc::new(Mutex::new(Vec::new()));

    println!("running Barnes-Hut ({} bodies) under a scattered placement…", cfg.n_bodies);
    let log = Arc::clone(&migration_log);
    cluster.run(move |jt| {
        barnes_hut::thread_body(jt, &cfg, &handles);

        // Epilogue: every thread re-traverses its body chunk for a few intervals with
        // a live frame, so the stack sampler finds invariants and footprinting sees
        // the chunk as sticky; then thread 5 migrates with its sticky set prefetched.
        let t = jt.thread_id().index();
        let mine = barnes_hut::bodies_of(cfg.n_bodies, 8, t);
        jt.push_frame(handles.method);
        // Locals: the space root (entry point into the shared octree) and the
        // thread's first body — the stack invariants resolution will start from.
        jt.set_local_ref(0, handles.space);
        jt.set_local_ref(1, handles.bodies[mine.start]);
        for _ in 0..4 {
            // Two passes per interval: objects accessed repeatedly within an interval
            // are exactly what the sticky set is made of (Section III).
            for _pass in 0..2 {
                for i in mine.clone() {
                    jt.read(handles.bodies[i], |_| {});
                    jt.compute(2);
                }
            }
            jt.barrier();
        }
        if t == 5 {
            let report = jt.migrate_to(NodeId(3), true);
            log.lock().push(report);
        }
        jt.pop_frame();
        jt.barrier();
    });

    let report = cluster.report();
    let tcm = report.master.as_ref().unwrap().tcm.clone();

    println!("\n== the profiled migration (thread 5 → node 3, with prefetch) ==");
    let m = &migration_log.lock()[0];
    println!("  context (stack) bytes : {}", m.ctx_bytes);
    println!("  sticky objects sent   : {}", m.prefetched_objects);
    println!("  prefetch bytes        : {}", m.prefetch_bytes);
    println!("  simulated cost        : {:.1} µs", m.sim_cost_ns as f64 / 1e3);
    if let Some(res) = &m.resolution {
        println!(
            "  resolution            : {} edges walked, {} roots aborted by landmarks",
            res.edges_visited, res.aborted_roots
        );
    }

    println!("\n== placement planning from the recovered TCM ==");
    let lb = LoadBalancer::new();
    let before = lb.intra_fraction(&tcm, &placement);
    let plan = lb.plan(&tcm, 4);
    println!("  intra-node correlation, scattered placement : {:>6.1} %", before * 100.0);
    println!("  intra-node correlation, planned placement   : {:>6.1} %", plan.intra_fraction * 100.0);
    println!("  plan: {:?}", plan.placement);

    println!("\n== per-thread migration ledger (gain vs sticky cost) ==");
    for t in 0..n_threads {
        let thread = ThreadId(t as u32);
        let dest = plan.placement[t];
        if dest == placement[t] {
            continue;
        }
        let gain = lb.migration_gain(&tcm, &placement, thread, dest);
        println!(
            "  t{t}: {} -> {}   correlation gain {:>12.0} bytes/round",
            placement[t], dest, gain
        );
    }
    println!("\n(the sticky-set footprint of each thread prices the move; the profiled");
    println!(" migration above shows the prefetch hiding exactly those induced faults)");
}
