//! Correlation-driven thread placement.
//!
//! The paper's profiles exist to feed "effective thread-to-core placement and dynamic
//! load balancing"; the policy itself is named future work (Section V). We implement
//! the natural baseline the paper gestures at: a **balanced greedy partitioner** over
//! the thread correlation map — collocate highly correlated threads subject to a
//! per-node capacity (overloading a node "causes adverse slowdown, shadowing the
//! locality benefit", Section II) — plus the marginal-gain query a dynamic balancer
//! uses to pick profitable migrations against the sticky-set cost model.

use serde::{Deserialize, Serialize};

use jessy_core::Tcm;
use jessy_net::{NodeId, ThreadId};

/// A planned placement and its quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Thread → node assignment.
    pub placement: Vec<NodeId>,
    /// Fraction of total correlation mass that is intra-node (0..=1).
    pub intra_fraction: f64,
}

/// Correlation-driven placement planning.
#[derive(Debug, Default)]
pub struct LoadBalancer;

impl LoadBalancer {
    /// New balancer.
    pub fn new() -> Self {
        LoadBalancer
    }

    /// Plan a balanced placement of `tcm.n()` threads onto `n_nodes` nodes
    /// (capacity = ⌈N/K⌉ threads per node). Pair-greedy: thread pairs are processed in
    /// descending correlation order; an unplaced pair opens on the least-loaded node,
    /// a half-placed pair joins its partner when capacity allows. Deterministic.
    pub fn plan(&self, tcm: &Tcm, n_nodes: usize) -> PlacementPlan {
        if n_nodes == 0 {
            // Nothing to place onto: an empty plan, not a panic, so callers can
            // treat a degenerate topology as "no migration opportunities".
            return PlacementPlan {
                placement: Vec::new(),
                intra_fraction: 0.0,
            };
        }
        let n = tcm.n();
        let cap = n.div_ceil(n_nodes);
        let mut placement: Vec<Option<NodeId>> = vec![None; n];
        let mut load = vec![0usize; n_nodes];

        let least_loaded = |load: &[usize], need: usize| -> Option<usize> {
            (0..load.len())
                .filter(|&k| load[k] + need <= cap)
                .min_by_key(|&k| (load[k], k))
        };
        let place = |placement: &mut Vec<Option<NodeId>>, load: &mut Vec<usize>, t: usize, node: usize| {
            placement[t] = Some(NodeId(node as u16));
            load[node] += 1;
        };

        // Pairs by descending correlation (ties by indices for determinism).
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = tcm.at(ThreadId(i as u32), ThreadId(j as u32));
                if v > 0.0 {
                    pairs.push((i, j, v));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));

        for (i, j, _) in pairs {
            match (placement[i], placement[j]) {
                (None, None) => {
                    if let Some(node) = least_loaded(&load, 2) {
                        place(&mut placement, &mut load, i, node);
                        place(&mut placement, &mut load, j, node);
                    }
                }
                (Some(node), None) if load[node.index()] < cap => {
                    place(&mut placement, &mut load, j, node.index());
                }
                (None, Some(node)) if load[node.index()] < cap => {
                    place(&mut placement, &mut load, i, node.index());
                }
                _ => {}
            }
        }
        // Leftovers (uncorrelated or capacity-blocked) go to the lightest nodes.
        // `cap = ⌈N/K⌉` guarantees total capacity ≥ N, but fall back to the overall
        // lightest node rather than panicking if that invariant ever breaks.
        for t in 0..n {
            if placement[t].is_none() {
                let node = least_loaded(&load, 1)
                    .or_else(|| (0..load.len()).min_by_key(|&k| (load[k], k)))
                    .unwrap_or(0);
                place(&mut placement, &mut load, t, node);
            }
        }

        let placement: Vec<NodeId> = placement
            .into_iter()
            .map(|p| p.unwrap_or(NodeId(0)))
            .collect();
        let intra_fraction = self.intra_fraction(tcm, &placement);
        PlacementPlan {
            placement,
            intra_fraction,
        }
    }

    /// Fraction of total correlation mass between threads on the same node.
    pub fn intra_fraction(&self, tcm: &Tcm, placement: &[NodeId]) -> f64 {
        assert_eq!(placement.len(), tcm.n());
        let mut intra = 0.0;
        let mut total = 0.0;
        for i in 0..tcm.n() {
            for j in (i + 1)..tcm.n() {
                let v = tcm.at(ThreadId(i as u32), ThreadId(j as u32));
                total += v;
                if placement[i] == placement[j] {
                    intra += v;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            intra / total
        }
    }

    /// Marginal change in intra-node correlation if `thread` moved to `dest` — the
    /// *gain* side of the migration-profitability test (the *cost* side is the
    /// sticky-set footprint).
    pub fn migration_gain(&self, tcm: &Tcm, placement: &[NodeId], thread: ThreadId, dest: NodeId) -> f64 {
        assert_eq!(placement.len(), tcm.n());
        let src = placement[thread.index()];
        if src == dest {
            return 0.0;
        }
        let mut gain = 0.0;
        for (u, &node) in placement.iter().enumerate() {
            if u == thread.index() {
                continue;
            }
            let v = tcm.at(thread, ThreadId(u as u32));
            if node == dest {
                gain += v;
            } else if node == src {
                gain -= v;
            }
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques of two threads each: {0,1} and {2,3} heavily correlated.
    fn clique_tcm() -> Tcm {
        let mut t = Tcm::new(4);
        t.add_pair(ThreadId(0), ThreadId(1), 100.0);
        t.add_pair(ThreadId(2), ThreadId(3), 100.0);
        t.add_pair(ThreadId(0), ThreadId(2), 1.0);
        t
    }

    #[test]
    fn plan_collocates_cliques() {
        let plan = LoadBalancer::new().plan(&clique_tcm(), 2);
        assert_eq!(plan.placement[0], plan.placement[1], "clique A together");
        assert_eq!(plan.placement[2], plan.placement[3], "clique B together");
        assert_ne!(plan.placement[0], plan.placement[2], "capacity splits them");
        assert!(plan.intra_fraction > 0.99, "{}", plan.intra_fraction);
    }

    #[test]
    fn plan_respects_capacity() {
        // Everything correlated with everything: capacity must still split 4 over 2.
        let mut t = Tcm::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                t.add_pair(ThreadId(i), ThreadId(j), 10.0);
            }
        }
        let plan = LoadBalancer::new().plan(&t, 2);
        let on0 = plan.placement.iter().filter(|n| n.0 == 0).count();
        assert_eq!(on0, 2);
    }

    #[test]
    fn migration_gain_matches_intra_delta() {
        let tcm = clique_tcm();
        let lb = LoadBalancer::new();
        // Bad placement: split both cliques.
        let placement = vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)];
        let before = lb.intra_fraction(&tcm, &placement);
        let gain = lb.migration_gain(&tcm, &placement, ThreadId(1), NodeId(0));
        assert!(gain > 0.0, "reuniting clique A is profitable");
        let mut after_placement = placement.clone();
        after_placement[1] = NodeId(0);
        let after = lb.intra_fraction(&tcm, &after_placement);
        assert!(after > before);
        // The absolute gain equals the intra-mass delta.
        let total: f64 = 100.0 + 100.0 + 1.0;
        assert!(((after - before) * total - gain).abs() < 1e-9);
        assert_eq!(lb.migration_gain(&tcm, &placement, ThreadId(1), NodeId(1)), 0.0);
    }

    #[test]
    fn zero_nodes_yields_an_empty_plan() {
        let plan = LoadBalancer::new().plan(&clique_tcm(), 0);
        assert!(plan.placement.is_empty());
        assert_eq!(plan.intra_fraction, 0.0);
    }

    #[test]
    fn nan_correlations_do_not_poison_the_sort() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(1), f64::NAN);
        t.add_pair(ThreadId(1), ThreadId(2), 5.0);
        // total_cmp gives NaN a defined order: the plan completes deterministically.
        let plan = LoadBalancer::new().plan(&t, 3);
        assert_eq!(plan.placement.len(), 3);
    }

    #[test]
    fn leftover_fill_respects_capacity_with_blocked_pairs() {
        // Regression for the leftover fill pass: 6 threads on 2 nodes (cap = 3).
        // A heavy 4-clique {0,1,2,3} wants one node; its third and fourth members
        // get capacity-blocked once a node holds 3, and threads 4, 5 are entirely
        // uncorrelated. The fill pass must land every thread without ever pushing
        // a node past ⌈N/K⌉.
        let mut t = Tcm::new(6);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                t.add_pair(ThreadId(i), ThreadId(j), 50.0);
            }
        }
        let plan = LoadBalancer::new().plan(&t, 2);
        assert_eq!(plan.placement.len(), 6);
        for node in 0..2u16 {
            let load = plan.placement.iter().filter(|n| n.0 == node).count();
            assert_eq!(load, 3, "cap = ceil(6/2) must hold on node {node}");
        }
    }

    #[test]
    fn plan_is_invariant_to_pair_insertion_order() {
        // All-equal correlations maximize sort ties: the plan must come out of the
        // (value, indices) tie-break identically however the pairs were added.
        let pairs: Vec<(u32, u32)> =
            (0..5u32).flat_map(|i| ((i + 1)..5).map(move |j| (i, j))).collect();
        let orders: Vec<Vec<(u32, u32)>> = vec![
            pairs.clone(),
            pairs.iter().rev().copied().collect(),
            {
                // Deterministic interleave: evens then odds.
                let mut v: Vec<(u32, u32)> = pairs.iter().step_by(2).copied().collect();
                v.extend(pairs.iter().skip(1).step_by(2));
                v
            },
        ];
        let plans: Vec<PlacementPlan> = orders
            .into_iter()
            .map(|order| {
                let mut t = Tcm::new(5);
                for (i, j) in order {
                    t.add_pair(ThreadId(i), ThreadId(j), 7.0);
                }
                LoadBalancer::new().plan(&t, 2)
            })
            .collect();
        assert_eq!(plans[0], plans[1], "reversed insertion changed the plan");
        assert_eq!(plans[0], plans[2], "interleaved insertion changed the plan");
        let cap = 5usize.div_ceil(2);
        for node in 0..2u16 {
            assert!(
                plans[0].placement.iter().filter(|n| n.0 == node).count() <= cap,
                "capacity exceeded"
            );
        }
    }

    #[test]
    fn empty_tcm_plans_anything_balanced() {
        let plan = LoadBalancer::new().plan(&Tcm::new(6), 3);
        for node in 0..3u16 {
            assert_eq!(
                plan.placement.iter().filter(|n| n.0 == node).count(),
                2,
                "balanced"
            );
        }
        assert_eq!(plan.intra_fraction, 0.0);
    }
}
