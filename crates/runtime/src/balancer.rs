//! Correlation-driven thread placement.
//!
//! The paper's profiles exist to feed "effective thread-to-core placement and dynamic
//! load balancing"; the policy itself is named future work (Section V). The planner is
//! a **two-stage partitioner** over any [`CorrelationView`] (dense TCM, top-k head, or
//! sketched top-k — the planner never touches the packed-triangle layout):
//!
//! 1. **Greedy seeding** ([`LoadBalancer::greedy_seed`]): thread pairs in descending
//!    correlation order; an unplaced pair opens on the least-loaded node, a half-placed
//!    pair joins its partner when capacity allows.
//! 2. **Boundary refinement** ([`LoadBalancer::refine`]): deterministic
//!    Kernighan–Lin-style moves. Each step picks the best positive-gain candidate —
//!    a capacity-respecting single-thread move or a pairwise exchange (the KL swap
//!    that still makes progress when every node sits exactly at capacity) — applies
//!    it, and locks the threads involved, so the pass terminates after ≤ N steps and
//!    intra-node mass increases monotonically. A [`MoveFilter`] prices each candidate
//!    — sticky-set footprint bytes as the cost, a per-epoch migration-byte budget,
//!    and a cooldown mask for hysteresis — recording every veto attributably.
//!
//! Capacity is `⌈N/K⌉` threads per node throughout (overloading a node "causes adverse
//! slowdown, shadowing the locality benefit", Section II).

use serde::{Deserialize, Serialize};

use jessy_core::CorrelationView;
use jessy_net::{NodeId, ThreadId};

/// A planned placement and its quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Thread → node assignment.
    pub placement: Vec<NodeId>,
    /// Fraction of total correlation mass that is intra-node (0..=1).
    pub intra_fraction: f64,
}

/// Pricing and hysteresis constraints applied to each refinement move.
#[derive(Debug, Clone, Copy, Default)]
pub struct MoveFilter<'a> {
    /// Moves whose correlation gain is below this stop the pass (anti-thrashing).
    pub min_gain: f64,
    /// Rounds a move's per-round gain is credited for against its one-time cost.
    pub gain_horizon: f64,
    /// Per-thread one-time move cost in bytes (the live sticky-set footprint).
    /// `None` prices every move as free.
    pub costs: Option<&'a [f64]>,
    /// Total move-cost bytes the pass may spend. `None` is unlimited.
    pub budget_bytes: Option<f64>,
    /// Threads still cooling down from a recent move; their moves are vetoed.
    pub in_cooldown: Option<&'a [bool]>,
}

/// One move the refinement pass applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefinedMove {
    /// The thread to move.
    pub thread: ThreadId,
    /// Where it was.
    pub from: NodeId,
    /// Where it goes.
    pub to: NodeId,
    /// Marginal intra-node correlation mass the move adds.
    pub gain: f64,
    /// The one-time cost charged against the budget.
    pub cost_bytes: f64,
}

/// What a refinement pass did: the final placement, the applied moves, and an
/// attributable count of every veto.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefineOutcome {
    /// Thread → node assignment after refinement.
    pub placement: Vec<NodeId>,
    /// Moves applied, in application order.
    pub moves: Vec<RefinedMove>,
    /// Passes stopped because the best remaining gain fell below `min_gain`.
    pub vetoed_gain: u64,
    /// Moves skipped because the thread was in its cooldown window.
    pub vetoed_cooldown: u64,
    /// Moves skipped because `gain × horizon < cost` (the profitability test).
    pub vetoed_cost: u64,
    /// Moves skipped because the migration-byte budget was exhausted.
    pub vetoed_budget: u64,
    /// Cost bytes actually spent by applied moves.
    pub spent_bytes: f64,
}

/// Correlation-driven placement planning.
#[derive(Debug, Default)]
pub struct LoadBalancer;

impl LoadBalancer {
    /// New balancer.
    pub fn new() -> Self {
        LoadBalancer
    }

    /// Plan a balanced placement of `view.n()` threads onto `n_nodes` nodes: greedy
    /// seeding followed by unrestricted boundary refinement. Deterministic for a
    /// given view.
    pub fn plan(&self, view: &dyn CorrelationView, n_nodes: usize) -> PlacementPlan {
        let seed = self.greedy_seed(view, n_nodes);
        if n_nodes == 0 {
            return seed;
        }
        let refined = self.refine(view, n_nodes, &seed.placement, &MoveFilter::default());
        let intra_fraction = self.intra_fraction(view, &refined.placement);
        PlacementPlan {
            placement: refined.placement,
            intra_fraction,
        }
    }

    /// Stage 1: pair-greedy seeding (capacity = ⌈N/K⌉ threads per node). Thread pairs
    /// are processed in descending correlation order; an unplaced pair opens on the
    /// least-loaded node, a half-placed pair joins its partner when capacity allows.
    /// Deterministic.
    pub fn greedy_seed(&self, view: &dyn CorrelationView, n_nodes: usize) -> PlacementPlan {
        if n_nodes == 0 {
            // Nothing to place onto: an empty plan, not a panic, so callers can
            // treat a degenerate topology as "no migration opportunities".
            return PlacementPlan {
                placement: Vec::new(),
                intra_fraction: 0.0,
            };
        }
        let n = view.n();
        let cap = n.div_ceil(n_nodes);
        let mut placement: Vec<Option<NodeId>> = vec![None; n];
        let mut load = vec![0usize; n_nodes];

        let least_loaded = |load: &[usize], need: usize| -> Option<usize> {
            (0..load.len())
                .filter(|&k| load[k] + need <= cap)
                .min_by_key(|&k| (load[k], k))
        };
        let place = |placement: &mut Vec<Option<NodeId>>, load: &mut Vec<usize>, t: usize, node: usize| {
            placement[t] = Some(NodeId(node as u16));
            load[node] += 1;
        };

        // Pairs by descending correlation (ties by indices for determinism).
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        view.for_each_pair(&mut |i, j, w| pairs.push((i.index(), j.index(), w)));
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));

        for (i, j, _) in pairs {
            match (placement[i], placement[j]) {
                (None, None) => {
                    if let Some(node) = least_loaded(&load, 2) {
                        place(&mut placement, &mut load, i, node);
                        place(&mut placement, &mut load, j, node);
                    }
                }
                (Some(node), None) if load[node.index()] < cap => {
                    place(&mut placement, &mut load, j, node.index());
                }
                (None, Some(node)) if load[node.index()] < cap => {
                    place(&mut placement, &mut load, i, node.index());
                }
                _ => {}
            }
        }
        // Leftovers (uncorrelated or capacity-blocked) go to the lightest nodes.
        // `cap = ⌈N/K⌉` guarantees total capacity ≥ N, but fall back to the overall
        // lightest node rather than panicking if that invariant ever breaks.
        for t in 0..n {
            if placement[t].is_none() {
                let node = least_loaded(&load, 1)
                    .or_else(|| (0..load.len()).min_by_key(|&k| (load[k], k)))
                    .unwrap_or(0);
                place(&mut placement, &mut load, t, node);
            }
        }

        let placement: Vec<NodeId> = placement
            .into_iter()
            .map(|p| p.unwrap_or(NodeId(0)))
            .collect();
        let intra_fraction = self.intra_fraction(view, &placement);
        PlacementPlan {
            placement,
            intra_fraction,
        }
    }

    /// Stage 2: deterministic Kernighan–Lin-style boundary refinement from `current`.
    ///
    /// Repeatedly picks the best positive-gain candidate — a capacity-respecting
    /// single-thread move or a pairwise exchange between two nodes (load-neutral, so
    /// always capacity-legal; essential when every node is exactly full and no single
    /// move is admissible) — prices it through the [`MoveFilter`], applies it, and
    /// locks the threads involved. Ties break on lowest thread then destination.
    /// Locking bounds the pass at ≤ N steps and — because only positive-gain steps
    /// apply — intra-node mass is monotonically non-decreasing, so a refined plan
    /// never scores below its seed.
    pub fn refine(
        &self,
        view: &dyn CorrelationView,
        n_nodes: usize,
        current: &[NodeId],
        filter: &MoveFilter<'_>,
    ) -> RefineOutcome {
        let n = view.n();
        assert_eq!(current.len(), n, "placement must cover every thread");
        let mut out = RefineOutcome {
            placement: current.to_vec(),
            ..RefineOutcome::default()
        };
        if n_nodes == 0 || n == 0 {
            return out;
        }
        let cap = n.div_ceil(n_nodes);
        let mut load = vec![0usize; n_nodes];
        for p in &out.placement {
            load[p.index()] += 1;
        }

        // Adjacency plus conn[t][k] = correlation mass between t and node k's threads:
        // O(E) to build, O(deg t) to update per move, O(N·K) per best-move scan.
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut conn = vec![0.0f64; n * n_nodes];
        view.for_each_pair(&mut |i, j, w| {
            if !w.is_finite() {
                return;
            }
            adj[i.index()].push((j.0, w));
            adj[j.index()].push((i.0, w));
            conn[i.index() * n_nodes + out.placement[j.index()].index()] += w;
            conn[j.index() * n_nodes + out.placement[i.index()].index()] += w;
        });

        // Exact move delta re-derived from the adjacency before applying: the conn
        // rows accumulate float error across moves, and the monotonicity guarantee
        // (refined ≥ seed) rides on applied gains being truly positive.
        let exact_gain = |placement: &[NodeId], t: usize, d: usize| -> f64 {
            let from = placement[t];
            adj[t]
                .iter()
                .map(|&(v, w)| {
                    let node = placement[v as usize];
                    if node.index() == d {
                        w
                    } else if node == from {
                        -w
                    } else {
                        0.0
                    }
                })
                .sum()
        };
        let apply = |out: &mut RefineOutcome, conn: &mut [f64], t: usize, d: usize, gain: f64, cost: f64| {
            let from = out.placement[t];
            out.placement[t] = NodeId(d as u16);
            for &(v, w) in &adj[t] {
                conn[v as usize * n_nodes + from.index()] -= w;
                conn[v as usize * n_nodes + d] += w;
            }
            out.moves.push(RefinedMove {
                thread: ThreadId(t as u32),
                from,
                to: NodeId(d as u16),
                gain,
                cost_bytes: cost,
            });
        };

        enum Step {
            Move(usize, usize),
            Swap(usize, usize),
        }
        let mut locked = vec![false; n];
        loop {
            // Candidate 1: the best capacity-respecting single move. Alongside,
            // record the top-2 per-(source, dest) champion threads by conn delta,
            // capacity-blind — the building blocks for swap candidates. Two per slot,
            // not one: when both sides' champions are partners of the same clique
            // their swap gain cancels, and the runner-up pairing escapes that trap.
            let mut best_move: Option<(f64, usize, usize)> = None;
            let mut champ: Vec<[Option<(f64, usize)>; 2]> = vec![[None; 2]; n_nodes * n_nodes];
            for t in 0..n {
                if locked[t] {
                    continue;
                }
                let cur = out.placement[t].index();
                let row = &conn[t * n_nodes..(t + 1) * n_nodes];
                for d in 0..n_nodes {
                    if d == cur {
                        continue;
                    }
                    let gain = row[d] - row[cur];
                    let slot = &mut champ[cur * n_nodes + d];
                    let beats = |prev: Option<(f64, usize)>| {
                        prev.is_none_or(|(bg, bt)| gain > bg || (gain == bg && t < bt))
                    };
                    if beats(slot[0]) {
                        slot[1] = slot[0];
                        slot[0] = Some((gain, t));
                    } else if beats(slot[1]) {
                        slot[1] = Some((gain, t));
                    }
                    if gain <= 0.0 || load[d] >= cap {
                        continue;
                    }
                    let better = match best_move {
                        None => true,
                        Some((bg, bt, bd)) => {
                            gain > bg || (gain == bg && (t, d) < (bt, bd))
                        }
                    };
                    if better {
                        best_move = Some((gain, t, d));
                    }
                }
            }
            // Candidate 2: the best pairwise exchange — the KL move that still makes
            // progress when every node sits exactly at capacity and no single move is
            // admissible. Gain = both one-way deltas minus twice the pair's own edge
            // (it is cut before and after the swap).
            let mut best_swap: Option<(f64, usize, usize)> = None;
            for a in 0..n_nodes {
                for b in (a + 1)..n_nodes {
                    for ca in champ[a * n_nodes + b] {
                        let Some((ga, x)) = ca else { continue };
                        for cb in champ[b * n_nodes + a] {
                            let Some((gb, y)) = cb else { continue };
                            let (t, u) = if x < y { (x, y) } else { (y, x) };
                            let gain = ga + gb
                                - 2.0
                                    * view.pair_weight(ThreadId(t as u32), ThreadId(u as u32));
                            if gain <= 0.0 {
                                continue;
                            }
                            let better = match best_swap {
                                None => true,
                                Some((bg, bt, bu)) => {
                                    gain > bg || (gain == bg && (t, u) < (bt, bu))
                                }
                            };
                            if better {
                                best_swap = Some((gain, t, u));
                            }
                        }
                    }
                }
            }

            // Pick the stronger candidate; a tie prefers the cheaper single move.
            let (gain, step) = match (best_move, best_swap) {
                (Some((gm, _, _)), Some((gs, t, u))) if gs > gm => (gs, Step::Swap(t, u)),
                (Some((gm, t, d)), _) => (gm, Step::Move(t, d)),
                (None, Some((gs, t, u))) => (gs, Step::Swap(t, u)),
                (None, None) => break,
            };
            let (movers_buf, movers_len) = match &step {
                Step::Move(t, _) => ([*t, 0], 1),
                Step::Swap(t, u) => ([*t, *u], 2),
            };
            let movers = &movers_buf[..movers_len];
            if gain < filter.min_gain {
                out.vetoed_gain += 1;
                break;
            }
            if filter.in_cooldown.is_some_and(|c| movers.iter().any(|&t| c[t])) {
                out.vetoed_cooldown += 1;
                for &t in movers {
                    locked[t] = true;
                }
                continue;
            }
            let cost: f64 = filter.costs.map_or(0.0, |c| movers.iter().map(|&t| c[t]).sum());
            if filter.costs.is_some() && gain * filter.gain_horizon < cost {
                out.vetoed_cost += 1;
                for &t in movers {
                    locked[t] = true;
                }
                continue;
            }
            if let Some(budget) = filter.budget_bytes {
                if out.spent_bytes + cost > budget {
                    out.vetoed_budget += 1;
                    for &t in movers {
                        locked[t] = true;
                    }
                    continue;
                }
            }
            for &t in movers {
                locked[t] = true;
            }
            match step {
                Step::Move(t, d) => {
                    let exact = exact_gain(&out.placement, t, d);
                    if exact <= 0.0 {
                        continue;
                    }
                    let from = out.placement[t].index();
                    load[from] -= 1;
                    load[d] += 1;
                    apply(&mut out, &mut conn, t, d, exact, cost);
                    out.spent_bytes += cost;
                }
                Step::Swap(t, u) => {
                    let a = out.placement[t].index();
                    let b = out.placement[u].index();
                    // Exact combined delta as two sequential moves; the second leg's
                    // delta accounts for the first already being in place.
                    let exact_t = exact_gain(&out.placement, t, b);
                    let exact_u = exact_gain(&out.placement, u, a)
                        - 2.0 * view.pair_weight(ThreadId(t as u32), ThreadId(u as u32));
                    if exact_t + exact_u <= 0.0 {
                        continue;
                    }
                    let (cost_t, cost_u) = filter.costs.map_or((0.0, 0.0), |c| (c[t], c[u]));
                    apply(&mut out, &mut conn, t, b, exact_t, cost_t);
                    apply(&mut out, &mut conn, u, a, exact_u, cost_u);
                    out.spent_bytes += cost_t + cost_u;
                }
            }
        }
        out
    }

    /// Fraction of total correlation mass between threads on the same node.
    pub fn intra_fraction(&self, view: &dyn CorrelationView, placement: &[NodeId]) -> f64 {
        assert_eq!(placement.len(), view.n());
        let mut intra = 0.0;
        let mut total = 0.0;
        view.for_each_pair(&mut |i, j, w| {
            total += w;
            if placement[i.index()] == placement[j.index()] {
                intra += w;
            }
        });
        if total == 0.0 {
            0.0
        } else {
            intra / total
        }
    }

    /// Marginal change in intra-node correlation if `thread` moved to `dest` — the
    /// *gain* side of the migration-profitability test (the *cost* side is the
    /// sticky-set footprint).
    pub fn migration_gain(
        &self,
        view: &dyn CorrelationView,
        placement: &[NodeId],
        thread: ThreadId,
        dest: NodeId,
    ) -> f64 {
        assert_eq!(placement.len(), view.n());
        let src = placement[thread.index()];
        if src == dest {
            return 0.0;
        }
        let mut gain = 0.0;
        view.for_each_pair(&mut |i, j, w| {
            let other = if i == thread {
                j
            } else if j == thread {
                i
            } else {
                return;
            };
            let node = placement[other.index()];
            if node == dest {
                gain += w;
            } else if node == src {
                gain -= w;
            }
        });
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_core::Tcm;

    /// Two cliques of two threads each: {0,1} and {2,3} heavily correlated.
    fn clique_tcm() -> Tcm {
        let mut t = Tcm::new(4);
        t.add_pair(ThreadId(0), ThreadId(1), 100.0);
        t.add_pair(ThreadId(2), ThreadId(3), 100.0);
        t.add_pair(ThreadId(0), ThreadId(2), 1.0);
        t
    }

    #[test]
    fn plan_collocates_cliques() {
        let plan = LoadBalancer::new().plan(&clique_tcm(), 2);
        assert_eq!(plan.placement[0], plan.placement[1], "clique A together");
        assert_eq!(plan.placement[2], plan.placement[3], "clique B together");
        assert_ne!(plan.placement[0], plan.placement[2], "capacity splits them");
        assert!(plan.intra_fraction > 0.99, "{}", plan.intra_fraction);
    }

    #[test]
    fn plan_respects_capacity() {
        // Everything correlated with everything: capacity must still split 4 over 2.
        let mut t = Tcm::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                t.add_pair(ThreadId(i), ThreadId(j), 10.0);
            }
        }
        let plan = LoadBalancer::new().plan(&t, 2);
        let on0 = plan.placement.iter().filter(|n| n.0 == 0).count();
        assert_eq!(on0, 2);
    }

    #[test]
    fn migration_gain_matches_intra_delta() {
        let tcm = clique_tcm();
        let lb = LoadBalancer::new();
        // Bad placement: split both cliques.
        let placement = vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)];
        let before = lb.intra_fraction(&tcm, &placement);
        let gain = lb.migration_gain(&tcm, &placement, ThreadId(1), NodeId(0));
        assert!(gain > 0.0, "reuniting clique A is profitable");
        let mut after_placement = placement.clone();
        after_placement[1] = NodeId(0);
        let after = lb.intra_fraction(&tcm, &after_placement);
        assert!(after > before);
        // The absolute gain equals the intra-mass delta.
        let total: f64 = 100.0 + 100.0 + 1.0;
        assert!(((after - before) * total - gain).abs() < 1e-9);
        assert_eq!(lb.migration_gain(&tcm, &placement, ThreadId(1), NodeId(1)), 0.0);
    }

    #[test]
    fn zero_nodes_yields_an_empty_plan() {
        let plan = LoadBalancer::new().plan(&clique_tcm(), 0);
        assert!(plan.placement.is_empty());
        assert_eq!(plan.intra_fraction, 0.0);
    }

    #[test]
    fn nan_correlations_do_not_poison_the_sort() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(1), f64::NAN);
        t.add_pair(ThreadId(1), ThreadId(2), 5.0);
        // NaN never satisfies `w > 0`, so the view drops it: the plan completes
        // deterministically.
        let plan = LoadBalancer::new().plan(&t, 3);
        assert_eq!(plan.placement.len(), 3);
    }

    #[test]
    fn leftover_fill_respects_capacity_with_blocked_pairs() {
        // Regression for the leftover fill pass: 6 threads on 2 nodes (cap = 3).
        // A heavy 4-clique {0,1,2,3} wants one node; its third and fourth members
        // get capacity-blocked once a node holds 3, and threads 4, 5 are entirely
        // uncorrelated. The fill pass must land every thread without ever pushing
        // a node past ⌈N/K⌉.
        let mut t = Tcm::new(6);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                t.add_pair(ThreadId(i), ThreadId(j), 50.0);
            }
        }
        let plan = LoadBalancer::new().plan(&t, 2);
        assert_eq!(plan.placement.len(), 6);
        for node in 0..2u16 {
            let load = plan.placement.iter().filter(|n| n.0 == node).count();
            assert_eq!(load, 3, "cap = ceil(6/2) must hold on node {node}");
        }
    }

    #[test]
    fn plan_is_invariant_to_pair_insertion_order() {
        // All-equal correlations maximize sort ties: the plan must come out of the
        // (value, indices) tie-break identically however the pairs were added.
        let pairs: Vec<(u32, u32)> =
            (0..5u32).flat_map(|i| ((i + 1)..5).map(move |j| (i, j))).collect();
        let orders: Vec<Vec<(u32, u32)>> = vec![
            pairs.clone(),
            pairs.iter().rev().copied().collect(),
            {
                // Deterministic interleave: evens then odds.
                let mut v: Vec<(u32, u32)> = pairs.iter().step_by(2).copied().collect();
                v.extend(pairs.iter().skip(1).step_by(2));
                v
            },
        ];
        let plans: Vec<PlacementPlan> = orders
            .into_iter()
            .map(|order| {
                let mut t = Tcm::new(5);
                for (i, j) in order {
                    t.add_pair(ThreadId(i), ThreadId(j), 7.0);
                }
                LoadBalancer::new().plan(&t, 2)
            })
            .collect();
        assert_eq!(plans[0], plans[1], "reversed insertion changed the plan");
        assert_eq!(plans[0], plans[2], "interleaved insertion changed the plan");
        let cap = 5usize.div_ceil(2);
        for node in 0..2u16 {
            assert!(
                plans[0].placement.iter().filter(|n| n.0 == node).count() <= cap,
                "capacity exceeded"
            );
        }
    }

    #[test]
    fn empty_tcm_plans_anything_balanced() {
        let plan = LoadBalancer::new().plan(&Tcm::new(6), 3);
        for node in 0..3u16 {
            assert_eq!(
                plan.placement.iter().filter(|n| n.0 == node).count(),
                2,
                "balanced"
            );
        }
        assert_eq!(plan.intra_fraction, 0.0);
    }

    #[test]
    fn refine_repairs_a_bad_seed_monotonically() {
        // Split both cliques across nodes; refinement must reunite them.
        let tcm = clique_tcm();
        let lb = LoadBalancer::new();
        let bad = vec![NodeId(0), NodeId(1), NodeId(1), NodeId(0)];
        let before = lb.intra_fraction(&tcm, &bad);
        let out = lb.refine(&tcm, 2, &bad, &MoveFilter::default());
        let after = lb.intra_fraction(&tcm, &out.placement);
        assert!(after >= before, "refine never loses mass: {before} -> {after}");
        assert!(after > 0.99, "{after}");
        assert_eq!(out.placement[0], out.placement[1]);
        assert_eq!(out.placement[2], out.placement[3]);
        assert!(!out.moves.is_empty());
        // Applied gains are the exact intra-mass deltas, so they sum to the total.
        let gain_sum: f64 = out.moves.iter().map(|m| m.gain).sum();
        let total = 201.0;
        assert!(((after - before) * total - gain_sum).abs() < 1e-6);
    }

    #[test]
    fn refine_honours_cooldown_and_budget_vetoes() {
        let tcm = clique_tcm();
        let lb = LoadBalancer::new();
        let bad = vec![NodeId(0), NodeId(1), NodeId(1), NodeId(0)];

        // Every thread cooling down: nothing moves, every candidate is attributed.
        let cooldown = vec![true; 4];
        let out = lb.refine(
            &tcm,
            2,
            &bad,
            &MoveFilter {
                in_cooldown: Some(&cooldown),
                ..MoveFilter::default()
            },
        );
        assert!(out.moves.is_empty());
        assert!(out.vetoed_cooldown > 0);
        assert_eq!(out.placement, bad);

        // A zero budget with non-zero costs blocks every priced move.
        let costs = vec![10.0; 4];
        let out = lb.refine(
            &tcm,
            2,
            &bad,
            &MoveFilter {
                costs: Some(&costs),
                gain_horizon: 1e9,
                budget_bytes: Some(0.0),
                ..MoveFilter::default()
            },
        );
        assert!(out.moves.is_empty());
        assert!(out.vetoed_budget > 0);
        assert_eq!(out.spent_bytes, 0.0);

        // An unpayable cost trips the profitability veto instead.
        let heavy = vec![1e12; 4];
        let out = lb.refine(
            &tcm,
            2,
            &bad,
            &MoveFilter {
                costs: Some(&heavy),
                gain_horizon: 1.0,
                ..MoveFilter::default()
            },
        );
        assert!(out.moves.is_empty());
        assert!(out.vetoed_cost > 0);
    }

    #[test]
    fn refine_min_gain_stops_the_pass() {
        let tcm = clique_tcm();
        let lb = LoadBalancer::new();
        let bad = vec![NodeId(0), NodeId(1), NodeId(1), NodeId(0)];
        let out = lb.refine(
            &tcm,
            2,
            &bad,
            &MoveFilter {
                min_gain: 1e9,
                ..MoveFilter::default()
            },
        );
        assert!(out.moves.is_empty());
        assert_eq!(out.vetoed_gain, 1, "the stop is recorded once");
        assert_eq!(out.placement, bad);
    }

    #[test]
    fn plan_via_topk_view_matches_dense_on_the_head() {
        use jessy_core::TopKPairs;
        let tcm = clique_tcm();
        let mut tk = TopKPairs::new(4, 3);
        tk.observe_round(&tcm.to_sparse(), |_| 0.0);
        let lb = LoadBalancer::new();
        let dense = lb.plan(&tcm, 2);
        let head = lb.plan(&tk, 2);
        assert_eq!(dense.placement, head.placement, "head covers every pair here");
    }
}
