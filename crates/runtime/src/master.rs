//! The master JVM's correlation-computing daemon (Fig. 2).
//!
//! Runs on its own OS thread for the duration of a cluster run: drains OAL batches
//! from the mailbox and groups them into TCM rounds **by interval number** — round
//! `r` covers intervals `[r·ipr, (r+1)·ipr)` of every thread. Grouping by interval
//! instead of arrival order keeps the correlation map deterministic under thread
//! scheduling: a pair of threads touching an object in the same interval always lands
//! in the same round.
//!
//! Round assembly is delegated to the [`RoundScheduler`], which tolerates a lossy
//! network (see [`crate::cluster::ClusterBuilder::faults`]):
//!
//! * **Deduplication** — a second copy of the same (thread, interval) OAL is dropped.
//! * **Deadline close** — normally a round closes once *every* thread's interval
//!   watermark passes the round's end (threads emit even empty OALs so the watermark
//!   is well-defined). When OALs can be lost that guarantee dies with them, so with
//!   `ProfilerConfig::round_deadline_intervals` set, a round also closes once the
//!   *fastest* thread is that many grace intervals past the end — a stalled or
//!   silenced thread can no longer wedge the pipeline.
//! * **Late arrivals** — an OAL for an already-closed round is buffered and folded
//!   into the cumulative TCM at the end of the run (it still improves the final map;
//!   it just can't steer the controller retroactively).
//!
//! Each closed round carries its **coverage** — the fraction of expected
//! (thread, interval) OALs that actually arrived — and the [`AdaptiveController`]
//! only acts on rounds above the configured coverage floor, degrading gracefully to
//! fixed-rate profiling instead of thrashing rates on loss-shaped phantoms.
//!
//! The daemon measures its *real* CPU time spent building TCM rounds; Table III's
//! "TCM Computing Time" column reads this, because in our reproduction the TCM
//! construction is a real computation (the paper likewise ran it on a dedicated
//! machine so it would not distort execution times).
//!
//! # Crash-stop recovery (DESIGN.md §12)
//!
//! The daemon also survives **process-level** crash-stop failures scheduled by
//! [`jessy_net::FaultPlan::master_crashes`]:
//!
//! * Every `ProfilerConfig::checkpoint_every_rounds` closed rounds it snapshots a
//!   [`ProfilerCheckpoint`] — watermarks, adaptive baselines, rate table, the
//!   accumulated [`Tcm`] — and truncates its replay log of accepted post-checkpoint
//!   OALs (modeling a durable WAL / worker retransmit buffers).
//! * A master crash window kills the daemon's *volatile* state; OAL batches in
//!   flight while it is down are deferred by the transport, not dropped. The first
//!   batch at/after the window's end triggers a **restore**: the latest checkpoint
//!   is reinstated, the replay log is re-ingested deterministically, and the master
//!   **epoch** is bumped and broadcast with the rate table. When no message faults
//!   dropped OALs, the recovered TCM is bit-identical to the uninterrupted run
//!   (integer-valued f64 sums below 2^53 are exact and association-free); with
//!   drops, round coverage reflects the loss and the PR 1 machinery degrades
//!   gracefully.
//! * Arriving OALs stamped with a **stale epoch** that duplicate already-replayed
//!   state are *fenced* (counted, never double-folded); stale-but-new OALs are still
//!   accepted — fencing them too would turn every in-flight batch at restore time
//!   into data loss.
//! * Threads on nodes that crash more than `ProfilerConfig::quarantine_after_crashes`
//!   times are **quarantined** out of the round-coverage denominator (and the
//!   complete-close watermark rule), so a flapping node cannot starve adaptive
//!   convergence.

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use jessy_core::adaptive::apply_rate_change;
use jessy_core::sampling::ClassGapState;
use jessy_core::tcm::RoundSummary;
use jessy_core::{
    BudgetCheckpoint, BudgetOutcome, BudgetedController, DegradeStep, DriftConfig,
    HomeAwareAnalyzer, Oal, ProfilerConfig, RateCause, RoundOutcome, ShardedTcmReducer, SketchTcm,
    SketchedTopKView, SparseTcm, Tcm, TcmBackend, TopKPairs, TreeTcmReducer,
};
use jessy_gos::ClassId;
use jessy_net::{Mailbox, MasterCrashWindow, MsgClass, NodeId, ThreadId};
use jessy_obs::EventKind;

use crate::cluster::ClusterShared;
use crate::dynamic::{
    plan_and_post, plan_epoch, IntraSample, PlacementTelemetry, PlannedMigration, RebalanceConfig,
};
use crate::error::RuntimeError;

/// An OAL batch stamped with the sender's view of the master epoch (learned at
/// startup, from rejoin handshakes and from rate-change broadcasts). The scheduler
/// uses the stamp to *fence* stale duplicates after a master restore instead of
/// double-folding them.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOal {
    /// Master epoch the sender last observed.
    pub epoch: u64,
    /// The batch itself.
    pub oal: Oal,
}

/// One applied rate change, for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedRateChange {
    /// Round in which the change was decided.
    pub round: u64,
    /// The class name.
    pub class_name: String,
    /// New rate label ("4X", "full").
    pub new_rate: String,
    /// The relative distance that triggered it.
    pub relative_distance: f64,
    /// Objects re-tagged by the resampling walk.
    pub resampled_objects: usize,
    /// Whether the change was a post-convergence drift re-activation (as opposed
    /// to the pre-convergence refinement loop).
    pub drift: bool,
}

/// A round on which the adaptive controller declined to act because too few of its
/// OALs arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedRateChange {
    /// The distrusted round.
    pub round: u64,
    /// Its OAL coverage, below the configured floor.
    pub coverage: f64,
}

/// One class's sampling state captured when a TCM round closed, for the
/// convergence timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRoundState {
    /// The class name.
    pub class_name: String,
    /// Rate label in force after this round's decisions ("4X", "full").
    pub rate: String,
    /// The relative TCM distance that drove a rate change this round, or `0.0`
    /// when the controller left the class alone.
    pub relative_distance: f64,
    /// Whether the controller considers the class converged (rate frozen).
    pub converged: bool,
}

/// One row of the per-round convergence timeline: coverage plus the rate
/// trajectory of every registered class at the moment round `round` closed.
/// The report exposes the full vector as [`MasterOutput::timeline`], turning
/// "did the controller converge, and how fast" into data instead of archaeology
/// over `rate_changes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTimeline {
    /// The closed round's id.
    pub round: u64,
    /// Fraction of expected (thread, interval) OALs that arrived.
    pub coverage: f64,
    /// Closed by the grace deadline rather than complete watermarks.
    pub deadline_hit: bool,
    /// Per-class state, in class-id order.
    pub classes: Vec<ClassRoundState>,
}

/// Aggregate telemetry of the tree-mode reduction pipeline (all zero when the
/// classic flat coordinator is in use). Feeds the `master.reduce.*` metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReduceTelemetry {
    /// Rounds (including the end-of-run late fold, if any) reduced by the tree.
    pub tree_rounds: u64,
    /// Object records that crossed nodes in the owner shuffle.
    pub shuffle_records: u64,
    /// Modeled wire bytes of the owner shuffle.
    pub shuffle_bytes: u64,
    /// Sparse cells shipped across aggregation-tree edges.
    pub partial_cells: u64,
    /// Modeled wire bytes of partial-TCM messages on real (non-self) edges.
    pub partial_bytes: u64,
    /// Subtree partials the master folded (Σ over rounds; ≤ fanout each).
    pub master_partials: u64,
}

/// Everything the master produced during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasterOutput {
    /// The cumulative thread correlation map.
    pub tcm: Tcm,
    /// OAL batches ingested (including empty interval contexts and late arrivals,
    /// excluding duplicates).
    pub oals_ingested: u64,
    /// TCM rounds closed.
    pub rounds: u64,
    /// Distinct objects organized over all rounds (Σ per-round `M`).
    pub objects_organized: u64,
    /// Real nanoseconds spent ingesting OALs and building TCM rounds.
    pub tcm_build_real_ns: u64,
    /// Rate changes applied by the adaptive controller.
    pub rate_changes: Vec<AppliedRateChange>,
    /// Rounds the controller skipped for insufficient coverage.
    pub skipped_rate_changes: Vec<SkippedRateChange>,
    /// Per closed round, the fraction of expected (thread, interval) OALs received
    /// (1.0 on a fault-free network).
    pub round_coverage: Vec<f64>,
    /// Rounds closed by the deadline rather than by complete watermarks.
    pub deadline_rounds: u64,
    /// OALs that arrived after their round had closed (folded into the final TCM).
    pub late_oals: u64,
    /// Duplicated OALs discarded by the deduplicator.
    pub duplicate_oals: u64,
    /// Migration directives issued by the dynamic balancer, if enabled.
    pub planned_migrations: Vec<PlannedMigration>,
    /// Placement-engine telemetry: planning epochs, directives, vetoes, fenced
    /// directives, applied migrations and the intra-fraction trajectory. All
    /// zero/empty when rebalancing is off.
    pub placement: PlacementTelemetry,
    /// The raw OAL stream, when `ProfilerConfig::record_oals` was set.
    pub oal_log: Vec<Oal>,
    /// Checkpoints snapshotted (`ProfilerConfig::checkpoint_every_rounds`).
    pub checkpoints_taken: u64,
    /// Master crash-restarts performed (checkpoint restore + replay).
    pub restores: u64,
    /// OALs re-ingested from the replay log across all restores.
    pub replayed_oals: u64,
    /// Stale-epoch OALs fenced after a restore (duplicates of replayed state).
    pub fenced_oals: u64,
    /// Nodes expelled from the coverage denominator for crashing more than
    /// `ProfilerConfig::quarantine_after_crashes` times.
    pub quarantined_nodes: u64,
    /// Classes the adaptive controller had frozen by the end of the run.
    pub converged_classes: u64,
    /// The master epoch at the end of the run (0 = never crashed).
    pub final_epoch: u64,
    /// Per-round convergence timeline (rate trajectory + coverage per round).
    pub timeline: Vec<RoundTimeline>,
    /// The `ProfilerConfig::tcm_top_k` hottest correlated pairs `(i, j, weight)`,
    /// hottest first — the streaming view the placement engine consumes. Empty
    /// when `tcm_top_k` is 0.
    pub top_pairs: Vec<(u32, u32, f64)>,
    /// Tree-reduction telemetry (`master.reduce.*`); all zero in flat mode.
    pub reduce: ReduceTelemetry,
    /// Straggler demotions performed by the gray-failure detector
    /// (`ProfilerConfig::straggler_lag_intervals`).
    pub stragglers: u64,
    /// Rounds whose measured profiling cost exceeded
    /// `ProfilerConfig::overhead_budget`.
    pub budget_over_rounds: u64,
    /// Degradation-ladder rungs actually taken by the budget controller
    /// (`budget_over_rounds` minus the rounds the ladder was already exhausted).
    pub budget_degrades: u64,
    /// Per closed round, the measured profiling cost as a fraction of the
    /// charged application compute since the previous close (the budget loop's
    /// input; recorded whether or not a budget is configured).
    pub round_cost_fraction: Vec<f64>,
    /// Drift re-activations applied: converged classes the controller
    /// un-converged after a post-convergence `E_ABS` spike
    /// (`ProfilerConfig::drift_threshold`). Always 0 with drift disabled.
    pub drift_reactivations: u64,
}

/// How the [`RoundScheduler`] classified one arriving OAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Counted toward an open round.
    Accepted,
    /// A (thread, interval) pair already seen — discarded.
    Duplicate,
    /// Arrived after its round closed — buffered for the end-of-run fold.
    Late,
    /// A stale-epoch copy of state the restored master already holds — fenced
    /// (discarded and counted separately from network duplicates).
    Fenced,
}

/// One round the scheduler declared closed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedRound {
    /// Round id (rounds close strictly in order).
    pub round: u64,
    /// The round's non-empty OALs, in arrival order.
    pub oals: Vec<Oal>,
    /// Fraction of expected (thread, interval) OALs received, in `[0, 1]`.
    pub coverage: f64,
    /// Closed by the grace deadline instead of complete watermarks.
    pub deadline_hit: bool,
}

/// Groups an out-of-order, lossy, possibly duplicated OAL stream into TCM rounds.
///
/// Extracted from the daemon loop so that fault-tolerance semantics are directly
/// testable without spinning up a cluster: feed OALs with [`RoundScheduler::ingest`],
/// collect closed rounds with [`RoundScheduler::ready_rounds`], and finish with
/// [`RoundScheduler::flush`] + [`RoundScheduler::take_late`].
#[derive(Debug)]
pub struct RoundScheduler {
    n_threads: usize,
    /// Intervals per round.
    ipr: u64,
    /// Grace intervals past a round's end before the fastest thread's watermark
    /// force-closes it (`None` = wait for every thread, the fault-free behavior).
    deadline_intervals: Option<u64>,
    /// Next round to close.
    next_round: u64,
    /// Per-thread watermark: 1 + highest interval id seen.
    watermark: Vec<u64>,
    /// Round id → buffered non-empty OALs of its interval range.
    buckets: BTreeMap<u64, Vec<Oal>>,
    /// Round id → distinct (thread, interval) OALs received (coverage numerator;
    /// empty interval contexts count — they are interval reports too).
    received: BTreeMap<u64, u64>,
    /// Every (thread, interval) pair ever accepted, for deduplication.
    seen: HashSet<(u32, u64)>,
    /// Non-empty OALs that arrived after their round closed.
    late: Vec<Oal>,
    late_count: u64,
    duplicates: u64,
    fenced: u64,
    deadline_rounds: u64,
    /// Per-thread quarantine start: `Some(q)` excludes the thread's intervals `>= q`
    /// from the coverage numerator, denominator and the complete-close watermark rule
    /// (the thread's node crashed past the flap threshold). Its data, if any still
    /// arrives, is folded into the TCM anyway — data is data.
    quarantine_from: Vec<Option<u64>>,
}

/// Serializable snapshot of a [`RoundScheduler`], in canonical form: map-like state
/// is stored as sorted key/value vectors so two equal schedulers encode identically.
/// Self-contained — [`RoundScheduler::from_checkpoint`] needs nothing else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCheckpoint {
    /// Thread count (sizes the watermark vector).
    pub n_threads: u64,
    /// Intervals per round.
    pub ipr: u64,
    /// Deadline grace, if configured.
    pub deadline_intervals: Option<u64>,
    /// Next round to close.
    pub next_round: u64,
    /// Per-thread watermarks.
    pub watermark: Vec<u64>,
    /// Open-round OAL buffers, sorted by round id.
    pub buckets: Vec<(u64, Vec<Oal>)>,
    /// Open-round receipt counts, sorted by round id.
    pub received: Vec<(u64, u64)>,
    /// Accepted (thread, interval) pairs, sorted.
    pub seen: Vec<(u32, u64)>,
    /// Buffered late OALs.
    pub late: Vec<Oal>,
    /// Late-arrival count (including empty contexts).
    pub late_count: u64,
    /// Network duplicates discarded.
    pub duplicates: u64,
    /// Stale-epoch OALs fenced.
    pub fenced: u64,
    /// Rounds closed by deadline.
    pub deadline_rounds: u64,
    /// Per-thread quarantine starts.
    pub quarantine_from: Vec<Option<u64>>,
}

impl RoundScheduler {
    /// Scheduler for `n_threads` threads at `ipr` intervals per round.
    pub fn new(n_threads: usize, ipr: u64, deadline_intervals: Option<u64>) -> Self {
        assert!(n_threads > 0, "scheduler needs at least one thread");
        RoundScheduler {
            n_threads,
            ipr: ipr.max(1),
            deadline_intervals,
            next_round: 0,
            watermark: vec![0; n_threads],
            buckets: BTreeMap::new(),
            received: BTreeMap::new(),
            seen: HashSet::new(),
            late: Vec::new(),
            late_count: 0,
            duplicates: 0,
            fenced: 0,
            deadline_rounds: 0,
            quarantine_from: vec![None; n_threads],
        }
    }

    /// Install per-thread quarantine starts (see the `quarantine_from` field). The
    /// table must list every thread.
    pub fn set_quarantine(&mut self, quarantine_from: Vec<Option<u64>>) {
        assert_eq!(quarantine_from.len(), self.n_threads, "one entry per thread");
        self.quarantine_from = quarantine_from;
    }

    /// The quarantine table in force.
    pub fn quarantine_table(&self) -> Vec<Option<u64>> {
        self.quarantine_from.clone()
    }

    /// Feed one OAL, classifying it. Call [`RoundScheduler::ready_rounds`] afterwards
    /// (or after a batch) to collect any rounds this arrival completed.
    pub fn ingest(&mut self, oal: Oal) -> Ingest {
        self.ingest_epoch(oal, false)
    }

    /// Feed one OAL carrying an epoch verdict: `stale_epoch` marks a batch stamped
    /// with an epoch older than the master's current one. A stale batch duplicating
    /// an already-accepted (thread, interval) pair is **fenced** — after a restore,
    /// replayed state must not be double-folded by in-flight retransmissions of the
    /// previous regime. A stale batch carrying a *new* pair is still accepted: it is
    /// real data that was in flight when the master crashed, and fencing it would
    /// convert every restore into data loss.
    pub fn ingest_epoch(&mut self, oal: Oal, stale_epoch: bool) -> Ingest {
        if !self.seen.insert((oal.thread.0, oal.interval)) {
            if stale_epoch {
                self.fenced += 1;
                return Ingest::Fenced;
            }
            self.duplicates += 1;
            return Ingest::Duplicate;
        }
        let t = oal.thread.index();
        self.watermark[t] = self.watermark[t].max(oal.interval + 1);
        let round = oal.interval / self.ipr;
        if round < self.next_round {
            self.late_count += 1;
            if !oal.is_empty() {
                self.late.push(oal);
            }
            return Ingest::Late;
        }
        // A quarantined thread's post-expulsion intervals never count toward
        // coverage: they are outside both numerator and denominator.
        let quarantined = self.quarantine_from[t].is_some_and(|q| oal.interval >= q);
        if !quarantined {
            *self.received.entry(round).or_insert(0) += 1;
        }
        if !oal.is_empty() {
            self.buckets.entry(round).or_default().push(oal);
        }
        Ingest::Accepted
    }

    /// Close and return every round that is ready, in order: rounds all threads have
    /// passed, plus — with a deadline configured — rounds the fastest thread has
    /// outrun by the grace distance. A quarantined thread only needs to have reported
    /// up to its expulsion point: a permanently dead flapper cannot wedge the
    /// complete-close rule.
    pub fn ready_rounds(&mut self) -> Vec<ClosedRound> {
        let max_wm = self.watermark.iter().copied().max().unwrap_or(0);
        let mut out = Vec::new();
        loop {
            // Never close past the observed horizon: a round nothing has reached yet
            // is not "complete", even when every thread is quarantined below it and
            // so owes it nothing (otherwise a fully-quarantined scheduler would spin
            // closing empty future rounds forever).
            if self.next_round * self.ipr >= max_wm {
                break;
            }
            let round_end = (self.next_round + 1) * self.ipr;
            let complete = (0..self.n_threads).all(|t| {
                let required = match self.quarantine_from[t] {
                    Some(q) => round_end.min(q),
                    None => round_end,
                };
                self.watermark[t] >= required
            });
            let expired = self
                .deadline_intervals
                .map(|grace| max_wm >= round_end + grace)
                .unwrap_or(false);
            if !complete && !expired {
                break;
            }
            out.push(self.close_next(!complete));
        }
        out
    }

    /// Close every remaining round in order (run finished; no more OALs will come).
    pub fn flush(&mut self) -> Vec<ClosedRound> {
        let last = self
            .buckets
            .keys()
            .last()
            .copied()
            .max(self.received.keys().last().copied());
        let mut out = Vec::new();
        if let Some(last) = last {
            while self.next_round <= last {
                out.push(self.close_next(false));
            }
        }
        out
    }

    fn close_next(&mut self, deadline_hit: bool) -> ClosedRound {
        let round = self.next_round;
        self.next_round += 1;
        if deadline_hit {
            self.deadline_rounds += 1;
        }
        let round_start = round * self.ipr;
        let round_end = round_start + self.ipr;
        // Denominator: each live thread owes `ipr` intervals; a quarantined thread
        // owes only the prefix before its expulsion point.
        let expected: u64 = (0..self.n_threads)
            .map(|t| match self.quarantine_from[t] {
                Some(q) => round_end.min(q.max(round_start)) - round_start,
                None => self.ipr,
            })
            .sum();
        let received = self.received.remove(&round).unwrap_or(0);
        let coverage = if expected == 0 {
            1.0 // every expected reporter is quarantined: nothing owed, nothing missing
        } else {
            received as f64 / expected as f64
        };
        ClosedRound {
            round,
            oals: self.buckets.remove(&round).unwrap_or_default(),
            coverage,
            deadline_hit,
        }
    }

    /// Take the buffered late (non-empty) OALs for the end-of-run TCM fold.
    pub fn take_late(&mut self) -> Vec<Oal> {
        std::mem::take(&mut self.late)
    }

    /// OALs that arrived after their round closed (including empty contexts).
    pub fn late_count(&self) -> u64 {
        self.late_count
    }

    /// Duplicated OALs discarded.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Stale-epoch OALs fenced after a restore.
    pub fn fenced_count(&self) -> u64 {
        self.fenced
    }

    /// Rounds closed by the deadline rather than by complete watermarks.
    pub fn deadline_rounds(&self) -> u64 {
        self.deadline_rounds
    }

    /// The next round awaiting closure.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// Per-thread interval watermarks (1 + highest interval seen) — the
    /// straggler detector's lag signal.
    pub fn watermarks(&self) -> &[u64] {
        &self.watermark
    }

    /// Snapshot the scheduler in canonical (sorted) form.
    pub fn checkpoint(&self) -> SchedulerCheckpoint {
        let mut seen: Vec<(u32, u64)> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        SchedulerCheckpoint {
            n_threads: self.n_threads as u64,
            ipr: self.ipr,
            deadline_intervals: self.deadline_intervals,
            next_round: self.next_round,
            watermark: self.watermark.clone(),
            buckets: self.buckets.iter().map(|(r, v)| (*r, v.clone())).collect(),
            received: self.received.iter().map(|(r, n)| (*r, *n)).collect(),
            seen,
            late: self.late.clone(),
            late_count: self.late_count,
            duplicates: self.duplicates,
            fenced: self.fenced,
            deadline_rounds: self.deadline_rounds,
            quarantine_from: self.quarantine_from.clone(),
        }
    }

    /// Rebuild a scheduler from a checkpoint; `scheduler.checkpoint()` then
    /// round-trips to an equal snapshot, and the rebuilt scheduler classifies every
    /// subsequent OAL exactly as the snapshotted one would have.
    pub fn from_checkpoint(cp: &SchedulerCheckpoint) -> Self {
        RoundScheduler {
            n_threads: cp.n_threads as usize,
            ipr: cp.ipr.max(1),
            deadline_intervals: cp.deadline_intervals,
            next_round: cp.next_round,
            watermark: cp.watermark.clone(),
            buckets: cp.buckets.iter().cloned().collect(),
            received: cp.received.iter().copied().collect(),
            seen: cp.seen.iter().copied().collect(),
            late: cp.late.clone(),
            late_count: cp.late_count,
            duplicates: cp.duplicates,
            fenced: cp.fenced,
            deadline_rounds: cp.deadline_rounds,
            quarantine_from: cp.quarantine_from.clone(),
        }
    }
}

/// Serializable snapshot of the coordinator's complete profiling state, taken every
/// `ProfilerConfig::checkpoint_every_rounds` closed rounds. All map-like state is
/// stored sorted, so equal coordinator states serialize to identical JSON and the
/// serialize→deserialize round trip is the identity (property-tested).
///
/// Live telemetry counters (`checkpoints_taken`, `restores`, `replayed_oals`,
/// `fenced_oals`) are deliberately **not** part of the snapshot: they describe
/// what actually happened during the run, and rolling them back on restore would
/// falsify the run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerCheckpoint {
    /// Master epoch at snapshot time.
    pub epoch: u64,
    /// Rounds closed so far.
    pub rounds: u64,
    /// The accumulated TCM over those rounds.
    pub tcm: Tcm,
    /// Round-assembly state (watermarks, open buckets, dedup set, late buffer).
    pub scheduler: SchedulerCheckpoint,
    /// Adaptive-controller state (per-class baselines + converged set, wrapped
    /// with the budget loop's ladder position), if adaptive control is on.
    pub controller: Option<BudgetCheckpoint>,
    /// Per-class sampling-rate table, sorted by class id.
    pub rates: Vec<(ClassId, ClassGapState)>,
    /// OALs ingested (non-duplicate) so far.
    pub oals: u64,
    /// Σ per-round distinct objects organized.
    pub objects_organized: u64,
    /// Per-round coverage history.
    pub round_coverage: Vec<f64>,
    /// Per-round profiling-cost history (the budget loop's input).
    pub round_cost_fraction: Vec<f64>,
    /// Applied rate changes so far.
    pub rate_changes: Vec<AppliedRateChange>,
    /// Coverage-skipped rounds so far.
    pub skipped: Vec<SkippedRateChange>,
    /// Planned migrations, if the balancer already ran.
    pub planned_migrations: Vec<PlannedMigration>,
    /// Whether the balancer already ran.
    pub rebalanced: bool,
    /// Round each thread last received a move directive in (continuous mode's
    /// cooldown state): replay re-derives post-checkpoint epochs from this base
    /// exactly as it re-closes rounds.
    pub last_moved_round: Vec<Option<u64>>,
    /// Placement-engine counters accumulated so far; restored with the rounds
    /// they describe so replayed planning epochs don't double-count.
    pub placement_telemetry: PlacementTelemetry,
    /// The recorded OAL stream, when `ProfilerConfig::record_oals` was set.
    pub oal_log: Vec<Oal>,
    /// Convergence timeline rows accumulated so far.
    pub timeline: Vec<RoundTimeline>,
}

pub(crate) struct MasterDaemon {
    handle: std::thread::JoinHandle<Result<MasterOutput, ()>>,
}

impl MasterDaemon {
    pub(crate) fn spawn(
        shared: Arc<ClusterShared>,
        mailbox: Mailbox<EpochOal>,
    ) -> Result<Self, RuntimeError> {
        let handle = std::thread::Builder::new()
            .name("jessy-master".into())
            .spawn(move || {
                // The daemon is executor task `n_threads`. `catch_unwind` keeps a
                // panicking master from wedging the task set: its task is retired
                // and the executor poisoned so worker carriers abort
                // deterministically instead of parking forever.
                let exec = Arc::clone(&shared.exec);
                let master_task = shared.master_task();
                let out = catch_unwind(AssertUnwindSafe(|| run_daemon(shared, mailbox)));
                exec.finish(master_task);
                match out {
                    Ok(out) => Ok(out),
                    Err(_) => {
                        exec.poison();
                        Err(())
                    }
                }
            })
            .map_err(|e| RuntimeError::SpawnFailed(format!("master daemon: {e}")))?;
        Ok(MasterDaemon { handle })
    }

    pub(crate) fn join(self) -> Result<MasterOutput, RuntimeError> {
        match self.handle.join() {
            Ok(Ok(out)) => Ok(out),
            _ => Err(RuntimeError::MasterPanicked),
        }
    }
}

struct Daemon {
    shared: Arc<ClusterShared>,
    config: ProfilerConfig,
    builder: ShardedTcmReducer,
    /// Tree-mode reduction pipeline (`ProfilerConfig::tcm_tree_fanout >= 2`):
    /// replaces the flat `builder` for round reduction; the scheduler, epoch
    /// fencing, deadline and quarantine machinery are untouched.
    tree: Option<TreeTcmReducer>,
    /// Count-min backend for the merged partial stream (`TcmBackend::Sketch`,
    /// tree mode only). When set, no dense cumulative map is maintained.
    sketch: Option<SketchTcm>,
    /// Streaming top-k correlated-pairs view (`ProfilerConfig::tcm_top_k > 0`).
    topk: Option<TopKPairs>,
    /// `master.reduce.*` counters (tree mode only).
    reduce: ReduceTelemetry,
    controller: Option<BudgetedController>,
    scheduler: RoundScheduler,
    oals: u64,
    rounds: u64,
    objects_organized: u64,
    build_ns: u64,
    round_coverage: Vec<f64>,
    /// Per closed round, profiling cost / charged compute since the last close.
    round_cost_fraction: Vec<f64>,
    /// (Σ thread clocks, profiling wire bytes, OAL entries) at the previous
    /// round close — the cost fraction is the delta between closes. All three
    /// are virtual-time/virtual-count reads taken while the master holds the
    /// cooperative token, so the fraction is deterministic.
    cost_base: (u64, u64, u64),
    // ---------------------------------------------------------- gray failure
    /// The crash-quarantine table in force at startup: what a straggler's
    /// threads revert to when the node recovers.
    straggler_base: Vec<Option<u64>>,
    /// Per-node progress-deficit EWMA (α = 0.3), in intervals behind the
    /// fastest-progressing node per round close.
    lag_ewma: Vec<f64>,
    /// Per-node minimum interval watermark at the previous round close, the
    /// baseline for the next progress-deficit measurement.
    prev_node_min: Vec<u64>,
    /// Per-node demotion flag (node currently prorated out of coverage).
    straggler_demoted: Vec<bool>,
    /// Demotion events performed (`MasterOutput::stragglers`).
    stragglers: u64,
    rate_changes: Vec<AppliedRateChange>,
    skipped: Vec<SkippedRateChange>,
    planned_migrations: Vec<PlannedMigration>,
    rebalanced: bool,
    /// Round each thread last received a move directive in (continuous-mode
    /// hysteresis: a thread inside its cooldown window is pinned).
    last_moved_round: Vec<Option<u64>>,
    /// Accumulated placement-engine counters (continuous mode).
    placement: PlacementTelemetry,
    /// Per-object accessor statistics for home repair (Section V's home effect):
    /// maintained only in continuous rebalancing mode with `migrate_homes` on.
    homeaware: Option<HomeAwareAnalyzer>,
    oal_log: Vec<Oal>,
    record_oals: bool,
    timeline: Vec<RoundTimeline>,
    /// Classes whose convergence was already journaled (an event fires once per
    /// class, even when replay re-closes the round that froze it).
    announced_converged: HashSet<ClassId>,
    // ---------------------------------------------------------- crash-stop recovery
    /// Current master epoch (bumped and broadcast on every restore).
    epoch: u64,
    /// TCM accumulated before the last restore; the live `builder` only holds rounds
    /// closed since. `effective_tcm()` merges the two — exact for integer-valued f64.
    base_tcm: Option<Tcm>,
    /// Rounds closed before the last restore (offsets `builder.rounds_closed()`).
    rounds_base: u64,
    /// Latest snapshot, if checkpointing is on and one was taken.
    latest_checkpoint: Option<ProfilerCheckpoint>,
    /// Accepted OALs since the latest checkpoint (the durable WAL a restore replays).
    /// Only maintained when the fault plan schedules master crashes.
    replay_log: Vec<Oal>,
    keep_replay_log: bool,
    /// Master crash windows, sorted by `until_interval`; `next_crash` indexes the
    /// first window whose restart has not fired yet.
    master_crashes: Vec<MasterCrashWindow>,
    next_crash: usize,
    /// One past the highest OAL interval ingested — tells `finish` whether a pending
    /// crash window actually intersected the run.
    max_interval_seen: u64,
    checkpoints_taken: u64,
    restores: u64,
    replayed_oals: u64,
    quarantined_nodes: u64,
}

impl Daemon {
    fn ingest(&mut self, msg: EpochOal) {
        let EpochOal { epoch, oal } = msg;
        // Master restart: the first OAL at/after the current crash window's end finds
        // the master rebooting — restore the latest checkpoint and replay. OALs in
        // flight while the master is down are *deferred, not dropped*: the transport
        // (sender retransmission in a real cluster, the mailbox here) holds them
        // until the restart drains the backlog, so crash loss is confined to the
        // volatile state the snapshot + replay reconstruct. Message-level drop
        // faults compose independently and degrade coverage as in PR 1.
        while self.next_crash < self.master_crashes.len()
            && oal.interval >= self.master_crashes[self.next_crash].until_interval
        {
            self.next_crash += 1;
            self.restore();
        }
        self.max_interval_seen = self.max_interval_seen.max(oal.interval + 1);
        let stale = epoch < self.epoch;
        if self.record_oals {
            self.oal_log.push(oal.clone());
        }
        if self.keep_replay_log {
            self.replay_log.push(oal.clone());
        }
        match self.scheduler.ingest_epoch(oal, stale) {
            Ingest::Duplicate | Ingest::Fenced => {
                // Drop silently; a lossy network retransmitting is not new data.
                if self.record_oals {
                    self.oal_log.pop();
                }
                if self.keep_replay_log {
                    self.replay_log.pop();
                }
                return;
            }
            Ingest::Accepted | Ingest::Late => self.oals += 1,
        }
        for closed in self.scheduler.ready_rounds() {
            self.close_round(closed);
        }
    }

    fn fresh_reducer(&self) -> ShardedTcmReducer {
        let mut b = ShardedTcmReducer::new(self.config.tcm_shards.max(1), self.shared.n_threads);
        if let Some(decay) = self.config.tcm_decay {
            b.set_decay(decay);
        }
        b
    }

    fn fresh_tree(&self) -> Option<TreeTcmReducer> {
        let fanout = self.config.tcm_tree_fanout;
        if fanout < 2 {
            return None;
        }
        let mut t =
            TreeTcmReducer::new(self.shared.n_threads, self.shared.n_nodes.max(1), fanout);
        if let Some(decay) = self.config.tcm_decay {
            t.set_decay(decay);
        }
        Some(t)
    }

    fn fresh_sketch(&self) -> Option<SketchTcm> {
        match self.config.tcm_backend {
            TcmBackend::Sketch { width, depth } if self.config.tcm_tree_fanout >= 2 => Some(
                SketchTcm::new(self.shared.n_threads, width as usize, depth as usize),
            ),
            _ => None,
        }
    }

    fn fresh_topk(&self) -> Option<TopKPairs> {
        (self.config.tcm_top_k > 0)
            .then(|| TopKPairs::new(self.shared.n_threads, self.config.tcm_top_k))
    }

    fn fresh_controller(&self) -> Option<BudgetedController> {
        build_controller(&self.config)
    }

    /// The cumulative TCM: rounds closed since the last restore plus the restored
    /// base. Integer-valued f64 sums below 2^53 are exact and association-free, so
    /// this equals the uninterrupted cumulative bit for bit. In tree mode the
    /// tree's cumulative is bit-identical to the flat reducer's (property-tested
    /// in jessy-core); under the sketch backend no dense cumulative exists, so
    /// this expands the sketch's point estimates — an overestimate-only
    /// approximation, which is why the sketch backend is gated to tree mode and
    /// aimed at production N where the dense map is unaffordable anyway.
    fn effective_tcm(&self) -> Tcm {
        let mut t = if let Some(sk) = &self.sketch {
            let n = self.shared.n_threads;
            let mut pairs = Vec::new();
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    let v = sk.at(ThreadId(i), ThreadId(j));
                    if v > 0.0 {
                        pairs.push((ThreadId(i), ThreadId(j), v));
                    }
                }
            }
            SparseTcm::from_pairs(n, &pairs).to_dense()
        } else if let Some(tree) = &self.tree {
            tree.tcm().clone()
        } else {
            self.builder.reduce()
        };
        if let Some(base) = &self.base_tcm {
            t.merge(base);
        }
        t
    }

    /// Snapshot everything a restarted master needs, and truncate the replay log —
    /// OALs folded into the snapshot no longer need replaying.
    fn take_checkpoint(&mut self) {
        self.checkpoints_taken += 1;
        let gaps = self.shared.prof.gaps();
        let mut rates: Vec<(ClassId, ClassGapState)> =
            gaps.classes().iter().map(|c| (*c, gaps.state(*c))).collect();
        rates.sort_unstable_by_key(|(c, _)| *c);
        self.latest_checkpoint = Some(ProfilerCheckpoint {
            epoch: self.epoch,
            rounds: self.rounds,
            tcm: self.effective_tcm(),
            scheduler: self.scheduler.checkpoint(),
            controller: self.controller.as_ref().map(|c| c.checkpoint()),
            rates,
            oals: self.oals,
            objects_organized: self.objects_organized,
            round_coverage: self.round_coverage.clone(),
            round_cost_fraction: self.round_cost_fraction.clone(),
            rate_changes: self.rate_changes.clone(),
            skipped: self.skipped.clone(),
            planned_migrations: self.planned_migrations.clone(),
            rebalanced: self.rebalanced,
            last_moved_round: self.last_moved_round.clone(),
            placement_telemetry: self.placement.clone(),
            oal_log: self.oal_log.clone(),
            timeline: self.timeline.clone(),
        });
        self.replay_log.clear();
        self.shared.emit_event(
            &self.shared.master_clock(),
            EventKind::CheckpointTaken {
                round: self.rounds,
                epoch: self.epoch,
            },
        );
    }

    /// Master restart: reinstate the latest checkpoint (or restart cold from round
    /// zero if none was ever taken), bump and broadcast the epoch with the rate
    /// table, then deterministically replay the buffered post-checkpoint OALs.
    /// Because the replay log holds exactly the accepted-since-checkpoint stream,
    /// checkpoint + replay is an *identity transform* on accepted state: when no
    /// OALs were dropped by message faults, the recovered TCM is bit-identical to
    /// the uninterrupted run's.
    fn restore(&mut self) {
        self.restores += 1;
        let replay = std::mem::take(&mut self.replay_log);

        match self.latest_checkpoint.clone() {
            Some(cp) => {
                self.rounds = cp.rounds;
                self.rounds_base = cp.rounds;
                self.base_tcm = Some(cp.tcm);
                self.scheduler = RoundScheduler::from_checkpoint(&cp.scheduler);
                self.controller = self.fresh_controller();
                if let (Some(ctl), Some(ccp)) = (self.controller.as_mut(), cp.controller.as_ref()) {
                    ctl.restore(ccp);
                }
                // Re-impose the checkpointed rate table (the restored master
                // re-broadcasts the rates it knew); replay re-derives later steps.
                let gaps = self.shared.prof.gaps();
                for (class, st) in &cp.rates {
                    gaps.set_rate(*class, st.rate);
                }
                self.oals = cp.oals;
                self.objects_organized = cp.objects_organized;
                self.round_coverage = cp.round_coverage;
                self.round_cost_fraction = cp.round_cost_fraction;
                self.rate_changes = cp.rate_changes;
                self.skipped = cp.skipped;
                self.planned_migrations = cp.planned_migrations;
                self.rebalanced = cp.rebalanced;
                self.last_moved_round = cp.last_moved_round;
                self.placement = cp.placement_telemetry;
                self.oal_log = cp.oal_log;
                self.timeline = cp.timeline;
            }
            None => {
                // Cold restart: no snapshot, so the replay log spans the full run.
                // Worker rate tables are left untouched — without a snapshot the
                // restarted master has no record to re-broadcast; the controller
                // re-baselines against the rates currently in force.
                self.rounds = 0;
                self.rounds_base = 0;
                self.base_tcm = None;
                let quarantine = self.scheduler.quarantine_table();
                self.scheduler = RoundScheduler::new(
                    self.shared.n_threads,
                    (self.config.intervals_per_round as u64).max(1),
                    self.config.round_deadline_intervals,
                );
                self.scheduler.set_quarantine(quarantine);
                self.controller = self.fresh_controller();
                self.oals = 0;
                self.objects_organized = 0;
                self.round_coverage.clear();
                self.round_cost_fraction.clear();
                self.rate_changes.clear();
                self.skipped.clear();
                self.planned_migrations.clear();
                self.rebalanced = false;
                self.last_moved_round = vec![None; self.shared.n_threads];
                self.placement = PlacementTelemetry::default();
                self.oal_log.clear();
                self.timeline.clear();
            }
        }
        if let Some(ha) = &mut self.homeaware {
            // Accessor statistics are not checkpointed: repair evidence restarts
            // from what the replayed rounds re-accumulate.
            ha.clear();
        }
        self.builder = self.fresh_reducer();
        // Tree-mode state restarts from the checkpoint base: the replay log
        // re-closes post-checkpoint rounds, refilling the tree/sketch/top-k in
        // the same deterministic order the pre-crash master saw.
        self.tree = self.fresh_tree();
        self.sketch = self.fresh_sketch();
        self.topk = self.fresh_topk();
        // The summary-only switch lives in worker-visible profiler state: re-sync
        // it to the restored ladder position (replay re-derives later rungs).
        if self.config.overhead_budget.is_some() {
            let on = self.controller.as_ref().is_some_and(|c| c.summary_only());
            self.shared.prof.set_summary_only(on);
        }
        // Straggler demotions are volatile observations of the dead regime: drop
        // any overlay back to the crash-quarantine base and re-observe.
        if self.config.straggler_lag_intervals.is_some() {
            self.scheduler.set_quarantine(self.straggler_base.clone());
            self.lag_ewma = vec![0.0; self.shared.n_nodes];
            self.prev_node_min = vec![0; self.shared.n_nodes];
            self.straggler_demoted = vec![false; self.shared.n_nodes];
        }

        // New regime: bump the epoch, publish it to the workers, and account the
        // epoch + rate-table broadcast that re-registration answers carry.
        self.epoch += 1;
        self.shared.master_epoch.store(self.epoch, Ordering::Release);
        let n_rates = self.shared.prof.gaps().classes().len();
        for n in 0..self.shared.n_nodes {
            self.shared.gos.fabric().account_async(
                NodeId::MASTER,
                NodeId(n as u16),
                MsgClass::RateChange,
                24 + 12 * n_rates,
            );
        }

        self.shared.emit_event(
            &self.shared.master_clock(),
            EventKind::MasterRestored {
                epoch: self.epoch,
                replayed: replay.len() as u64,
            },
        );
        for oal in replay {
            self.replayed_oals += 1;
            self.ingest(EpochOal { epoch: self.epoch, oal });
        }
    }

    /// Tree-mode reduction of one round's OALs: leaf pre-reduction at each
    /// thread's node, owner shuffle, k-ary partial merge, then the backend fold
    /// (dense cumulative, or sketch + top-k). Accounts every real fabric hop as
    /// `MsgClass::TcmPartial` traffic and journals it. Returns the same
    /// `RoundSummary` a flat reducer would have produced, so the controller,
    /// timeline and coverage bookkeeping downstream run unchanged.
    fn close_round_tree(&mut self, closed: &ClosedRound) -> RoundSummary {
        let (stats, root) = {
            let tree = self.tree.as_mut().expect("tree mode");
            for oal in &closed.oals {
                let node = self.shared.node_of(oal.thread).0 as usize;
                tree.ingest(node, oal);
            }
            let (stats, subtrees) = tree.close_round_subtrees();
            let root = tree.merge_subtrees(subtrees);
            (stats, root)
        };
        self.reduce.tree_rounds += 1;
        self.reduce.shuffle_records += stats.shuffle_records;
        self.reduce.shuffle_bytes += stats.shuffle_bytes;
        self.reduce.partial_cells += stats.partial_cells;
        self.reduce.partial_bytes += stats.partial_bytes;
        self.reduce.master_partials += stats.master_partials;
        let clock = self.shared.master_clock();
        for e in &stats.edges {
            // Node 0 hosts the master daemon: its hops are local hand-offs.
            if e.from == e.to {
                continue;
            }
            self.shared.gos.fabric().account_async(
                NodeId(e.from),
                NodeId(e.to),
                MsgClass::TcmPartial,
                e.bytes as usize,
            );
            self.shared.emit_event(
                &clock,
                EventKind::TcmPartialShipped {
                    round: closed.round,
                    from: e.from,
                    to: e.to,
                    cells: e.cells,
                    bytes: e.bytes,
                },
            );
        }
        let decay = self.config.tcm_decay.unwrap_or(1.0);
        if let Some(sk) = self.sketch.as_mut() {
            if decay < 1.0 {
                sk.scale(decay);
            }
            if let Some(tk) = self.topk.as_mut() {
                if decay < 1.0 {
                    tk.scale(decay);
                }
                let sk_ref: &SketchTcm = sk;
                tk.observe_round(&root.pairs, |idx| sk_ref.estimate(idx));
            }
            sk.fold_round(&root.pairs);
            RoundSummary {
                objects: root.objects,
                tcm: root.pairs.to_dense(),
                per_class: root.per_class,
            }
        } else {
            if let Some(tk) = self.topk.as_mut() {
                if decay < 1.0 {
                    tk.scale(decay);
                }
                let cum = self.tree.as_ref().expect("tree mode").tcm().raw();
                // Pre-fold cumulative, aged exactly as `fold_partial` is about
                // to age it (`x * decay` matches `Tcm::scale` bit for bit).
                tk.observe_round(&root.pairs, |idx| cum[idx as usize] * decay);
            }
            let tree = self.tree.as_mut().expect("tree mode");
            tree.fold_partial(&root);
            RoundSummary {
                objects: root.objects,
                tcm: root.pairs.to_dense(),
                per_class: root.per_class,
            }
        }
    }

    /// The profiling cost of the window since the previous round close, as a
    /// fraction of the application compute charged in that window. Cost =
    /// profiling wire bytes (OAL ship, rate broadcasts, TCM partials) at the
    /// fabric's per-byte rate, plus OAL log appends at the GOS cost model's
    /// append rate. Every input is a virtual counter read while the master holds
    /// the cooperative token, so the fraction is deterministic and free of
    /// host-time noise.
    fn profiling_cost_fraction(&mut self) -> f64 {
        let compute: u64 = (0..self.shared.n_threads)
            .map(|t| self.shared.board.read(ThreadId(t as u32)))
            .sum();
        let prof_bytes = self.shared.gos.net_stats().oal_bytes();
        let entries = self.shared.prof.stats().snapshot().oal_entries;
        let (c0, b0, e0) = self.cost_base;
        self.cost_base = (compute, prof_bytes, entries);
        let d_compute = compute.saturating_sub(c0);
        if d_compute == 0 {
            return 0.0;
        }
        let ns_per_byte = self.shared.gos.fabric().latency_model().ns_per_byte;
        let cost_ns = prof_bytes.saturating_sub(b0) as f64 * ns_per_byte
            + entries.saturating_sub(e0) as f64 * self.shared.gos.costs().log_append_ns as f64;
        cost_ns / d_compute as f64
    }

    /// Gray-failure detection (`ProfilerConfig::straggler_lag_intervals`): at
    /// every round close, measure how many intervals each node *progressed*
    /// since the previous close and track its deficit behind the
    /// fastest-progressing node as an EWMA. The deficit detects *slowness*
    /// (a gray node advances fewer intervals per unit of cluster progress),
    /// not backlog, so it decays as soon as the node runs at full speed again
    /// even while it still owes old intervals. A node whose EWMA crosses the
    /// threshold is *demoted* — its threads' unreported intervals are prorated
    /// out of round coverage via the scheduler's quarantine overlay, so a slow
    /// (not dead) node degrades coverage instead of wedging rounds or tripping
    /// low-coverage skips. When the EWMA recovers below half the threshold the
    /// node is restored to the crash-quarantine base. Late data from a demoted
    /// node still folds into the TCM — demotion is a coverage-accounting
    /// decision, never data loss.
    fn update_stragglers(&mut self, round: u64) {
        let Some(threshold) = self.config.straggler_lag_intervals else {
            return;
        };
        let wm = self.scheduler.watermarks().to_vec();
        let placement = self.shared.placement.read().clone();
        let mut node_min: Vec<Option<u64>> = vec![None; self.shared.n_nodes];
        for (t, node) in placement.iter().enumerate() {
            let slot = &mut node_min[node.0 as usize];
            *slot = Some(slot.map_or(wm[t], |m| m.min(wm[t])));
        }
        let deltas: Vec<Option<u64>> = (0..self.shared.n_nodes)
            .map(|n| node_min[n].map(|m| m.saturating_sub(self.prev_node_min[n])))
            .collect();
        let max_delta = deltas.iter().flatten().copied().max().unwrap_or(0);
        for (n, m) in node_min.iter().enumerate() {
            if let Some(m) = m {
                self.prev_node_min[n] = *m;
            }
        }
        if max_delta == 0 {
            // Nothing progressed since the last close (e.g. a burst of closes
            // from one ingest): no signal, keep the EWMAs as they are.
            return;
        }
        let mut table = self.scheduler.quarantine_table();
        let mut dirty = false;
        for (n, delta) in deltas.iter().enumerate() {
            let Some(delta) = *delta else {
                continue; // hosts no threads; nothing to observe
            };
            let lag = (max_delta - delta) as f64;
            self.lag_ewma[n] = 0.3 * lag + 0.7 * self.lag_ewma[n];
            if !self.straggler_demoted[n] && self.lag_ewma[n] > threshold {
                self.straggler_demoted[n] = true;
                self.stragglers += 1;
                for (t, node) in placement.iter().enumerate() {
                    if node.0 as usize == n {
                        // The thread owes nothing beyond what it has already
                        // reported; a tighter crash expulsion stays in force.
                        table[t] = Some(table[t].map_or(wm[t], |q| q.min(wm[t])));
                    }
                }
                dirty = true;
                self.shared.emit_event(
                    &self.shared.master_clock(),
                    EventKind::StragglerDemoted {
                        node: n as u16,
                        round,
                        lag_ewma: self.lag_ewma[n],
                    },
                );
            } else if self.straggler_demoted[n] && self.lag_ewma[n] < threshold / 2.0 {
                self.straggler_demoted[n] = false;
                for (t, node) in placement.iter().enumerate() {
                    if node.0 as usize == n {
                        table[t] = self.straggler_base[t];
                    }
                }
                dirty = true;
                self.shared.emit_event(
                    &self.shared.master_clock(),
                    EventKind::StragglerRestored {
                        node: n as u16,
                        round,
                    },
                );
            }
        }
        if dirty {
            self.scheduler.set_quarantine(table);
        }
    }

    /// One continuous planning epoch: pick the planning view the reducer already
    /// maintains, refine the live placement under the cost/budget/cooldown filter,
    /// post epoch-stamped directives and fold the outcome into the telemetry.
    ///
    /// Under the sketch backend the plan is drawn from [`SketchedTopKView`] — the
    /// top-k head names the pairs, the sketch prices them — so planning stays
    /// O(k + sketch) and never expands the O(N²) dense map `effective_tcm()` would
    /// materialize. That is the production-scale path (N=1024 in the bench).
    fn plan_placement_epoch(&mut self, cfg: &RebalanceConfig, round: u64) {
        let mut last_moved = std::mem::take(&mut self.last_moved_round);
        let plan = match (&self.sketch, &self.topk) {
            (Some(sk), Some(tk)) => {
                let view = SketchedTopKView::new(sk, tk);
                plan_epoch(&self.shared, &view, cfg, round, &mut last_moved)
            }
            _ => {
                let tcm = self.effective_tcm();
                plan_epoch(&self.shared, &tcm, cfg, round, &mut last_moved)
            }
        };
        self.last_moved_round = last_moved;
        self.placement.plans += 1;
        self.placement.directives += plan.issued.len() as u64;
        self.placement.planned_bytes += plan.planned_bytes;
        self.placement.vetoed_gain += plan.vetoed_gain;
        self.placement.vetoed_cooldown += plan.vetoed_cooldown;
        self.placement.vetoed_cost += plan.vetoed_cost;
        self.placement.vetoed_budget += plan.vetoed_budget;
        self.placement.intra_trajectory.push(IntraSample {
            round,
            before: plan.intra_before,
            after: plan.intra_after,
        });
        self.shared.emit_event(
            &self.shared.master_clock(),
            EventKind::PlacementPlanned {
                round,
                epoch: self.epoch,
                directives: plan.issued.len() as u64,
                intra_before: plan.intra_before,
                intra_after: plan.intra_after,
            },
        );
        // Home repair (the paper's Section V "home effect"): collocation only
        // pays once shared state is *homed* where the threads run. Movers carry
        // their resolved sticky sets; this pass repairs everyone else, pulling
        // each object whose dominant accessor node strictly beats its current
        // home onto that node. Nodes a mover is leaving this epoch are skipped —
        // their evidence describes a placement that is about to change.
        if cfg.migrate_homes {
            if let Some(ha) = &mut self.homeaware {
                let placement = self.shared.placement.read().clone();
                let report = ha.build(&self.shared.gos, &placement);
                let leaving: std::collections::HashSet<NodeId> =
                    plan.issued.iter().map(|m| m.from).collect();
                let clock = self.shared.master_clock();
                let mut repaired = 0u64;
                let mut repaired_bytes = 0u64;
                for rec in &report.recommendations {
                    if leaving.contains(&rec.to) {
                        continue;
                    }
                    let bytes = self.shared.gos.object(rec.obj).payload_bytes() as u64;
                    if self.shared.gos.migrate_home(rec.obj, rec.to, &clock) {
                        repaired += 1;
                        repaired_bytes += bytes;
                    }
                }
                if repaired > 0 || !plan.issued.is_empty() {
                    // The world changed: dominance evidence must be re-earned
                    // against the post-repair placement and homes.
                    ha.clear();
                }
                self.placement.homes_repaired += repaired;
                self.placement.repaired_bytes += repaired_bytes;
            }
        }
        self.planned_migrations.extend(plan.issued);
    }

    fn close_round(&mut self, closed: ClosedRound) {
        let t0 = Instant::now();
        if let Some(ha) = &mut self.homeaware {
            // Home-repair evidence rides on the same OAL stream the TCM reducer
            // consumes; the live placement maps each logging thread to a node.
            let placement = self.shared.placement.read().clone();
            for oal in &closed.oals {
                ha.ingest(oal, &placement);
            }
        }
        let summary = if self.tree.is_some() {
            self.close_round_tree(&closed)
        } else {
            for oal in &closed.oals {
                self.builder.ingest(oal);
            }
            let (_stats, summary) = self.builder.close_round();
            summary
        };
        // The reducer decays its own cumulative per close; the restored base must
        // age in lockstep or the merged map would over-weight pre-crash history.
        if let (Some(decay), Some(base)) = (self.config.tcm_decay, self.base_tcm.as_mut()) {
            base.scale(decay);
        }
        self.build_ns += t0.elapsed().as_nanos() as u64;
        self.rounds += 1;
        self.objects_organized += summary.objects as u64;
        self.round_coverage.push(closed.coverage);
        let cost_fraction = self.profiling_cost_fraction();
        self.round_cost_fraction.push(cost_fraction);
        self.shared.emit_event(
            &self.shared.master_clock(),
            EventKind::RoundClosed {
                round: closed.round,
                oals: closed.oals.len() as u64,
                coverage: closed.coverage,
                deadline_hit: closed.deadline_hit,
            },
        );

        // Relative distances of this round's applied changes, by class name —
        // feeds the timeline row built below.
        let mut changed_distance: BTreeMap<String, f64> = BTreeMap::new();
        if let Some(ctl) = &mut self.controller {
            let clock = self.shared.master_clock();
            let outcome = ctl.on_round(
                &summary.per_class,
                self.shared.prof.gaps(),
                closed.coverage,
                cost_fraction,
            );
            match outcome {
                BudgetOutcome::Adapted(RoundOutcome::Applied(changes)) => {
                    for ch in changes {
                        // Broadcast the change notice to every worker node (accounted)
                        // and run the resampling walk.
                        for n in 0..self.shared.n_nodes {
                            self.shared.gos.fabric().account_async(
                                NodeId::MASTER,
                                NodeId(n as u16),
                                MsgClass::RateChange,
                                16,
                            );
                        }
                        let visited = apply_rate_change(
                            &self.shared.gos,
                            self.shared.prof.gaps(),
                            ch.class,
                            &clock,
                        );
                        let class_name = self.shared.gos.classes().info(ch.class).name;
                        let new_rate = ch.new_state.rate.label();
                        let drift = ch.cause == RateCause::Drift;
                        changed_distance.insert(class_name.clone(), ch.relative_distance);
                        if drift {
                            // The class is live again: let its eventual
                            // re-convergence journal a fresh ClassConverged, so
                            // the Drifted→Converged span is the lag.
                            self.announced_converged.remove(&ch.class);
                            self.shared.emit_event(
                                &self.shared.master_clock(),
                                EventKind::ClassDrifted {
                                    round: closed.round,
                                    class: class_name.clone(),
                                    relative_distance: ch.relative_distance,
                                    new_rate: new_rate.clone(),
                                },
                            );
                        }
                        self.shared.emit_event(
                            &self.shared.master_clock(),
                            EventKind::RateChanged {
                                round: closed.round,
                                class: class_name.clone(),
                                new_rate: new_rate.clone(),
                                relative_distance: ch.relative_distance,
                            },
                        );
                        self.rate_changes.push(AppliedRateChange {
                            // == rounds closed including this one, both modes
                            // (the flat builder and the tree count from the
                            // last restore; `rounds` already includes it).
                            round: self.rounds,
                            class_name,
                            new_rate,
                            relative_distance: ch.relative_distance,
                            resampled_objects: visited,
                            drift,
                        });
                    }
                }
                BudgetOutcome::Adapted(RoundOutcome::SkippedLowCoverage { coverage, .. }) => {
                    self.shared.emit_event(
                        &self.shared.master_clock(),
                        EventKind::RoundSkipped {
                            round: closed.round,
                            coverage,
                            min_coverage: self.config.min_round_coverage,
                        },
                    );
                    self.skipped.push(SkippedRateChange {
                        round: closed.round,
                        coverage,
                    });
                }
                // Merged rounds defer rate decisions to the cadence boundary —
                // cheaper rounds, same baselines; nothing to journal per round.
                // Settling rounds are over budget but still inside the last
                // rung's transition window: the next clean measurement decides.
                BudgetOutcome::MergedOut { .. } | BudgetOutcome::Settling => {}
                BudgetOutcome::Degraded(step) => {
                    match &step {
                        DegradeStep::CoarsenRate { class, .. } => {
                            // The controller already coarsened the gap table;
                            // broadcast the change notice and run the
                            // resampling walk exactly as an accuracy-driven
                            // rate change would.
                            for n in 0..self.shared.n_nodes {
                                self.shared.gos.fabric().account_async(
                                    NodeId::MASTER,
                                    NodeId(n as u16),
                                    MsgClass::RateChange,
                                    16,
                                );
                            }
                            apply_rate_change(
                                &self.shared.gos,
                                self.shared.prof.gaps(),
                                *class,
                                &clock,
                            );
                        }
                        DegradeStep::SummaryOnly => self.shared.prof.set_summary_only(true),
                        DegradeStep::MergeRounds { .. } | DegradeStep::Exhausted => {}
                    }
                    self.shared.emit_event(
                        &self.shared.master_clock(),
                        EventKind::BudgetDegraded {
                            round: closed.round,
                            step: step.label(),
                            cost_fraction,
                        },
                    );
                }
            }
            // Journal each class the moment its rate freezes (once per class —
            // replay may re-close the round that froze it).
            for class in self.shared.prof.gaps().classes() {
                if ctl.is_converged(class) && self.announced_converged.insert(class) {
                    self.shared.emit_event(
                        &self.shared.master_clock(),
                        EventKind::ClassConverged {
                            round: closed.round,
                            class: self.shared.gos.classes().info(class).name,
                        },
                    );
                }
            }
        }

        // Timeline row: every registered class's rate (post-decision), in id order.
        let gaps = self.shared.prof.gaps();
        let classes: Vec<ClassRoundState> = gaps
            .classes()
            .into_iter()
            .map(|c| {
                let class_name = self.shared.gos.classes().info(c).name;
                ClassRoundState {
                    rate: gaps.state(c).rate.label(),
                    relative_distance: changed_distance.get(&class_name).copied().unwrap_or(0.0),
                    converged: self
                        .controller
                        .as_ref()
                        .is_some_and(|ctl| ctl.is_converged(c)),
                    class_name,
                }
            })
            .collect();
        self.timeline.push(RoundTimeline {
            round: closed.round,
            coverage: closed.coverage,
            deadline_hit: closed.deadline_hit,
            classes,
        });

        self.update_stragglers(closed.round);

        // Dynamic balancing (Section V's policy, built on the profiles): one-shot
        // once enough rounds have closed, or — in continuous mode — a planning
        // epoch every `every_rounds` closes.
        if let Some(cfg) = self.shared.rebalance {
            if let Some(every) = cfg.every_rounds {
                let every = every.max(1);
                if self.rounds >= cfg.after_rounds
                    && (self.rounds - cfg.after_rounds).is_multiple_of(every)
                {
                    self.plan_placement_epoch(&cfg, closed.round);
                }
            } else if !self.rebalanced && self.rounds >= cfg.after_rounds {
                self.rebalanced = true;
                let tcm = self.effective_tcm();
                self.planned_migrations = plan_and_post(&self.shared, &tcm, &cfg);
            }
        }

        // Periodic snapshot for crash recovery.
        if let Some(every) = self.config.checkpoint_every_rounds {
            if every > 0 && self.rounds.is_multiple_of(every) {
                self.take_checkpoint();
            }
        }
    }

    /// Flush every buffered round in order, then fold late arrivals into the
    /// cumulative TCM (run finished; no more OALs will arrive). Late OALs improve the
    /// final map but never steer the controller — their rounds already closed.
    fn finish(&mut self) {
        // The run ended while the master was down: no post-window OAL ever arrived
        // to trigger the restart, so fire it now — the recovered output must come
        // from checkpoint + replay of the buffered backlog, not from the doomed
        // in-memory state. Windows entirely beyond the last OAL never happened as
        // far as the profiled run is concerned.
        while self.next_crash < self.master_crashes.len()
            && self.master_crashes[self.next_crash].from_interval < self.max_interval_seen
        {
            self.next_crash += 1;
            self.restore();
        }
        for closed in self.scheduler.flush() {
            self.close_round(closed);
        }
        let late = self.scheduler.take_late();
        if !late.is_empty() {
            let t0 = Instant::now();
            let summary = if self.tree.is_some() {
                // The late fold rides the same tree pipeline (and pays the same
                // partial-TCM fabric bytes) as a regular round.
                self.close_round_tree(&ClosedRound {
                    round: self.rounds,
                    oals: late,
                    coverage: 0.0,
                    deadline_hit: false,
                })
            } else {
                for oal in &late {
                    self.builder.ingest(oal);
                }
                let (_stats, summary) = self.builder.close_round();
                summary
            };
            self.build_ns += t0.elapsed().as_nanos() as u64;
            self.objects_organized += summary.objects as u64;
        }
    }
}

/// Build the (budgeted) adaptive controller the config asks for, wiring the
/// coverage floor and the optional drift watcher. Shared by daemon startup and
/// crash-restore (`fresh_controller`) so both paths configure identically.
fn build_controller(config: &ProfilerConfig) -> Option<BudgetedController> {
    config.adaptive_threshold.map(|t| {
        let mut ctl = BudgetedController::new(t, config.overhead_budget)
            .with_min_coverage(config.min_round_coverage);
        if let Some(dt) = config.drift_threshold {
            ctl = ctl.with_drift(DriftConfig {
                threshold: dt,
                hysteresis_rounds: config.drift_hysteresis_rounds,
                max_reactivations: config.drift_max_reactivations,
            });
        }
        ctl
    })
}

fn run_daemon(shared: Arc<ClusterShared>, mailbox: Mailbox<EpochOal>) -> MasterOutput {
    // Join the cooperative task set (task `n_threads`); dispatch begins once the
    // worker tasks have registered too.
    let master_task = shared.master_task();
    let master_clock = shared.master_clock();
    shared.exec.register_current(master_task);
    let config = *shared.prof.config();
    let mut builder = ShardedTcmReducer::new(config.tcm_shards.max(1), shared.n_threads);
    if let Some(decay) = config.tcm_decay {
        builder.set_decay(decay);
    }
    let mut scheduler = RoundScheduler::new(
        shared.n_threads,
        (config.intervals_per_round as u64).max(1),
        config.round_deadline_intervals,
    );

    // Crash-stop plan pieces, derived purely from the fault plan and the *initial*
    // placement (quarantine is a deterministic agreement, not extra protocol).
    let plan = shared.gos.fabric().injector().map(|inj| inj.plan().clone());
    let mut master_crashes: Vec<MasterCrashWindow> = plan
        .as_ref()
        .map(|p| p.master_crashes.clone())
        .unwrap_or_default();
    master_crashes.sort_unstable_by_key(|w| (w.until_interval, w.from_interval));
    let mut quarantined_nodes = 0u64;
    if let (Some(plan), Some(threshold)) = (plan.as_ref(), config.quarantine_after_crashes) {
        let placement = shared.placement.read().clone();
        let mut expelled: HashSet<u16> = HashSet::new();
        let table: Vec<Option<u64>> = placement
            .iter()
            .map(|node| {
                let q = plan.quarantine_from(*node, threshold);
                if q.is_some() {
                    expelled.insert(node.0);
                }
                q
            })
            .collect();
        quarantined_nodes = expelled.len() as u64;
        scheduler.set_quarantine(table);
        let mut expelled: Vec<u16> = expelled.into_iter().collect();
        expelled.sort_unstable();
        for n in expelled {
            shared.emit_event(
                &shared.master_clock(),
                EventKind::NodeQuarantined {
                    node: n,
                    crashes: plan.crash_count(NodeId(n)),
                },
            );
        }
    }

    let mut daemon = Daemon {
        config,
        builder,
        tree: None,
        sketch: None,
        topk: None,
        reduce: ReduceTelemetry::default(),
        controller: build_controller(&config),
        straggler_base: scheduler.quarantine_table(),
        scheduler,
        oals: 0,
        rounds: 0,
        objects_organized: 0,
        build_ns: 0,
        round_coverage: Vec::new(),
        round_cost_fraction: Vec::new(),
        cost_base: (0, 0, 0),
        lag_ewma: vec![0.0; shared.n_nodes],
        prev_node_min: vec![0; shared.n_nodes],
        straggler_demoted: vec![false; shared.n_nodes],
        stragglers: 0,
        rate_changes: Vec::new(),
        skipped: Vec::new(),
        planned_migrations: Vec::new(),
        rebalanced: false,
        last_moved_round: vec![None; shared.n_threads],
        placement: PlacementTelemetry::default(),
        homeaware: shared
            .rebalance
            .filter(|c| c.every_rounds.is_some() && c.migrate_homes)
            .map(|_| HomeAwareAnalyzer::new(shared.n_nodes, shared.n_threads)),
        oal_log: Vec::new(),
        record_oals: config.record_oals,
        timeline: Vec::new(),
        announced_converged: HashSet::new(),
        epoch: 0,
        base_tcm: None,
        rounds_base: 0,
        latest_checkpoint: None,
        replay_log: Vec::new(),
        keep_replay_log: !master_crashes.is_empty(),
        master_crashes,
        next_crash: 0,
        max_interval_seen: 0,
        checkpoints_taken: 0,
        restores: 0,
        replayed_oals: 0,
        quarantined_nodes,
        shared: Arc::clone(&shared),
    };
    daemon.tree = daemon.fresh_tree();
    daemon.sketch = daemon.fresh_sketch();
    daemon.topk = daemon.fresh_topk();

    loop {
        let batch = mailbox.drain();
        if batch.is_empty() {
            if shared.done.load(Ordering::Acquire) {
                break;
            }
            // Hand the token to the application tasks and park until a worker
            // posts an OAL (or the controlling thread signals completion). An
            // external block: an empty mailbox is idleness, never deadlock.
            shared.exec.block_external(master_task, master_clock.now());
            continue;
        }
        for env in batch {
            daemon.ingest(env.body);
        }
    }
    for env in mailbox.drain() {
        daemon.ingest(env.body);
    }
    daemon.finish();

    MasterOutput {
        tcm: daemon.effective_tcm(),
        oals_ingested: daemon.oals,
        rounds: daemon.rounds,
        objects_organized: daemon.objects_organized,
        tcm_build_real_ns: daemon.build_ns,
        rate_changes: daemon.rate_changes,
        skipped_rate_changes: daemon.skipped,
        round_coverage: daemon.round_coverage,
        deadline_rounds: daemon.scheduler.deadline_rounds(),
        late_oals: daemon.scheduler.late_count(),
        duplicate_oals: daemon.scheduler.duplicate_count(),
        planned_migrations: daemon.planned_migrations,
        placement: {
            let mut p = daemon.placement;
            p.fenced_directives = shared.fenced_directives.load(Ordering::Relaxed);
            let log = shared.migration_log.lock();
            p.applied_migrations = log.len() as u64;
            p.migrated_bytes = log
                .iter()
                .map(|m| (m.ctx_bytes + m.prefetch_bytes) as u64)
                .sum();
            p.homes_migrated = log.iter().map(|m| m.homes_migrated as u64).sum();
            p
        },
        oal_log: daemon.oal_log,
        checkpoints_taken: daemon.checkpoints_taken,
        restores: daemon.restores,
        replayed_oals: daemon.replayed_oals,
        fenced_oals: daemon.scheduler.fenced_count(),
        quarantined_nodes: daemon.quarantined_nodes,
        converged_classes: daemon
            .controller
            .as_ref()
            .map(|c| c.converged_count() as u64)
            .unwrap_or(0),
        final_epoch: daemon.epoch,
        timeline: daemon.timeline,
        top_pairs: daemon
            .topk
            .as_ref()
            .map(|tk| tk.top().into_iter().map(|(i, j, v)| (i.0, j.0, v)).collect())
            .unwrap_or_default(),
        reduce: daemon.reduce,
        stragglers: daemon.stragglers,
        budget_over_rounds: daemon
            .controller
            .as_ref()
            .map(|c| c.over_rounds())
            .unwrap_or(0),
        budget_degrades: daemon.controller.as_ref().map(|c| c.degrades()).unwrap_or(0),
        round_cost_fraction: daemon.round_cost_fraction,
        drift_reactivations: daemon
            .controller
            .as_ref()
            .map(|c| c.reactivations())
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_net::ThreadId;

    fn oal(thread: u32, interval: u64) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval,
            entries: Vec::new(),
        }
    }

    #[test]
    fn rounds_close_in_order_once_all_threads_pass() {
        let mut s = RoundScheduler::new(2, 2, None);
        // Thread 0 races ahead through round 0 and 1; nothing closes until thread 1
        // catches up.
        for i in 0..4 {
            assert_eq!(s.ingest(oal(0, i)), Ingest::Accepted);
        }
        assert!(s.ready_rounds().is_empty());
        s.ingest(oal(1, 0));
        s.ingest(oal(1, 1));
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].round, 0);
        assert_eq!(closed[0].coverage, 1.0);
        assert!(!closed[0].deadline_hit);
    }

    #[test]
    fn duplicates_are_discarded_once() {
        let mut s = RoundScheduler::new(1, 1, None);
        assert_eq!(s.ingest(oal(0, 0)), Ingest::Accepted);
        assert_eq!(s.ingest(oal(0, 0)), Ingest::Duplicate);
        assert_eq!(s.duplicate_count(), 1);
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].coverage, 1.0, "duplicate must not double-count");
    }

    #[test]
    fn deadline_closes_round_with_a_stalled_thread() {
        // Thread 1 never reports: without a deadline the scheduler waits forever;
        // with grace 2 the fastest thread pulls rounds shut behind it.
        let mut s = RoundScheduler::new(2, 1, Some(2));
        for i in 0..5 {
            s.ingest(oal(0, i));
        }
        let closed = s.ready_rounds();
        // Watermark of thread 0 is 5: rounds 0..=2 have 5 >= end + 2.
        assert_eq!(closed.len(), 3);
        for (r, c) in closed.iter().enumerate() {
            assert_eq!(c.round, r as u64);
            assert!(c.deadline_hit);
            assert_eq!(c.coverage, 0.5, "only one of two threads reported");
        }
        assert_eq!(s.deadline_rounds(), 3);
    }

    #[test]
    fn late_arrivals_buffer_for_the_final_fold() {
        let mut s = RoundScheduler::new(2, 1, Some(0));
        s.ingest(oal(0, 0));
        s.ingest(oal(0, 1));
        // Grace 0: the fastest watermark (2) force-closes both touched rounds.
        assert_eq!(s.ready_rounds().len(), 2);
        // Thread 1's interval-0 OAL arrives after its round closed.
        let mut late = oal(1, 0);
        late.entries.push(jessy_core::OalEntry {
            obj: jessy_gos::ObjectId(7),
            class: jessy_gos::ClassId(0),
            bytes: 64,
        });
        assert_eq!(s.ingest(late), Ingest::Late);
        assert_eq!(s.late_count(), 1);
        let buffered = s.take_late();
        assert_eq!(buffered.len(), 1);
        assert_eq!(buffered[0].thread, ThreadId(1));
    }

    #[test]
    fn flush_closes_partial_rounds_with_their_coverage() {
        let mut s = RoundScheduler::new(2, 2, None);
        s.ingest(oal(0, 0));
        s.ingest(oal(1, 0));
        s.ingest(oal(0, 1)); // round 0 three of four; round 1 untouched
        s.ingest(oal(0, 2));
        assert!(s.ready_rounds().is_empty());
        let closed = s.flush();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].coverage, 0.75);
        assert_eq!(closed[1].coverage, 0.25);
    }

    #[test]
    fn out_of_order_arrival_within_open_rounds_is_accepted() {
        let mut s = RoundScheduler::new(1, 4, None);
        for i in [3u64, 0, 2, 1] {
            assert_eq!(s.ingest(oal(0, i)), Ingest::Accepted);
        }
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].coverage, 1.0);
    }

    fn full_oal(thread: u32, interval: u64) -> Oal {
        let mut o = oal(thread, interval);
        o.entries.push(jessy_core::OalEntry {
            obj: jessy_gos::ObjectId(interval as u32 * 10 + thread),
            class: jessy_gos::ClassId(thread as u16),
            bytes: 64,
        });
        o
    }

    #[test]
    fn stale_epoch_duplicates_are_fenced_but_stale_new_pairs_are_accepted() {
        let mut s = RoundScheduler::new(2, 2, None);
        assert_eq!(s.ingest(oal(0, 0)), Ingest::Accepted);
        // Retransmission of an already-accepted pair under the old epoch: fenced,
        // and counted apart from ordinary duplicates.
        assert_eq!(s.ingest_epoch(oal(0, 0), true), Ingest::Fenced);
        assert_eq!(s.fenced_count(), 1);
        assert_eq!(s.duplicate_count(), 0);
        // A stale-epoch OAL for a *new* pair is in-flight data from before the
        // crash — discarding it would turn every restore into data loss.
        assert_eq!(s.ingest_epoch(oal(1, 0), true), Ingest::Accepted);
        // A fresh-epoch duplicate is still just a duplicate.
        assert_eq!(s.ingest_epoch(oal(1, 0), false), Ingest::Duplicate);
        assert_eq!(s.duplicate_count(), 1);
        assert_eq!(s.fenced_count(), 1);
    }

    #[test]
    fn quarantined_thread_leaves_coverage_denominator_and_close_rule() {
        // Two threads, 2 intervals per round. Thread 1 is quarantined from
        // interval 2 (start of round 1) onward.
        let mut s = RoundScheduler::new(2, 2, None);
        s.set_quarantine(vec![None, Some(2)]);
        for i in 0..4 {
            s.ingest(oal(0, i));
        }
        s.ingest(oal(1, 0));
        s.ingest(oal(1, 1));
        // Round 0 predates the expulsion: full denominator, full coverage. Round 1
        // closes without thread 1 (its required watermark caps at the quarantine
        // point) at coverage 2/2 — thread 1 owes nothing there.
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].coverage, 1.0);
        assert_eq!(closed[1].coverage, 1.0, "expelled thread owes no intervals");
        assert!(!closed[1].deadline_hit, "close is complete, not a deadline");
        // Post-expulsion data from the flapper still folds into the TCM (it is
        // real sharing evidence) — it just cannot sway coverage.
        let tail = full_oal(1, 2);
        assert_eq!(s.ingest(tail), Ingest::Late);
    }

    #[test]
    fn quarantine_mid_round_prorates_the_denominator() {
        // ipr 4, thread 1 expelled from interval 2: round 0 expects 4 + 2 = 6.
        let mut s = RoundScheduler::new(2, 4, None);
        s.set_quarantine(vec![None, Some(2)]);
        for i in 0..4 {
            s.ingest(oal(0, i));
        }
        s.ingest(oal(1, 0)); // thread 1 reports 1 of its 2 owed intervals
        // The complete-close rule still waits for thread 1's owed interval 1 (its
        // required watermark is min(round_end, q) = 2, and it has only reached 1).
        assert!(s.ready_rounds().is_empty());
        let closed = s.flush();
        assert_eq!(closed.len(), 1);
        assert!((closed[0].coverage - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fully_quarantined_round_reports_full_coverage() {
        let mut s = RoundScheduler::new(1, 2, None);
        s.set_quarantine(vec![Some(0)]);
        let closed = s.flush();
        assert!(closed.is_empty(), "nothing touched, nothing to close");
        s.ingest(full_oal(0, 1));
        let closed = s.flush();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].coverage, 1.0, "zero expected ⇒ vacuously covered");
    }

    #[test]
    fn scheduler_checkpoint_roundtrips_and_resumes_identically() {
        let mut s = RoundScheduler::new(3, 2, Some(1));
        s.set_quarantine(vec![None, None, Some(3)]);
        for i in 0..5 {
            s.ingest(full_oal(0, i));
        }
        s.ingest(full_oal(1, 0));
        s.ingest(full_oal(1, 0)); // duplicate
        s.ready_rounds();
        s.ingest(full_oal(1, 1)); // late (round 0 closed by deadline)

        let cp = s.checkpoint();
        let mut restored = RoundScheduler::from_checkpoint(&cp);
        assert_eq!(restored.checkpoint(), cp, "checkpoint ∘ restore is identity");

        // Drive both schedulers through the same tail; every classification and
        // every closed round must match.
        let tail = [full_oal(1, 2), full_oal(2, 0), full_oal(1, 3), full_oal(2, 2)];
        for o in tail {
            assert_eq!(s.ingest(o.clone()), restored.ingest(o));
        }
        assert_eq!(s.ready_rounds(), restored.ready_rounds());
        assert_eq!(s.flush(), restored.flush());
        assert_eq!(s.take_late(), restored.take_late());
        assert_eq!(s.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn late_oals_are_folded_exactly_once() {
        // Satellite audit regression: an OAL must reach the TCM fold through
        // exactly one of {closed-round buckets, late buffer}, never both, even when
        // flush() runs after late arrivals and take_late() is drained twice.
        let mut s = RoundScheduler::new(2, 1, Some(0));
        s.ingest(full_oal(0, 0));
        s.ingest(full_oal(0, 1));
        let mut folded: Vec<Oal> = Vec::new();
        for r in s.ready_rounds() {
            folded.extend(r.oals);
        }
        let late = full_oal(1, 0);
        assert_eq!(s.ingest(late.clone()), Ingest::Late);
        assert_eq!(s.ingest(late), Ingest::Duplicate, "late re-send deduplicated");
        for r in s.flush() {
            folded.extend(r.oals); // flush must not resurrect the late OAL
        }
        folded.extend(s.take_late());
        folded.extend(s.take_late()); // second drain must be empty
        let mut keys: Vec<(u32, u64)> =
            folded.iter().map(|o| (o.thread.0, o.interval)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            folded.len(),
            "some (thread, interval) OAL folded more than once"
        );
        assert_eq!(folded.len(), 3);
    }
}
