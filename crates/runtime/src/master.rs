//! The master JVM's correlation-computing daemon (Fig. 2).
//!
//! Runs on its own OS thread for the duration of a cluster run: drains OAL batches
//! from the mailbox and groups them into TCM rounds **by interval number** — round
//! `r` covers intervals `[r·ipr, (r+1)·ipr)` of every thread. Grouping by interval
//! instead of arrival order keeps the correlation map deterministic under thread
//! scheduling: a pair of threads touching an object in the same interval always lands
//! in the same round.
//!
//! Round assembly is delegated to the [`RoundScheduler`], which tolerates a lossy
//! network (see [`crate::cluster::ClusterBuilder::faults`]):
//!
//! * **Deduplication** — a second copy of the same (thread, interval) OAL is dropped.
//! * **Deadline close** — normally a round closes once *every* thread's interval
//!   watermark passes the round's end (threads emit even empty OALs so the watermark
//!   is well-defined). When OALs can be lost that guarantee dies with them, so with
//!   `ProfilerConfig::round_deadline_intervals` set, a round also closes once the
//!   *fastest* thread is that many grace intervals past the end — a stalled or
//!   silenced thread can no longer wedge the pipeline.
//! * **Late arrivals** — an OAL for an already-closed round is buffered and folded
//!   into the cumulative TCM at the end of the run (it still improves the final map;
//!   it just can't steer the controller retroactively).
//!
//! Each closed round carries its **coverage** — the fraction of expected
//! (thread, interval) OALs that actually arrived — and the [`AdaptiveController`]
//! only acts on rounds above the configured coverage floor, degrading gracefully to
//! fixed-rate profiling instead of thrashing rates on loss-shaped phantoms.
//!
//! The daemon measures its *real* CPU time spent building TCM rounds; Table III's
//! "TCM Computing Time" column reads this, because in our reproduction the TCM
//! construction is a real computation (the paper likewise ran it on a dedicated
//! machine so it would not distort execution times).

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use jessy_core::adaptive::apply_rate_change;
use jessy_core::{AdaptiveController, Oal, RoundOutcome, ShardedTcmReducer, Tcm};
use jessy_net::{Mailbox, MsgClass, NodeId};

use crate::cluster::ClusterShared;
use crate::dynamic::{plan_and_post, PlannedMigration};
use crate::error::RuntimeError;

/// One applied rate change, for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedRateChange {
    /// Round in which the change was decided.
    pub round: u64,
    /// The class name.
    pub class_name: String,
    /// New rate label ("4X", "full").
    pub new_rate: String,
    /// The relative distance that triggered it.
    pub relative_distance: f64,
    /// Objects re-tagged by the resampling walk.
    pub resampled_objects: usize,
}

/// A round on which the adaptive controller declined to act because too few of its
/// OALs arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedRateChange {
    /// The distrusted round.
    pub round: u64,
    /// Its OAL coverage, below the configured floor.
    pub coverage: f64,
}

/// Everything the master produced during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MasterOutput {
    /// The cumulative thread correlation map.
    pub tcm: Tcm,
    /// OAL batches ingested (including empty interval contexts and late arrivals,
    /// excluding duplicates).
    pub oals_ingested: u64,
    /// TCM rounds closed.
    pub rounds: u64,
    /// Distinct objects organized over all rounds (Σ per-round `M`).
    pub objects_organized: u64,
    /// Real nanoseconds spent ingesting OALs and building TCM rounds.
    pub tcm_build_real_ns: u64,
    /// Rate changes applied by the adaptive controller.
    pub rate_changes: Vec<AppliedRateChange>,
    /// Rounds the controller skipped for insufficient coverage.
    pub skipped_rate_changes: Vec<SkippedRateChange>,
    /// Per closed round, the fraction of expected (thread, interval) OALs received
    /// (1.0 on a fault-free network).
    pub round_coverage: Vec<f64>,
    /// Rounds closed by the deadline rather than by complete watermarks.
    pub deadline_rounds: u64,
    /// OALs that arrived after their round had closed (folded into the final TCM).
    pub late_oals: u64,
    /// Duplicated OALs discarded by the deduplicator.
    pub duplicate_oals: u64,
    /// Migration directives issued by the dynamic balancer, if enabled.
    pub planned_migrations: Vec<PlannedMigration>,
    /// The raw OAL stream, when `ProfilerConfig::record_oals` was set.
    pub oal_log: Vec<Oal>,
}

/// How the [`RoundScheduler`] classified one arriving OAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Counted toward an open round.
    Accepted,
    /// A (thread, interval) pair already seen — discarded.
    Duplicate,
    /// Arrived after its round closed — buffered for the end-of-run fold.
    Late,
}

/// One round the scheduler declared closed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedRound {
    /// Round id (rounds close strictly in order).
    pub round: u64,
    /// The round's non-empty OALs, in arrival order.
    pub oals: Vec<Oal>,
    /// Fraction of expected (thread, interval) OALs received, in `[0, 1]`.
    pub coverage: f64,
    /// Closed by the grace deadline instead of complete watermarks.
    pub deadline_hit: bool,
}

/// Groups an out-of-order, lossy, possibly duplicated OAL stream into TCM rounds.
///
/// Extracted from the daemon loop so that fault-tolerance semantics are directly
/// testable without spinning up a cluster: feed OALs with [`RoundScheduler::ingest`],
/// collect closed rounds with [`RoundScheduler::ready_rounds`], and finish with
/// [`RoundScheduler::flush`] + [`RoundScheduler::take_late`].
#[derive(Debug)]
pub struct RoundScheduler {
    n_threads: usize,
    /// Intervals per round.
    ipr: u64,
    /// Grace intervals past a round's end before the fastest thread's watermark
    /// force-closes it (`None` = wait for every thread, the fault-free behavior).
    deadline_intervals: Option<u64>,
    /// Next round to close.
    next_round: u64,
    /// Per-thread watermark: 1 + highest interval id seen.
    watermark: Vec<u64>,
    /// Round id → buffered non-empty OALs of its interval range.
    buckets: BTreeMap<u64, Vec<Oal>>,
    /// Round id → distinct (thread, interval) OALs received (coverage numerator;
    /// empty interval contexts count — they are interval reports too).
    received: BTreeMap<u64, u64>,
    /// Every (thread, interval) pair ever accepted, for deduplication.
    seen: HashSet<(u32, u64)>,
    /// Non-empty OALs that arrived after their round closed.
    late: Vec<Oal>,
    late_count: u64,
    duplicates: u64,
    deadline_rounds: u64,
}

impl RoundScheduler {
    /// Scheduler for `n_threads` threads at `ipr` intervals per round.
    pub fn new(n_threads: usize, ipr: u64, deadline_intervals: Option<u64>) -> Self {
        assert!(n_threads > 0, "scheduler needs at least one thread");
        RoundScheduler {
            n_threads,
            ipr: ipr.max(1),
            deadline_intervals,
            next_round: 0,
            watermark: vec![0; n_threads],
            buckets: BTreeMap::new(),
            received: BTreeMap::new(),
            seen: HashSet::new(),
            late: Vec::new(),
            late_count: 0,
            duplicates: 0,
            deadline_rounds: 0,
        }
    }

    /// Feed one OAL, classifying it. Call [`RoundScheduler::ready_rounds`] afterwards
    /// (or after a batch) to collect any rounds this arrival completed.
    pub fn ingest(&mut self, oal: Oal) -> Ingest {
        if !self.seen.insert((oal.thread.0, oal.interval)) {
            self.duplicates += 1;
            return Ingest::Duplicate;
        }
        let t = oal.thread.index();
        self.watermark[t] = self.watermark[t].max(oal.interval + 1);
        let round = oal.interval / self.ipr;
        if round < self.next_round {
            self.late_count += 1;
            if !oal.is_empty() {
                self.late.push(oal);
            }
            return Ingest::Late;
        }
        *self.received.entry(round).or_insert(0) += 1;
        if !oal.is_empty() {
            self.buckets.entry(round).or_default().push(oal);
        }
        Ingest::Accepted
    }

    /// Close and return every round that is ready, in order: rounds all threads have
    /// passed, plus — with a deadline configured — rounds the fastest thread has
    /// outrun by the grace distance.
    pub fn ready_rounds(&mut self) -> Vec<ClosedRound> {
        let min_wm = self.watermark.iter().copied().min().unwrap_or(0);
        let max_wm = self.watermark.iter().copied().max().unwrap_or(0);
        let mut out = Vec::new();
        loop {
            let round_end = (self.next_round + 1) * self.ipr;
            let complete = round_end <= min_wm;
            let expired = self
                .deadline_intervals
                .map(|grace| max_wm >= round_end + grace)
                .unwrap_or(false);
            if !complete && !expired {
                break;
            }
            out.push(self.close_next(!complete));
        }
        out
    }

    /// Close every remaining round in order (run finished; no more OALs will come).
    pub fn flush(&mut self) -> Vec<ClosedRound> {
        let last = self
            .buckets
            .keys()
            .last()
            .copied()
            .max(self.received.keys().last().copied());
        let mut out = Vec::new();
        if let Some(last) = last {
            while self.next_round <= last {
                out.push(self.close_next(false));
            }
        }
        out
    }

    fn close_next(&mut self, deadline_hit: bool) -> ClosedRound {
        let round = self.next_round;
        self.next_round += 1;
        if deadline_hit {
            self.deadline_rounds += 1;
        }
        let expected = (self.n_threads as u64 * self.ipr) as f64;
        let coverage = self.received.remove(&round).unwrap_or(0) as f64 / expected;
        ClosedRound {
            round,
            oals: self.buckets.remove(&round).unwrap_or_default(),
            coverage,
            deadline_hit,
        }
    }

    /// Take the buffered late (non-empty) OALs for the end-of-run TCM fold.
    pub fn take_late(&mut self) -> Vec<Oal> {
        std::mem::take(&mut self.late)
    }

    /// OALs that arrived after their round closed (including empty contexts).
    pub fn late_count(&self) -> u64 {
        self.late_count
    }

    /// Duplicated OALs discarded.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Rounds closed by the deadline rather than by complete watermarks.
    pub fn deadline_rounds(&self) -> u64 {
        self.deadline_rounds
    }

    /// The next round awaiting closure.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }
}

pub(crate) struct MasterDaemon {
    handle: std::thread::JoinHandle<MasterOutput>,
}

impl MasterDaemon {
    pub(crate) fn spawn(
        shared: Arc<ClusterShared>,
        mailbox: Mailbox<Oal>,
    ) -> Result<Self, RuntimeError> {
        let handle = std::thread::Builder::new()
            .name("jessy-master".into())
            .spawn(move || run_daemon(shared, mailbox))
            .map_err(|e| RuntimeError::SpawnFailed(format!("master daemon: {e}")))?;
        Ok(MasterDaemon { handle })
    }

    pub(crate) fn join(self) -> Result<MasterOutput, RuntimeError> {
        self.handle.join().map_err(|_| RuntimeError::MasterPanicked)
    }
}

struct Daemon {
    shared: Arc<ClusterShared>,
    builder: ShardedTcmReducer,
    controller: Option<AdaptiveController>,
    scheduler: RoundScheduler,
    oals: u64,
    rounds: u64,
    objects_organized: u64,
    build_ns: u64,
    round_coverage: Vec<f64>,
    rate_changes: Vec<AppliedRateChange>,
    skipped: Vec<SkippedRateChange>,
    planned_migrations: Vec<PlannedMigration>,
    rebalanced: bool,
    oal_log: Vec<Oal>,
    record_oals: bool,
}

impl Daemon {
    fn ingest(&mut self, oal: Oal) {
        if self.record_oals {
            self.oal_log.push(oal.clone());
        }
        match self.scheduler.ingest(oal) {
            Ingest::Duplicate => {
                // Drop silently; a lossy network retransmitting is not new data.
                if self.record_oals {
                    self.oal_log.pop();
                }
                return;
            }
            Ingest::Accepted | Ingest::Late => self.oals += 1,
        }
        for closed in self.scheduler.ready_rounds() {
            self.close_round(closed);
        }
    }

    fn close_round(&mut self, closed: ClosedRound) {
        let t0 = Instant::now();
        for oal in &closed.oals {
            self.builder.ingest(oal);
        }
        let (_stats, summary) = self.builder.close_round();
        self.build_ns += t0.elapsed().as_nanos() as u64;
        self.rounds += 1;
        self.objects_organized += summary.objects as u64;
        self.round_coverage.push(closed.coverage);

        if let Some(ctl) = &mut self.controller {
            let clock = self.shared.master_clock();
            let outcome =
                ctl.on_round_with_coverage(&summary.per_class, self.shared.prof.gaps(), closed.coverage);
            match outcome {
                RoundOutcome::Applied(changes) => {
                    for ch in changes {
                        // Broadcast the change notice to every worker node (accounted)
                        // and run the resampling walk.
                        for n in 0..self.shared.n_nodes {
                            self.shared.gos.fabric().account_async(
                                NodeId::MASTER,
                                NodeId(n as u16),
                                MsgClass::RateChange,
                                16,
                            );
                        }
                        let visited = apply_rate_change(
                            &self.shared.gos,
                            self.shared.prof.gaps(),
                            ch.class,
                            &clock,
                        );
                        self.rate_changes.push(AppliedRateChange {
                            round: self.builder.rounds_closed(),
                            class_name: self.shared.gos.classes().info(ch.class).name,
                            new_rate: ch.new_state.rate.label(),
                            relative_distance: ch.relative_distance,
                            resampled_objects: visited,
                        });
                    }
                }
                RoundOutcome::SkippedLowCoverage { coverage, .. } => {
                    self.skipped.push(SkippedRateChange {
                        round: closed.round,
                        coverage,
                    });
                }
            }
        }

        // Dynamic balancing: plan once enough rounds have closed (Section V's policy,
        // built on the profiles).
        if let Some(cfg) = self.shared.rebalance {
            if !self.rebalanced && self.builder.rounds_closed() >= cfg.after_rounds {
                self.rebalanced = true;
                let tcm = self.builder.reduce();
                self.planned_migrations = plan_and_post(&self.shared, &tcm, &cfg);
            }
        }
    }

    /// Flush every buffered round in order, then fold late arrivals into the
    /// cumulative TCM (run finished; no more OALs will arrive). Late OALs improve the
    /// final map but never steer the controller — their rounds already closed.
    fn finish(&mut self) {
        for closed in self.scheduler.flush() {
            self.close_round(closed);
        }
        let late = self.scheduler.take_late();
        if !late.is_empty() {
            let t0 = Instant::now();
            for oal in &late {
                self.builder.ingest(oal);
            }
            let (_stats, summary) = self.builder.close_round();
            self.build_ns += t0.elapsed().as_nanos() as u64;
            self.objects_organized += summary.objects as u64;
        }
    }
}

fn run_daemon(shared: Arc<ClusterShared>, mailbox: Mailbox<Oal>) -> MasterOutput {
    let config = *shared.prof.config();
    let mut builder = ShardedTcmReducer::new(config.tcm_shards.max(1), shared.n_threads);
    if let Some(decay) = config.tcm_decay {
        builder.set_decay(decay);
    }
    let mut daemon = Daemon {
        builder,
        controller: config
            .adaptive_threshold
            .map(|t| AdaptiveController::new(t).with_min_coverage(config.min_round_coverage)),
        scheduler: RoundScheduler::new(
            shared.n_threads,
            (config.intervals_per_round as u64).max(1),
            config.round_deadline_intervals,
        ),
        oals: 0,
        rounds: 0,
        objects_organized: 0,
        build_ns: 0,
        round_coverage: Vec::new(),
        rate_changes: Vec::new(),
        skipped: Vec::new(),
        planned_migrations: Vec::new(),
        rebalanced: false,
        oal_log: Vec::new(),
        record_oals: config.record_oals,
        shared: Arc::clone(&shared),
    };

    loop {
        let batch = mailbox.drain();
        if batch.is_empty() {
            if shared.done.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        for env in batch {
            daemon.ingest(env.body);
        }
    }
    for env in mailbox.drain() {
        daemon.ingest(env.body);
    }
    daemon.finish();

    MasterOutput {
        tcm: daemon.builder.reduce(),
        oals_ingested: daemon.oals,
        rounds: daemon.rounds,
        objects_organized: daemon.objects_organized,
        tcm_build_real_ns: daemon.build_ns,
        rate_changes: daemon.rate_changes,
        skipped_rate_changes: daemon.skipped,
        round_coverage: daemon.round_coverage,
        deadline_rounds: daemon.scheduler.deadline_rounds(),
        late_oals: daemon.scheduler.late_count(),
        duplicate_oals: daemon.scheduler.duplicate_count(),
        planned_migrations: daemon.planned_migrations,
        oal_log: daemon.oal_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_net::ThreadId;

    fn oal(thread: u32, interval: u64) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval,
            entries: Vec::new(),
        }
    }

    #[test]
    fn rounds_close_in_order_once_all_threads_pass() {
        let mut s = RoundScheduler::new(2, 2, None);
        // Thread 0 races ahead through round 0 and 1; nothing closes until thread 1
        // catches up.
        for i in 0..4 {
            assert_eq!(s.ingest(oal(0, i)), Ingest::Accepted);
        }
        assert!(s.ready_rounds().is_empty());
        s.ingest(oal(1, 0));
        s.ingest(oal(1, 1));
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].round, 0);
        assert_eq!(closed[0].coverage, 1.0);
        assert!(!closed[0].deadline_hit);
    }

    #[test]
    fn duplicates_are_discarded_once() {
        let mut s = RoundScheduler::new(1, 1, None);
        assert_eq!(s.ingest(oal(0, 0)), Ingest::Accepted);
        assert_eq!(s.ingest(oal(0, 0)), Ingest::Duplicate);
        assert_eq!(s.duplicate_count(), 1);
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].coverage, 1.0, "duplicate must not double-count");
    }

    #[test]
    fn deadline_closes_round_with_a_stalled_thread() {
        // Thread 1 never reports: without a deadline the scheduler waits forever;
        // with grace 2 the fastest thread pulls rounds shut behind it.
        let mut s = RoundScheduler::new(2, 1, Some(2));
        for i in 0..5 {
            s.ingest(oal(0, i));
        }
        let closed = s.ready_rounds();
        // Watermark of thread 0 is 5: rounds 0..=2 have 5 >= end + 2.
        assert_eq!(closed.len(), 3);
        for (r, c) in closed.iter().enumerate() {
            assert_eq!(c.round, r as u64);
            assert!(c.deadline_hit);
            assert_eq!(c.coverage, 0.5, "only one of two threads reported");
        }
        assert_eq!(s.deadline_rounds(), 3);
    }

    #[test]
    fn late_arrivals_buffer_for_the_final_fold() {
        let mut s = RoundScheduler::new(2, 1, Some(0));
        s.ingest(oal(0, 0));
        s.ingest(oal(0, 1));
        // Grace 0: the fastest watermark (2) force-closes both touched rounds.
        assert_eq!(s.ready_rounds().len(), 2);
        // Thread 1's interval-0 OAL arrives after its round closed.
        let mut late = oal(1, 0);
        late.entries.push(jessy_core::OalEntry {
            obj: jessy_gos::ObjectId(7),
            class: jessy_gos::ClassId(0),
            bytes: 64,
        });
        assert_eq!(s.ingest(late), Ingest::Late);
        assert_eq!(s.late_count(), 1);
        let buffered = s.take_late();
        assert_eq!(buffered.len(), 1);
        assert_eq!(buffered[0].thread, ThreadId(1));
    }

    #[test]
    fn flush_closes_partial_rounds_with_their_coverage() {
        let mut s = RoundScheduler::new(2, 2, None);
        s.ingest(oal(0, 0));
        s.ingest(oal(1, 0));
        s.ingest(oal(0, 1)); // round 0 three of four; round 1 untouched
        s.ingest(oal(0, 2));
        assert!(s.ready_rounds().is_empty());
        let closed = s.flush();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].coverage, 0.75);
        assert_eq!(closed[1].coverage, 0.25);
    }

    #[test]
    fn out_of_order_arrival_within_open_rounds_is_accepted() {
        let mut s = RoundScheduler::new(1, 4, None);
        for i in [3u64, 0, 2, 1] {
            assert_eq!(s.ingest(oal(0, i)), Ingest::Accepted);
        }
        let closed = s.ready_rounds();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].coverage, 1.0);
    }
}
