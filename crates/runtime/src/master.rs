//! The master JVM's correlation-computing daemon (Fig. 2).
//!
//! Runs on its own OS thread for the duration of a cluster run: drains OAL batches
//! from the mailbox and groups them into TCM rounds **by interval number** — round
//! `r` covers intervals `[r·ipr, (r+1)·ipr)` of every thread, and closes once every
//! thread's interval stream has passed the round's end (threads emit even empty OALs
//! so the watermark is well-defined). Grouping by interval instead of arrival order
//! keeps the correlation map deterministic under thread scheduling: a pair of threads
//! touching an object in the same interval always lands in the same round.
//!
//! After each round the [`AdaptiveController`] compares successive per-class maps and
//! applies rate changes — updating the shared gap table, broadcasting `RateChange`
//! notices (accounted) and executing the resampling walks.
//!
//! The daemon measures its *real* CPU time spent building TCM rounds; Table III's
//! "TCM Computing Time" column reads this, because in our reproduction the TCM
//! construction is a real computation (the paper likewise ran it on a dedicated
//! machine so it would not distort execution times).

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use jessy_core::adaptive::apply_rate_change;
use jessy_core::{AdaptiveController, Oal, Tcm, TcmBuilder};
use jessy_net::{Mailbox, MsgClass, NodeId};

use crate::cluster::ClusterShared;
use crate::dynamic::{plan_and_post, PlannedMigration};

/// One applied rate change, for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedRateChange {
    /// Round in which the change was decided.
    pub round: u64,
    /// The class name.
    pub class_name: String,
    /// New rate label ("4X", "full").
    pub new_rate: String,
    /// The relative distance that triggered it.
    pub relative_distance: f64,
    /// Objects re-tagged by the resampling walk.
    pub resampled_objects: usize,
}

/// Everything the master produced during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MasterOutput {
    /// The cumulative thread correlation map.
    pub tcm: Tcm,
    /// OAL batches ingested (including empty interval contexts).
    pub oals_ingested: u64,
    /// TCM rounds closed.
    pub rounds: u64,
    /// Distinct objects organized over all rounds (Σ per-round `M`).
    pub objects_organized: u64,
    /// Real nanoseconds spent ingesting OALs and building TCM rounds.
    pub tcm_build_real_ns: u64,
    /// Rate changes applied by the adaptive controller.
    pub rate_changes: Vec<AppliedRateChange>,
    /// Migration directives issued by the dynamic balancer, if enabled.
    pub planned_migrations: Vec<PlannedMigration>,
    /// The raw OAL stream, when `ProfilerConfig::record_oals` was set.
    pub oal_log: Vec<Oal>,
}

pub(crate) struct MasterDaemon {
    handle: std::thread::JoinHandle<MasterOutput>,
}

impl MasterDaemon {
    pub(crate) fn spawn(shared: Arc<ClusterShared>, mailbox: Mailbox<Oal>) -> Self {
        let handle = std::thread::Builder::new()
            .name("jessy-master".into())
            .spawn(move || run_daemon(shared, mailbox))
            .expect("spawn master daemon");
        MasterDaemon { handle }
    }

    pub(crate) fn join(self) -> MasterOutput {
        self.handle.join().expect("master daemon panicked")
    }
}

struct Daemon {
    shared: Arc<ClusterShared>,
    builder: TcmBuilder,
    controller: Option<AdaptiveController>,
    /// Round id → buffered OALs of its interval range.
    buckets: BTreeMap<u64, Vec<Oal>>,
    /// Per-thread watermark: 1 + highest interval id seen.
    watermark: Vec<u64>,
    /// Intervals per round.
    ipr: u64,
    /// Next round to close (rounds close strictly in order).
    next_round: u64,
    oals: u64,
    objects_organized: u64,
    build_ns: u64,
    rate_changes: Vec<AppliedRateChange>,
    planned_migrations: Vec<PlannedMigration>,
    rebalanced: bool,
    oal_log: Vec<Oal>,
    record_oals: bool,
}

impl Daemon {
    fn ingest(&mut self, oal: Oal) {
        self.oals += 1;
        let t = oal.thread.index();
        self.watermark[t] = self.watermark[t].max(oal.interval + 1);
        let round = oal.interval / self.ipr;
        if self.record_oals {
            self.oal_log.push(oal.clone());
        }
        if !oal.is_empty() {
            self.buckets.entry(round).or_default().push(oal);
        }
        self.drain_ready_rounds();
    }

    /// Close every round whose interval range every thread has passed.
    fn drain_ready_rounds(&mut self) {
        let min_watermark = self.watermark.iter().copied().min().unwrap_or(0);
        while (self.next_round + 1) * self.ipr <= min_watermark {
            self.close_round(self.next_round);
            self.next_round += 1;
        }
    }

    fn close_round(&mut self, round: u64) {
        let oals = self.buckets.remove(&round).unwrap_or_default();
        let t0 = Instant::now();
        for oal in &oals {
            self.builder.ingest(oal);
        }
        let summary = self.builder.close_round();
        self.build_ns += t0.elapsed().as_nanos() as u64;
        self.objects_organized += summary.objects as u64;

        if let Some(ctl) = &mut self.controller {
            let clock = self.shared.master_clock();
            let changes = ctl.on_round(&summary.per_class, self.shared.prof.gaps());
            for ch in changes {
                // Broadcast the change notice to every worker node (accounted) and
                // run the resampling walk.
                for n in 0..self.shared.n_nodes {
                    self.shared.gos.fabric().account_async(
                        NodeId::MASTER,
                        NodeId(n as u16),
                        MsgClass::RateChange,
                        16,
                    );
                }
                let visited =
                    apply_rate_change(&self.shared.gos, self.shared.prof.gaps(), ch.class, &clock);
                self.rate_changes.push(AppliedRateChange {
                    round: self.builder.rounds_closed(),
                    class_name: self.shared.gos.classes().info(ch.class).name,
                    new_rate: ch.new_state.rate.label(),
                    relative_distance: ch.relative_distance,
                    resampled_objects: visited,
                });
            }
        }

        // Dynamic balancing: plan once enough rounds have closed (Section V's policy,
        // built on the profiles).
        if let Some(cfg) = self.shared.rebalance {
            if !self.rebalanced && self.builder.rounds_closed() >= cfg.after_rounds {
                self.rebalanced = true;
                self.planned_migrations = plan_and_post(&self.shared, self.builder.tcm(), &cfg);
            }
        }
    }

    /// Flush every buffered round in order (run finished; no more OALs will arrive).
    fn flush_all(&mut self) {
        let remaining: Vec<u64> = self.buckets.keys().copied().collect();
        for round in remaining {
            self.close_round(round);
        }
    }
}

fn run_daemon(shared: Arc<ClusterShared>, mailbox: Mailbox<Oal>) -> MasterOutput {
    let config = *shared.prof.config();
    let mut builder = TcmBuilder::new(shared.n_threads);
    if let Some(decay) = config.tcm_decay {
        builder.set_decay(decay);
    }
    let mut daemon = Daemon {
        builder,
        controller: config.adaptive_threshold.map(AdaptiveController::new),
        buckets: BTreeMap::new(),
        watermark: vec![0; shared.n_threads],
        ipr: (config.intervals_per_round as u64).max(1),
        next_round: 0,
        oals: 0,
        objects_organized: 0,
        build_ns: 0,
        rate_changes: Vec::new(),
        planned_migrations: Vec::new(),
        rebalanced: false,
        oal_log: Vec::new(),
        record_oals: config.record_oals,
        shared: Arc::clone(&shared),
    };

    loop {
        let batch = mailbox.drain();
        if batch.is_empty() {
            if shared.done.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        for env in batch {
            daemon.ingest(env.body);
        }
    }
    for env in mailbox.drain() {
        daemon.ingest(env.body);
    }
    daemon.flush_all();

    MasterOutput {
        tcm: daemon.builder.tcm().clone(),
        oals_ingested: daemon.oals,
        rounds: daemon.builder.rounds_closed(),
        objects_organized: daemon.objects_organized,
        tcm_build_real_ns: daemon.build_ns,
        rate_changes: daemon.rate_changes,
        planned_migrations: daemon.planned_migrations,
        oal_log: daemon.oal_log,
    }
}
