//! The application-facing thread handle.
//!
//! A [`JThread`] is what workload code programs against — the equivalent of running
//! Java bytecode on one JESSICA2 thread. Every read/write goes through the GOS access
//! check (and from there to the profiler hooks); locks and barriers delimit HLRC
//! intervals; stack frames are maintained so the stack sampler has something real to
//! mine; `migrate_to` invokes the migration engine.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use jessy_core::sticky::resolution::Resolution;
use jessy_core::{ShedPolicy, ThreadProfiler};
use jessy_gos::{ClassId, Gos, LockId, ObjectCore, ObjectId, ThreadSpace};
use jessy_net::{ClockHandle, MsgClass, NodeId, ThreadId};
use jessy_obs::EventKind;
use jessy_stack::{JavaStack, MethodId, Slot};

use crate::cluster::ClusterShared;
use crate::master::EpochOal;
use crate::migration::MigrationReport;

/// One application thread's runtime handle.
pub struct JThread {
    shared: Arc<ClusterShared>,
    thread: ThreadId,
    node: NodeId,
    clock: ClockHandle,
    profiler: ThreadProfiler,
    /// The thread's single-writer access arena: the GOS takes it by `&mut`, so only
    /// this thread ever touches it. Checked out of [`ClusterShared`] on construction
    /// and parked back on drop (post-run inspection and re-adoption see its state).
    space: ThreadSpace,
    stack: JavaStack,
    /// Set while this thread's node is inside a crash window of the fault plan; the
    /// first interval shipped after the window triggers a rejoin handshake.
    node_was_down: bool,
    /// OAL batches held back because a partition window severed the path to the
    /// master when their interval closed: `(heal_ns, fault_key, batch)`. Flushed at
    /// the next ship point once the partition heals (`heal_ns == u64::MAX` =
    /// permanent; surfaced as lost at drop).
    deferred_oals: Vec<(u64, u64, EpochOal)>,
    /// Per-thread backpressure queue in front of the master's *bounded* mailbox:
    /// `(fault_key, batch)` pairs waiting for mailbox space. Bounded by the same
    /// capacity as the mailbox — overflow sheds per the configured policy, every
    /// shed attributed. Unused (always empty) with the legacy unbounded mailbox.
    pending_oals: VecDeque<(u64, EpochOal)>,
    /// True when the fault plan has any slow windows — gates the per-access
    /// service-time inflation so fault-free runs pay nothing for the feature.
    slow_gate: bool,
    /// Gap-table generation last re-synced against. When the coordinator
    /// changes a rate (accuracy step or budget rung), its resampling walk
    /// retags shared headers but cannot reach this thread's arena; at the next
    /// interval open the generation mismatch triggers a re-arm of resident
    /// sampled objects so their trap chains resume. Stays equal to the table
    /// (no walks, no cost) in runs that never change rates.
    rate_generation: u64,
}

impl JThread {
    /// Build the handle for `thread` (placed per the cluster's placement table).
    pub fn new(shared: Arc<ClusterShared>, thread: ThreadId) -> Self {
        let node = shared.node_of(thread);
        let clock = shared.board.handle(thread);
        let profiler = ThreadProfiler::new(Arc::clone(&shared.prof), thread);
        let space = shared.spaces[thread.index()]
            .lock()
            .take()
            .unwrap_or_else(|| ThreadSpace::new(thread));
        let slow_gate = shared
            .gos
            .fabric()
            .injector()
            .is_some_and(|inj| !inj.plan().slow.is_empty());
        let rate_generation = shared.prof.gaps().generation();
        JThread {
            shared,
            thread,
            node,
            clock,
            profiler,
            space,
            stack: JavaStack::new(),
            node_was_down: false,
            deferred_oals: Vec::new(),
            pending_oals: VecDeque::new(),
            slow_gate,
            rate_generation,
        }
    }

    /// Cooperative scheduling point: when this thread runs as a task of the
    /// deterministic executor, report the simulated clock and let the scheduler
    /// hand the token to the task with the earliest virtual time. A no-op on
    /// non-task threads (adopted handles, unit tests). Object accesses, compute
    /// charges and interval boundaries yield implicitly; call this from driver
    /// loops with long access-free stretches.
    pub fn yield_now(&mut self) {
        let t = self.thread.index();
        if self.shared.exec.task_is_live(t) {
            self.shared.exec.yield_now(t, self.clock.now());
        }
    }

    /// This thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The node currently hosting this thread.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The simulated clock.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// The GOS.
    pub fn gos(&self) -> &Gos {
        &self.shared.gos
    }

    /// The thread's profiler (for reading invariants/footprints in examples/tests).
    pub fn profiler(&self) -> &ThreadProfiler {
        &self.profiler
    }

    /// The thread's access arena (diagnostics: populated count, access states).
    pub fn space(&self) -> &ThreadSpace {
        &self.space
    }

    /// Cluster-shared state.
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    fn post_access(&mut self, out: &jessy_gos::AccessOutcome) {
        self.profiler
            .on_access(&self.shared.gos, &mut self.space, out, &self.clock);
        self.profiler
            .maybe_footprint_probe(&mut self.space, &self.clock);
        self.profiler
            .maybe_stack_sample(&self.shared.gos, &mut self.stack, &self.clock);
    }

    /// Gray-failure model: inflate the service time just charged (since `t0`)
    /// by the fault plan's slow-window factor for this node. A slow node does
    /// the same work, slower — the virtual clock stretches, nothing is lost or
    /// reordered beyond what the stretched timestamps imply.
    fn charge_slow(&mut self, t0: u64) {
        if !self.slow_gate {
            return;
        }
        let now = self.clock.now();
        if now <= t0 {
            return;
        }
        if let Some(inj) = self.shared.gos.fabric().injector() {
            let factor = inj.plan().slow_factor_at(self.node, t0);
            if factor > 1.0 {
                self.clock
                    .spend(((now - t0) as f64 * (factor - 1.0)).round() as u64);
            }
        }
    }

    /// Read access: run `f` over the object's payload (a yield point).
    pub fn read<R>(&mut self, obj: ObjectId, f: impl FnOnce(&[f64]) -> R) -> R {
        let t0 = self.clock.now();
        let (r, out) = self
            .shared
            .gos
            .read(&mut self.space, self.node, obj, &self.clock, f);
        self.post_access(&out);
        self.charge_slow(t0);
        self.yield_now();
        r
    }

    /// Write access: run `f` over the mutable payload (a yield point).
    pub fn write<R>(&mut self, obj: ObjectId, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let t0 = self.clock.now();
        let (r, out) = self
            .shared
            .gos
            .write(&mut self.space, self.node, obj, &self.clock, f);
        self.post_access(&out);
        self.charge_slow(t0);
        self.yield_now();
        r
    }

    /// Charge `units` of application compute to the simulated clock (a yield
    /// point).
    pub fn compute(&mut self, units: u64) {
        let t0 = self.clock.now();
        self.clock
            .spend(units * self.shared.gos.costs().compute_unit_ns);
        self.charge_slow(t0);
        self.yield_now();
    }

    /// Allocate a zeroed scalar at this thread's node.
    pub fn alloc_scalar(&self, class: ClassId) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_scalar(self.node, class, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Allocate a zeroed array at this thread's node.
    pub fn alloc_array(&self, class: ClassId, len_elems: u32) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_array(self.node, class, len_elems, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Add a reference edge in the object graph.
    pub fn add_ref(&self, from: ObjectId, to: ObjectId) {
        self.shared.gos.object(from).add_ref(to);
    }

    // ------------------------------------------------------------------ sync points

    /// Ship any deferred OAL batches whose partition has healed. Wire accounting
    /// happens here, not at deferral time — the bytes cross the fabric now.
    fn flush_deferred_oals(&mut self) {
        if self.deferred_oals.is_empty() {
            return;
        }
        let now = self.clock.now();
        if let Some(inj) = self.shared.gos.fabric().injector() {
            if inj.severed(self.node, NodeId::MASTER, now) {
                return;
            }
        }
        let mut kept = Vec::new();
        for (heal, key, env) in std::mem::take(&mut self.deferred_oals) {
            if heal > now {
                kept.push((heal, key, env));
                continue;
            }
            // Tree mode: the healed batch drains to the node-local pre-reducer;
            // only the round's partial-TCM crosses the fabric (accounted by the
            // master at round close), so no OAL bytes are charged here.
            if self.shared.prof.config().tcm_tree_fanout < 2 {
                let fabric = self.shared.gos.fabric();
                let bytes = env.oal.wire_bytes();
                fabric.account_async(self.node, NodeId::MASTER, MsgClass::OalBatch, bytes);
                if self.node != NodeId::MASTER {
                    let total = bytes + MsgClass::OalBatch.header_bytes();
                    self.clock
                        .spend((total as f64 * fabric.latency_model().ns_per_byte) as u64);
                }
            }
            self.post_oal(key, env);
        }
        self.deferred_oals = kept;
    }

    /// Record a `(thread, interval)` whose OAL never reached the master because
    /// the mailbox was gone — the legacy loss path (`RunReport::lost_oals`).
    fn record_lost(&mut self, interval: u64) {
        self.shared
            .oal_post_failures
            .fetch_add(1, Ordering::Relaxed);
        self.shared.lost_oals.lock().push((self.thread.0, interval));
        self.shared.emit_event(
            &self.clock,
            EventKind::OalPostFailed {
                thread: self.thread.0,
                interval,
            },
        );
    }

    /// Attribute one shed batch: bump the policy's counter, record the interval
    /// for coverage proration, and journal the event. Sheds are never silent.
    fn record_shed(&mut self, interval: u64, policy: ShedPolicy) {
        let counter = match policy {
            ShedPolicy::DropOldestRound => &self.shared.sheds_dropped,
            ShedPolicy::MergeBatches => &self.shared.sheds_merged,
            ShedPolicy::SummaryOnly => &self.shared.sheds_summarized,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.shared.shed_oals.lock().push((self.thread.0, interval));
        self.shared.emit_event(
            &self.clock,
            EventKind::OalShed {
                thread: self.thread.0,
                interval,
                policy: policy.label().to_string(),
            },
        );
    }

    /// Shed one batch from the head of the pending queue per the configured
    /// policy. Deterministic: the decision depends only on queue state. The
    /// merging policies fold the two oldest batches into one (the older
    /// interval's identity is shed, its entries ride the younger batch), so
    /// bytes survive at the cost of interval-attribution precision.
    fn shed_one(&mut self) {
        let policy = self.shared.prof.config().shed_policy;
        match policy {
            ShedPolicy::DropOldestRound => {
                let (_, env) = self.pending_oals.pop_front().expect("shed_one on empty queue");
                self.record_shed(env.oal.interval, policy);
            }
            ShedPolicy::MergeBatches | ShedPolicy::SummaryOnly => {
                let (_, old) = self.pending_oals.pop_front().expect("shed_one on empty queue");
                let (key, mut young) = self
                    .pending_oals
                    .pop_front()
                    .expect("merge policies need two queued batches");
                let shed_interval = old.oal.interval;
                let mut entries = old.oal.entries;
                entries.extend(young.oal.entries);
                young.oal.entries = entries;
                if policy == ShedPolicy::SummaryOnly {
                    young.oal = young.oal.summarize();
                }
                self.pending_oals.push_front((key, young));
                self.record_shed(shed_interval, policy);
            }
        }
    }

    /// Drain the pending queue into the bounded mailbox: shed down to the
    /// capacity bound first, then post until the mailbox fills (backpressure —
    /// the rest waits here for the master to drain).
    fn drain_pending(&mut self) {
        let Some(cap) = self.shared.oal_tx.capacity() else {
            return;
        };
        loop {
            // The per-thread queue honours the same bound as the mailbox, so
            // total OAL memory is O(capacity · threads) whatever the load.
            while self.pending_oals.len() > cap {
                self.shed_one();
            }
            if self.pending_oals.is_empty() {
                return;
            }
            if self.shared.oal_tx.is_full() {
                // Wake the master to drain; batches wait under backpressure.
                self.shared.exec.unblock(self.shared.master_task());
                return;
            }
            let (key, env) = self.pending_oals.pop_front().expect("checked non-empty");
            let interval = env.oal.interval;
            match self.shared.oal_tx.try_post_keyed(self.node, key, env) {
                Ok(_) => self.shared.exec.unblock(self.shared.master_task()),
                Err(jessy_net::NetError::MailboxFull { .. }) => {
                    // Lost the race with another producer (free-threaded mode
                    // only; impossible under the cooperative executor). The
                    // batch is consumed — attribute it like a drop.
                    self.record_shed(interval, ShedPolicy::DropOldestRound);
                    self.shared.exec.unblock(self.shared.master_task());
                    return;
                }
                Err(_) => self.record_lost(interval),
            }
        }
    }

    /// Post one epoch-stamped batch toward the master. With the legacy
    /// unbounded mailbox this is the direct path (bit-identical to previous
    /// releases); with a capacity configured, batches go through the per-thread
    /// backpressure queue and may shed per policy.
    fn post_oal(&mut self, key: u64, env: EpochOal) {
        if self.shared.oal_tx.capacity().is_none() {
            let interval = env.oal.interval;
            if self.shared.oal_tx.try_post_keyed(self.node, key, env).is_err() {
                self.record_lost(interval);
            } else {
                self.shared.exec.unblock(self.shared.master_task());
            }
            return;
        }
        self.pending_oals.push_back((key, env));
        self.drain_pending();
    }

    fn close_and_ship_oal(&mut self) {
        self.flush_deferred_oals();
        if self.shared.prof.config().footprint.is_some() {
            // Publish the averaged sticky footprint so the balancer can price a
            // migration of this thread (Section III.A: "a load balancing policy that
            // weighs the gain ... against the messaging cost proportional to such a
            // footprint").
            let total: f64 = self.profiler.average_footprint().values().sum();
            self.shared.footprints.write()[self.thread.index()] = total;
        }
        if let Some(oal) = self.profiler.close_interval() {
            self.shared.emit_event(
                &self.clock,
                EventKind::IntervalClosed {
                    thread: self.thread.0,
                    interval: oal.interval,
                    entries: oal.entries.len() as u64,
                },
            );
            // Budget ladder's last data-bearing rung: ship per-class summaries
            // instead of per-object entries, cutting wire bytes at the cost of
            // object identity. Off (and free) unless the ladder engaged it.
            let oal = if self.shared.prof.summary_only() {
                oal.summarize()
            } else {
                oal
            };
            if self.shared.prof.config().send_oals {
                let fabric = self.shared.gos.fabric();
                // Crash-stop model (DESIGN.md §12): while this thread's node sits in
                // a crash window, the profiling pipeline on that node is down — the
                // interval's OAL is neither accounted nor posted. The *application*
                // execution is unaffected, mirroring how PR 1 models stalls: failures
                // degrade the profile, never the workload.
                if let Some(inj) = fabric.injector() {
                    if inj.node_down_at(self.node, oal.interval) {
                        inj.note_crash_suppressed();
                        self.node_was_down = true;
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::CrashSuppressed {
                                node: self.node.0,
                                thread: self.thread.0,
                                interval: oal.interval,
                            },
                        );
                        return;
                    }
                    if self.node_was_down {
                        self.node_was_down = false;
                        // Rejoin handshake: re-registration request plus the master's
                        // reply carrying the current epoch and class rate table.
                        fabric.account_async(self.node, NodeId::MASTER, MsgClass::Rejoin, 24);
                        fabric.account_async(NodeId::MASTER, self.node, MsgClass::Rejoin, 64);
                        self.shared.rejoins.fetch_add(1, Ordering::Relaxed);
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::NodeRejoined {
                                node: self.node.0,
                                thread: self.thread.0,
                                epoch: self.shared.master_epoch.load(Ordering::Acquire),
                            },
                        );
                    }
                    // Partition window: the path to the master is severed. The batch
                    // is *deferred, not dropped* — the node's send queue holds it
                    // until the partition heals (permanent partitions surface the
                    // loss at thread drop). Nothing is accounted yet: no bytes cross
                    // the cut.
                    let now = self.clock.now();
                    if inj.severed(self.node, NodeId::MASTER, now) {
                        let heal = inj
                            .plan()
                            .heal_at(self.node, NodeId::MASTER, now)
                            .unwrap_or(u64::MAX);
                        inj.note_oal_deferred();
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::OalDeferred {
                                thread: self.thread.0,
                                interval: oal.interval,
                                heal_ns: heal,
                            },
                        );
                        let key = jessy_net::oal_fault_key(oal.thread, oal.interval);
                        let env = EpochOal {
                            epoch: self.shared.master_epoch.load(Ordering::Acquire),
                            oal,
                        };
                        self.deferred_oals.push((heal, key, env));
                        return;
                    }
                }
                // The jumbo OAL message piggybacks on the sync message already headed
                // to the master (Section II.A), so the sender pays only the transmit
                // occupancy of the extra bytes, not another base latency. In tree
                // mode (`tcm_tree_fanout >= 2`) the OAL stays on its node — the
                // local pre-reducer consumes it and only the per-round partial-TCM
                // crosses the fabric, accounted by the master per tree edge.
                if self.shared.prof.config().tcm_tree_fanout < 2 {
                    fabric.account_async(
                        self.node,
                        NodeId::MASTER,
                        MsgClass::OalBatch,
                        oal.wire_bytes(),
                    );
                    if self.node != NodeId::MASTER {
                        let bytes = oal.wire_bytes() + MsgClass::OalBatch.header_bytes();
                        self.clock
                            .spend((bytes as f64 * fabric.latency_model().ns_per_byte) as u64);
                    }
                }
                let key = jessy_net::oal_fault_key(oal.thread, oal.interval);
                let oal = EpochOal {
                    epoch: self.shared.master_epoch.load(Ordering::Acquire),
                    oal,
                };
                // Unbounded: the direct post (a failure means the mailbox is
                // gone — counted, never fatal). Bounded: the backpressure queue.
                self.post_oal(key, oal);
            }
        }
    }

    /// Enter the global barrier (an interval boundary: the current interval closes,
    /// its OAL ships, and the next interval opens with false-invalid traps armed).
    /// Barriers are also the safe points where dynamic-balancer migration directives
    /// are honoured.
    pub fn barrier(&mut self) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .barrier_wait(&mut self.space, self.node, self.shared.n_threads, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.resync_sampling();
        self.emit_interval_opened();
        self.honour_directive();
    }

    /// Re-arm trap chains after a coordinator rate change (see the
    /// `rate_generation` field). Runs at interval opens only, so an unchanged
    /// generation costs one atomic load on the boundary path and nothing on
    /// the access path.
    fn resync_sampling(&mut self) {
        let generation = self.shared.prof.gaps().generation();
        if generation == self.rate_generation {
            return;
        }
        self.rate_generation = generation;
        let armed = self.shared.gos.rearm_sampled(&mut self.space, &self.clock);
        self.shared.prof.stats().record_fi_armed(armed as u64);
    }

    fn emit_interval_opened(&mut self) {
        self.shared.emit_event(
            &self.clock,
            EventKind::IntervalOpened {
                thread: self.thread.0,
                interval: self.profiler.interval(),
            },
        );
    }

    fn honour_directive(&mut self) {
        let Some(rebalance) = self.shared.rebalance else {
            return;
        };
        let directive = self.shared.directives.read()[self.thread.index()];
        if let Some(d) = directive {
            self.shared.directives.write()[self.thread.index()] = None;
            let current_epoch = self.shared.master_epoch.load(Ordering::Acquire);
            if d.epoch != current_epoch {
                // The plan predates a master restore: like a stale OAL batch, it
                // describes a world that no longer exists. Drop it attributably —
                // the next planning epoch will re-derive any still-profitable move.
                self.shared.fenced_directives.fetch_add(1, Ordering::Relaxed);
                self.shared.emit_event(
                    &self.clock,
                    EventKind::DirectiveFenced {
                        thread: self.thread.0,
                        directive_epoch: d.epoch,
                        current_epoch,
                    },
                );
                return;
            }
            if d.dest != self.node {
                let report = self.migrate_to_with(
                    d.dest,
                    rebalance.with_prefetch,
                    rebalance.migrate_homes,
                );
                self.shared.emit_event(
                    &self.clock,
                    EventKind::MigrationApplied {
                        thread: self.thread.0,
                        from: report.from.0,
                        to: report.to.0,
                        epoch: current_epoch,
                        bytes: (report.ctx_bytes + report.prefetch_bytes) as u64,
                    },
                );
                self.shared.migration_log.lock().push(report);
            }
        }
    }

    /// Acquire a distributed lock (interval boundary).
    pub fn lock(&mut self, lock: LockId) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .lock_acquire(&mut self.space, lock, self.node, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.resync_sampling();
        self.emit_interval_opened();
    }

    /// Release a distributed lock (interval boundary).
    pub fn unlock(&mut self, lock: LockId) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .lock_release(&mut self.space, lock, self.node, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.resync_sampling();
        self.emit_interval_opened();
    }

    // ------------------------------------------------------------------ Java stack

    /// Push a stack frame (method call).
    pub fn push_frame(&mut self, method: MethodId) {
        self.stack.push(method, &self.shared.methods);
    }

    /// Pop the top frame (method return).
    pub fn pop_frame(&mut self) {
        self.stack.pop();
    }

    /// Store an object reference into a slot of the current frame.
    pub fn set_local_ref(&mut self, slot: usize, obj: ObjectId) {
        self.stack.set_local(slot, Slot::Ref(obj));
    }

    /// Store a primitive into a slot of the current frame.
    pub fn set_local_prim(&mut self, slot: usize, v: u64) {
        self.stack.set_local(slot, Slot::Prim(v));
    }

    /// The Java stack (diagnostics).
    pub fn stack(&self) -> &JavaStack {
        &self.stack
    }

    // ------------------------------------------------------------------ migration

    /// Migrate this thread to `dest`, optionally prefetching its resolved sticky set
    /// along with the context (Section III). Returns what moved.
    pub fn migrate_to(&mut self, dest: NodeId, with_prefetch: bool) -> MigrationReport {
        self.migrate_to_with(dest, with_prefetch, false)
    }

    /// [`Self::migrate_to`], plus optionally relocating the homes of the resolved
    /// sticky-set objects to `dest`. Per-thread caching means collocating correlated
    /// threads cuts remote fetches only once their shared objects are also *homed*
    /// where they run — home migration is what converts a placement gain into
    /// home-local accesses (the paper's home-migration companion optimization).
    pub fn migrate_to_with(
        &mut self,
        dest: NodeId,
        with_prefetch: bool,
        migrate_homes: bool,
    ) -> MigrationReport {
        let src = self.node;
        let t0 = self.clock.now();
        let ctx_bytes = self.stack.context_bytes();
        self.shared
            .gos
            .fabric()
            .send(src, dest, MsgClass::MigrationCtx, ctx_bytes, &self.clock);

        // Resolve the sticky set BEFORE dropping the thread-local heap (the resolver
        // reads the sampled landmarks, not the caches, but the profiler state is tied
        // to the pre-migration interval).
        let resolved = if (with_prefetch || migrate_homes) && src != dest {
            Some(self.profiler.resolve_sticky_for_space(
                &self.shared.gos,
                &self.space,
                &self.clock,
            ))
        } else {
            None
        };

        // The thread-local heap stays behind: flush pending writes and drop it.
        self.shared
            .gos
            .drop_thread_cache(&mut self.space, src, &self.clock);

        let mut resolution: Option<Resolution> = None;
        let mut prefetch_bytes = 0usize;
        let mut prefetched_objects = 0usize;
        let mut homes_migrated = 0usize;
        if let Some(res) = resolved {
            if migrate_homes {
                for &obj in &res.selected {
                    if self.shared.gos.migrate_home(obj, dest, &self.clock) {
                        homes_migrated += 1;
                    }
                }
            }
            if with_prefetch {
                prefetched_objects = res.selected.len();
                prefetch_bytes = self.shared.gos.prefetch_into(
                    &mut self.space,
                    dest,
                    res.selected.iter().copied(),
                    &self.clock,
                );
            }
            resolution = Some(res);
        }

        self.node = dest;
        self.shared.placement.write()[self.thread.index()] = dest;
        // Keep the daemon's view fresh even if it doesn't read placement directly.
        self.shared.done.load(Ordering::Relaxed);
        self.shared.emit_event(
            &self.clock,
            EventKind::ThreadMigrated {
                thread: self.thread.0,
                from: src.0,
                to: dest.0,
                prefetched: prefetched_objects as u64,
            },
        );

        MigrationReport {
            thread: self.thread,
            from: src,
            to: dest,
            ctx_bytes,
            prefetched_objects,
            prefetch_bytes,
            homes_migrated,
            sim_cost_ns: self.clock.now() - t0,
            resolution,
        }
    }
}

impl Drop for JThread {
    /// Flush deferred OAL batches one last time (whatever is still stuck behind an
    /// unhealed partition is surfaced as lost), then park the access arena back in
    /// the cluster so post-run inspection (and a later re-adoption of the same
    /// thread id) sees the thread's heap state.
    fn drop(&mut self) {
        self.flush_deferred_oals();
        for (_, _, env) in std::mem::take(&mut self.deferred_oals) {
            let interval = env.oal.interval;
            self.record_lost(interval);
        }
        // Give the bounded-mailbox path one last drain; whatever is still stuck
        // behind a full mailbox is shed with attribution (never silently).
        self.drain_pending();
        let policy = self.shared.prof.config().shed_policy;
        for (_, env) in std::mem::take(&mut self.pending_oals) {
            let interval = env.oal.interval;
            self.record_shed(interval, policy);
        }
        let space = std::mem::replace(&mut self.space, ThreadSpace::new(self.thread));
        *self.shared.spaces[self.thread.index()].lock() = Some(space);
    }
}
