//! The application-facing thread handle.
//!
//! A [`JThread`] is what workload code programs against — the equivalent of running
//! Java bytecode on one JESSICA2 thread. Every read/write goes through the GOS access
//! check (and from there to the profiler hooks); locks and barriers delimit HLRC
//! intervals; stack frames are maintained so the stack sampler has something real to
//! mine; `migrate_to` invokes the migration engine.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use jessy_core::sticky::resolution::Resolution;
use jessy_core::ThreadProfiler;
use jessy_gos::{ClassId, Gos, LockId, ObjectCore, ObjectId, ThreadSpace};
use jessy_net::{ClockHandle, MsgClass, NodeId, ThreadId};
use jessy_obs::EventKind;
use jessy_stack::{JavaStack, MethodId, Slot};

use crate::cluster::ClusterShared;
use crate::master::EpochOal;
use crate::migration::MigrationReport;

/// One application thread's runtime handle.
pub struct JThread {
    shared: Arc<ClusterShared>,
    thread: ThreadId,
    node: NodeId,
    clock: ClockHandle,
    profiler: ThreadProfiler,
    /// The thread's single-writer access arena: the GOS takes it by `&mut`, so only
    /// this thread ever touches it. Checked out of [`ClusterShared`] on construction
    /// and parked back on drop (post-run inspection and re-adoption see its state).
    space: ThreadSpace,
    stack: JavaStack,
    /// Set while this thread's node is inside a crash window of the fault plan; the
    /// first interval shipped after the window triggers a rejoin handshake.
    node_was_down: bool,
    /// OAL batches held back because a partition window severed the path to the
    /// master when their interval closed: `(heal_ns, fault_key, batch)`. Flushed at
    /// the next ship point once the partition heals (`heal_ns == u64::MAX` =
    /// permanent; surfaced as lost at drop).
    deferred_oals: Vec<(u64, u64, EpochOal)>,
}

impl JThread {
    /// Build the handle for `thread` (placed per the cluster's placement table).
    pub fn new(shared: Arc<ClusterShared>, thread: ThreadId) -> Self {
        let node = shared.node_of(thread);
        let clock = shared.board.handle(thread);
        let profiler = ThreadProfiler::new(Arc::clone(&shared.prof), thread);
        let space = shared.spaces[thread.index()]
            .lock()
            .take()
            .unwrap_or_else(|| ThreadSpace::new(thread));
        JThread {
            shared,
            thread,
            node,
            clock,
            profiler,
            space,
            stack: JavaStack::new(),
            node_was_down: false,
            deferred_oals: Vec::new(),
        }
    }

    /// Cooperative scheduling point: when this thread runs as a task of the
    /// deterministic executor, report the simulated clock and let the scheduler
    /// hand the token to the task with the earliest virtual time. A no-op on
    /// non-task threads (adopted handles, unit tests). Object accesses, compute
    /// charges and interval boundaries yield implicitly; call this from driver
    /// loops with long access-free stretches.
    pub fn yield_now(&mut self) {
        let t = self.thread.index();
        if self.shared.exec.task_is_live(t) {
            self.shared.exec.yield_now(t, self.clock.now());
        }
    }

    /// This thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The node currently hosting this thread.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The simulated clock.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// The GOS.
    pub fn gos(&self) -> &Gos {
        &self.shared.gos
    }

    /// The thread's profiler (for reading invariants/footprints in examples/tests).
    pub fn profiler(&self) -> &ThreadProfiler {
        &self.profiler
    }

    /// The thread's access arena (diagnostics: populated count, access states).
    pub fn space(&self) -> &ThreadSpace {
        &self.space
    }

    /// Cluster-shared state.
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    fn post_access(&mut self, out: &jessy_gos::AccessOutcome) {
        self.profiler
            .on_access(&self.shared.gos, &mut self.space, out, &self.clock);
        self.profiler
            .maybe_footprint_probe(&mut self.space, &self.clock);
        self.profiler
            .maybe_stack_sample(&self.shared.gos, &mut self.stack, &self.clock);
    }

    /// Read access: run `f` over the object's payload (a yield point).
    pub fn read<R>(&mut self, obj: ObjectId, f: impl FnOnce(&[f64]) -> R) -> R {
        let (r, out) = self
            .shared
            .gos
            .read(&mut self.space, self.node, obj, &self.clock, f);
        self.post_access(&out);
        self.yield_now();
        r
    }

    /// Write access: run `f` over the mutable payload (a yield point).
    pub fn write<R>(&mut self, obj: ObjectId, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let (r, out) = self
            .shared
            .gos
            .write(&mut self.space, self.node, obj, &self.clock, f);
        self.post_access(&out);
        self.yield_now();
        r
    }

    /// Charge `units` of application compute to the simulated clock (a yield
    /// point).
    pub fn compute(&mut self, units: u64) {
        self.clock
            .spend(units * self.shared.gos.costs().compute_unit_ns);
        self.yield_now();
    }

    /// Allocate a zeroed scalar at this thread's node.
    pub fn alloc_scalar(&self, class: ClassId) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_scalar(self.node, class, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Allocate a zeroed array at this thread's node.
    pub fn alloc_array(&self, class: ClassId, len_elems: u32) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_array(self.node, class, len_elems, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Add a reference edge in the object graph.
    pub fn add_ref(&self, from: ObjectId, to: ObjectId) {
        self.shared.gos.object(from).add_ref(to);
    }

    // ------------------------------------------------------------------ sync points

    /// Ship any deferred OAL batches whose partition has healed. Wire accounting
    /// happens here, not at deferral time — the bytes cross the fabric now.
    fn flush_deferred_oals(&mut self) {
        if self.deferred_oals.is_empty() {
            return;
        }
        let now = self.clock.now();
        let fabric = self.shared.gos.fabric();
        if let Some(inj) = fabric.injector() {
            if inj.severed(self.node, NodeId::MASTER, now) {
                return;
            }
        }
        let mut kept = Vec::new();
        for (heal, key, env) in std::mem::take(&mut self.deferred_oals) {
            if heal > now {
                kept.push((heal, key, env));
                continue;
            }
            // Tree mode: the healed batch drains to the node-local pre-reducer;
            // only the round's partial-TCM crosses the fabric (accounted by the
            // master at round close), so no OAL bytes are charged here.
            if self.shared.prof.config().tcm_tree_fanout < 2 {
                let bytes = env.oal.wire_bytes();
                fabric.account_async(self.node, NodeId::MASTER, MsgClass::OalBatch, bytes);
                if self.node != NodeId::MASTER {
                    let total = bytes + MsgClass::OalBatch.header_bytes();
                    self.clock
                        .spend((total as f64 * fabric.latency_model().ns_per_byte) as u64);
                }
            }
            let interval = env.oal.interval;
            if self.shared.oal_tx.try_post_keyed(self.node, key, env).is_err() {
                self.shared
                    .oal_post_failures
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.lost_oals.lock().push((self.thread.0, interval));
                self.shared.emit_event(
                    &self.clock,
                    EventKind::OalPostFailed {
                        thread: self.thread.0,
                        interval,
                    },
                );
            } else {
                self.shared.exec.unblock(self.shared.master_task());
            }
        }
        self.deferred_oals = kept;
    }

    fn close_and_ship_oal(&mut self) {
        self.flush_deferred_oals();
        if self.shared.prof.config().footprint.is_some() {
            // Publish the averaged sticky footprint so the balancer can price a
            // migration of this thread (Section III.A: "a load balancing policy that
            // weighs the gain ... against the messaging cost proportional to such a
            // footprint").
            let total: f64 = self.profiler.average_footprint().values().sum();
            self.shared.footprints.write()[self.thread.index()] = total;
        }
        if let Some(oal) = self.profiler.close_interval() {
            self.shared.emit_event(
                &self.clock,
                EventKind::IntervalClosed {
                    thread: self.thread.0,
                    interval: oal.interval,
                    entries: oal.entries.len() as u64,
                },
            );
            if self.shared.prof.config().send_oals {
                let fabric = self.shared.gos.fabric();
                // Crash-stop model (DESIGN.md §12): while this thread's node sits in
                // a crash window, the profiling pipeline on that node is down — the
                // interval's OAL is neither accounted nor posted. The *application*
                // execution is unaffected, mirroring how PR 1 models stalls: failures
                // degrade the profile, never the workload.
                if let Some(inj) = fabric.injector() {
                    if inj.node_down_at(self.node, oal.interval) {
                        inj.note_crash_suppressed();
                        self.node_was_down = true;
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::CrashSuppressed {
                                node: self.node.0,
                                thread: self.thread.0,
                                interval: oal.interval,
                            },
                        );
                        return;
                    }
                    if self.node_was_down {
                        self.node_was_down = false;
                        // Rejoin handshake: re-registration request plus the master's
                        // reply carrying the current epoch and class rate table.
                        fabric.account_async(self.node, NodeId::MASTER, MsgClass::Rejoin, 24);
                        fabric.account_async(NodeId::MASTER, self.node, MsgClass::Rejoin, 64);
                        self.shared.rejoins.fetch_add(1, Ordering::Relaxed);
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::NodeRejoined {
                                node: self.node.0,
                                thread: self.thread.0,
                                epoch: self.shared.master_epoch.load(Ordering::Acquire),
                            },
                        );
                    }
                    // Partition window: the path to the master is severed. The batch
                    // is *deferred, not dropped* — the node's send queue holds it
                    // until the partition heals (permanent partitions surface the
                    // loss at thread drop). Nothing is accounted yet: no bytes cross
                    // the cut.
                    let now = self.clock.now();
                    if inj.severed(self.node, NodeId::MASTER, now) {
                        let heal = inj
                            .plan()
                            .heal_at(self.node, NodeId::MASTER, now)
                            .unwrap_or(u64::MAX);
                        inj.note_oal_deferred();
                        self.shared.emit_event(
                            &self.clock,
                            EventKind::OalDeferred {
                                thread: self.thread.0,
                                interval: oal.interval,
                                heal_ns: heal,
                            },
                        );
                        let key = jessy_net::oal_fault_key(oal.thread, oal.interval);
                        let env = EpochOal {
                            epoch: self.shared.master_epoch.load(Ordering::Acquire),
                            oal,
                        };
                        self.deferred_oals.push((heal, key, env));
                        return;
                    }
                }
                // The jumbo OAL message piggybacks on the sync message already headed
                // to the master (Section II.A), so the sender pays only the transmit
                // occupancy of the extra bytes, not another base latency. In tree
                // mode (`tcm_tree_fanout >= 2`) the OAL stays on its node — the
                // local pre-reducer consumes it and only the per-round partial-TCM
                // crosses the fabric, accounted by the master per tree edge.
                if self.shared.prof.config().tcm_tree_fanout < 2 {
                    fabric.account_async(
                        self.node,
                        NodeId::MASTER,
                        MsgClass::OalBatch,
                        oal.wire_bytes(),
                    );
                    if self.node != NodeId::MASTER {
                        let bytes = oal.wire_bytes() + MsgClass::OalBatch.header_bytes();
                        self.clock
                            .spend((bytes as f64 * fabric.latency_model().ns_per_byte) as u64);
                    }
                }
                let key = jessy_net::oal_fault_key(oal.thread, oal.interval);
                let interval = oal.interval;
                let oal = EpochOal {
                    epoch: self.shared.master_epoch.load(Ordering::Acquire),
                    oal,
                };
                if self.shared.oal_tx.try_post_keyed(self.node, key, oal).is_err() {
                    // Mailbox gone (master already joined): count and record which
                    // interval vanished, don't crash the application thread — the
                    // report folds the loss into round coverage (DESIGN.md §14).
                    self.shared
                        .oal_post_failures
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.shared.lost_oals.lock().push((self.thread.0, interval));
                    self.shared.emit_event(
                        &self.clock,
                        EventKind::OalPostFailed {
                            thread: self.thread.0,
                            interval,
                        },
                    );
                } else {
                    // Mail landed: make the master task runnable (a no-op when it
                    // is already runnable, or when running without the executor).
                    self.shared.exec.unblock(self.shared.master_task());
                }
            }
        }
    }

    /// Enter the global barrier (an interval boundary: the current interval closes,
    /// its OAL ships, and the next interval opens with false-invalid traps armed).
    /// Barriers are also the safe points where dynamic-balancer migration directives
    /// are honoured.
    pub fn barrier(&mut self) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .barrier_wait(&mut self.space, self.node, self.shared.n_threads, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.emit_interval_opened();
        self.honour_directive();
    }

    fn emit_interval_opened(&mut self) {
        self.shared.emit_event(
            &self.clock,
            EventKind::IntervalOpened {
                thread: self.thread.0,
                interval: self.profiler.interval(),
            },
        );
    }

    fn honour_directive(&mut self) {
        let Some(rebalance) = self.shared.rebalance else {
            return;
        };
        let directive = self.shared.directives.read()[self.thread.index()];
        if let Some(dest) = directive {
            self.shared.directives.write()[self.thread.index()] = None;
            if dest != self.node {
                let report = self.migrate_to(dest, rebalance.with_prefetch);
                self.shared.migration_log.lock().push(report);
            }
        }
    }

    /// Acquire a distributed lock (interval boundary).
    pub fn lock(&mut self, lock: LockId) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .lock_acquire(&mut self.space, lock, self.node, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.emit_interval_opened();
    }

    /// Release a distributed lock (interval boundary).
    pub fn unlock(&mut self, lock: LockId) {
        self.close_and_ship_oal();
        self.shared
            .gos
            .lock_release(&mut self.space, lock, self.node, &self.clock);
        self.profiler.open_interval(&mut self.space);
        self.emit_interval_opened();
    }

    // ------------------------------------------------------------------ Java stack

    /// Push a stack frame (method call).
    pub fn push_frame(&mut self, method: MethodId) {
        self.stack.push(method, &self.shared.methods);
    }

    /// Pop the top frame (method return).
    pub fn pop_frame(&mut self) {
        self.stack.pop();
    }

    /// Store an object reference into a slot of the current frame.
    pub fn set_local_ref(&mut self, slot: usize, obj: ObjectId) {
        self.stack.set_local(slot, Slot::Ref(obj));
    }

    /// Store a primitive into a slot of the current frame.
    pub fn set_local_prim(&mut self, slot: usize, v: u64) {
        self.stack.set_local(slot, Slot::Prim(v));
    }

    /// The Java stack (diagnostics).
    pub fn stack(&self) -> &JavaStack {
        &self.stack
    }

    // ------------------------------------------------------------------ migration

    /// Migrate this thread to `dest`, optionally prefetching its resolved sticky set
    /// along with the context (Section III). Returns what moved.
    pub fn migrate_to(&mut self, dest: NodeId, with_prefetch: bool) -> MigrationReport {
        let src = self.node;
        let t0 = self.clock.now();
        let ctx_bytes = self.stack.context_bytes();
        self.shared
            .gos
            .fabric()
            .send(src, dest, MsgClass::MigrationCtx, ctx_bytes, &self.clock);

        // Resolve the sticky set BEFORE dropping the thread-local heap (the resolver
        // reads the sampled landmarks, not the caches, but the profiler state is tied
        // to the pre-migration interval).
        let resolved = if with_prefetch && src != dest {
            Some(self.profiler.resolve_sticky(&self.shared.gos, &self.clock))
        } else {
            None
        };

        // The thread-local heap stays behind: flush pending writes and drop it.
        self.shared
            .gos
            .drop_thread_cache(&mut self.space, src, &self.clock);

        let mut resolution: Option<Resolution> = None;
        let mut prefetch_bytes = 0usize;
        let mut prefetched_objects = 0usize;
        if let Some(res) = resolved {
            prefetched_objects = res.selected.len();
            prefetch_bytes = self.shared.gos.prefetch_into(
                &mut self.space,
                dest,
                res.selected.iter().copied(),
                &self.clock,
            );
            resolution = Some(res);
        }

        self.node = dest;
        self.shared.placement.write()[self.thread.index()] = dest;
        // Keep the daemon's view fresh even if it doesn't read placement directly.
        self.shared.done.load(Ordering::Relaxed);
        self.shared.emit_event(
            &self.clock,
            EventKind::ThreadMigrated {
                thread: self.thread.0,
                from: src.0,
                to: dest.0,
                prefetched: prefetched_objects as u64,
            },
        );

        MigrationReport {
            thread: self.thread,
            from: src,
            to: dest,
            ctx_bytes,
            prefetched_objects,
            prefetch_bytes,
            sim_cost_ns: self.clock.now() - t0,
            resolution,
        }
    }
}

impl Drop for JThread {
    /// Flush deferred OAL batches one last time (whatever is still stuck behind an
    /// unhealed partition is surfaced as lost), then park the access arena back in
    /// the cluster so post-run inspection (and a later re-adoption of the same
    /// thread id) sees the thread's heap state.
    fn drop(&mut self) {
        self.flush_deferred_oals();
        for (_, _, env) in std::mem::take(&mut self.deferred_oals) {
            self.shared
                .oal_post_failures
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .lost_oals
                .lock()
                .push((self.thread.0, env.oal.interval));
            self.shared.emit_event(
                &self.clock,
                EventKind::OalPostFailed {
                    thread: self.thread.0,
                    interval: env.oal.interval,
                },
            );
        }
        let space = std::mem::replace(&mut self.space, ThreadSpace::new(self.thread));
        *self.shared.spaces[self.thread.index()].lock() = Some(space);
    }
}
