//! Run reports — what every benchmark table reads.
//!
//! Two views of one run:
//!
//! * [`RunReport`] — everything measured, including host-dependent real-time
//!   fields (`wall_ns`, the master's `tcm_build_real_ns`).
//! * [`DeterministicReport`] — the same report with every host-dependent field
//!   removed or masked, so two same-seed runs on different machines serialize
//!   **byte-identically**. The chaos suite's zero-fault bit-identity test
//!   compares this view in full instead of hand-picked fields.
//!
//! [`RunReport::metrics`] flattens the report's scattered counter structs
//! (network ledger, protocol counters, profiler stats, master output) into one
//! namespaced [`MetricsSnapshot`], so dashboards and benches diff one object
//! instead of four.

use serde::{Deserialize, Serialize};

use jessy_core::profiler::ProfilerStatsSnapshot;
use jessy_gos::protocol::ProtocolCounters;
use jessy_net::{MsgClass, NetworkStats, SimNanos, ThreadId};
use jessy_obs::MetricsSnapshot;

use crate::cluster::ClusterShared;
use crate::master::MasterOutput;

/// Everything measured over one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Nodes in the cluster.
    pub n_nodes: usize,
    /// Application threads.
    pub n_threads: usize,
    /// Simulated execution time: the maximum application-thread clock.
    pub sim_exec_ns: SimNanos,
    /// Per-thread simulated times.
    pub per_thread_ns: Vec<SimNanos>,
    /// Real wall-clock time of the run (host-dependent; used for sanity only).
    pub wall_ns: u64,
    /// Network traffic ledger.
    pub net: NetworkStats,
    /// Protocol event counters.
    pub proto: ProtocolCounters,
    /// Profiler counters.
    pub profiler: ProfilerStatsSnapshot,
    /// Master daemon output, when a run happened.
    pub master: Option<MasterOutput>,
    /// OAL batches an application thread could not post (master mailbox already
    /// closed). Non-zero values mean the profile silently lost those intervals.
    pub oal_post_failures: u64,
    /// The `(thread, interval)` pairs behind [`RunReport::oal_post_failures`],
    /// sorted — the loss is attributable, not just countable, and
    /// [`RunReport::adjusted_round_coverage`] folds it into coverage accounting.
    pub lost_oals: Vec<(u32, u64)>,
    /// The `(thread, interval)` pairs whose OAL identity was shed under mailbox
    /// backpressure (`ProfilerConfig::oal_mailbox_capacity`), sorted. Like
    /// `lost_oals`, every shed is attributable and folded into
    /// [`RunReport::adjusted_round_coverage`] — never silent.
    pub shed_oals: Vec<(u32, u64)>,
    /// Sheds that dropped the batch outright (`ShedPolicy::DropOldestRound`,
    /// plus any post-gate race losses attributed to it).
    pub sheds_dropped: u64,
    /// Sheds that merged the batch into its successor (`ShedPolicy::MergeBatches`).
    pub sheds_merged: u64,
    /// Sheds that merged + collapsed to per-class summaries (`ShedPolicy::SummaryOnly`).
    pub sheds_summarized: u64,
    /// Rejoin handshakes performed by threads of nodes that came back from a crash
    /// window (DESIGN.md §12).
    pub rejoins: u64,
}

impl RunReport {
    pub(crate) fn gather(
        shared: &ClusterShared,
        master: Option<&MasterOutput>,
        wall_ns: u64,
    ) -> RunReport {
        let per_thread_ns: Vec<SimNanos> = (0..shared.n_threads)
            .map(|t| shared.board.read(ThreadId(t as u32)))
            .collect();
        RunReport {
            n_nodes: shared.n_nodes,
            n_threads: shared.n_threads,
            sim_exec_ns: per_thread_ns.iter().copied().max().unwrap_or(0),
            per_thread_ns,
            wall_ns,
            net: shared.gos.net_stats(),
            proto: shared.gos.proto_counters(),
            profiler: shared.prof.stats().snapshot(),
            master: master.cloned(),
            oal_post_failures: shared
                .oal_post_failures
                .load(std::sync::atomic::Ordering::Relaxed),
            lost_oals: {
                let mut lost = shared.lost_oals.lock().clone();
                lost.sort_unstable();
                lost
            },
            shed_oals: {
                let mut shed = shared.shed_oals.lock().clone();
                shed.sort_unstable();
                shed
            },
            sheds_dropped: shared
                .sheds_dropped
                .load(std::sync::atomic::Ordering::Relaxed),
            sheds_merged: shared
                .sheds_merged
                .load(std::sync::atomic::Ordering::Relaxed),
            sheds_summarized: shared
                .sheds_summarized
                .load(std::sync::atomic::Ordering::Relaxed),
            rejoins: shared.rejoins.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Simulated execution time in milliseconds (the unit of the paper's tables).
    pub fn sim_exec_ms(&self) -> f64 {
        self.sim_exec_ns as f64 / 1e6
    }

    /// GOS (coherence) traffic in KB — Table III's "GOS Message Volume".
    pub fn gos_kb(&self) -> f64 {
        self.net.gos_bytes() as f64 / 1024.0
    }

    /// OAL (profiling) traffic in KB — Table III's "OAL Message Volume".
    pub fn oal_kb(&self) -> f64 {
        self.net.oal_bytes() as f64 / 1024.0
    }

    /// Percentage execution-time overhead of this run relative to a baseline.
    pub fn overhead_pct(&self, baseline: &RunReport) -> f64 {
        if baseline.sim_exec_ns == 0 {
            return 0.0;
        }
        (self.sim_exec_ns as f64 - baseline.sim_exec_ns as f64) / baseline.sim_exec_ns as f64
            * 100.0
    }

    /// The host-independent view: everything except wall-clock time, with the
    /// master's real TCM build time masked to zero. Two same-seed, zero-fault runs
    /// serialize this view byte-identically regardless of host, scheduler or core
    /// count. (A separate view rather than a `skip` attribute because the vendored
    /// serde derive ignores field attributes.)
    pub fn deterministic(&self) -> DeterministicReport {
        let master = self.master.clone().map(|mut m| {
            m.tcm_build_real_ns = 0;
            m
        });
        DeterministicReport {
            n_nodes: self.n_nodes,
            n_threads: self.n_threads,
            sim_exec_ns: self.sim_exec_ns,
            per_thread_ns: self.per_thread_ns.clone(),
            net: self.net.clone(),
            proto: self.proto,
            profiler: self.profiler,
            master,
            oal_post_failures: self.oal_post_failures,
            lost_oals: self.lost_oals.clone(),
            shed_oals: self.shed_oals.clone(),
            sheds_dropped: self.sheds_dropped,
            sheds_merged: self.sheds_merged,
            sheds_summarized: self.sheds_summarized,
            rejoins: self.rejoins,
        }
    }

    /// Round-coverage history with post-failure losses *and* backpressure sheds
    /// folded back in: each lost or shed `(thread, interval)` OAL subtracts its
    /// share `1 / (n_threads · ipr)` from the coverage of the round that owned
    /// the interval, extending the master's history with fully-covered rounds as
    /// needed. Losses the master never saw (its mailbox was already closed, or
    /// the batch's identity was shed before posting) thus still show up where
    /// coverage gating looks, instead of vanishing into a bare counter.
    pub fn adjusted_round_coverage(&self, intervals_per_round: u64) -> Vec<f64> {
        let ipr = intervals_per_round.max(1);
        let mut coverage = self
            .master
            .as_ref()
            .map(|m| m.round_coverage.clone())
            .unwrap_or_default();
        let share = 1.0 / (self.n_threads.max(1) as f64 * ipr as f64);
        for (_thread, interval) in self.lost_oals.iter().chain(&self.shed_oals) {
            let round = (interval / ipr) as usize;
            if coverage.len() <= round {
                coverage.resize(round + 1, 1.0);
            }
            coverage[round] = (coverage[round] - share).max(0.0);
        }
        coverage
    }

    /// True if any round's loss-adjusted coverage fell below `floor` — the same
    /// gate the adaptive controller applies, but also counting OALs lost after
    /// the master stopped listening.
    pub fn profile_degraded(&self, floor: f64, intervals_per_round: u64) -> bool {
        self.adjusted_round_coverage(intervals_per_round)
            .iter()
            .any(|c| *c < floor)
    }

    /// Flatten every counter of the run into one namespaced registry:
    /// `net.<class>.messages/bytes` plus ledger totals and fault counters,
    /// `proto.*` protocol events, `profiler.*` sampling counters, `master.*`
    /// round pipeline counters, and `run.*` for the report's own scalars.
    /// Snapshots diff (`MetricsSnapshot::since`) and merge, so phase-to-phase
    /// deltas come from one object instead of four hand-paired structs.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set("run.n_nodes", self.n_nodes as u64);
        m.set("run.n_threads", self.n_threads as u64);
        m.set("run.sim_exec_ns", self.sim_exec_ns);
        m.set("run.oal_post_failures", self.oal_post_failures);
        m.set("run.lost_oals", self.lost_oals.len() as u64);
        m.set("run.rejoins", self.rejoins);
        m.set("net.shed.dropped", self.sheds_dropped);
        m.set("net.shed.merged", self.sheds_merged);
        m.set("net.shed.summarized", self.sheds_summarized);

        for class in MsgClass::ALL {
            let c = self.net.class(class);
            m.set(format!("net.{}.messages", class.label()), c.messages);
            m.set(format!("net.{}.bytes", class.label()), c.bytes);
        }
        m.set("net.total_messages", self.net.total_messages());
        m.set("net.total_bytes", self.net.total_bytes());
        m.set("net.gos_bytes", self.net.gos_bytes());
        m.set("net.oal_bytes", self.net.oal_bytes());
        m.set("net.migration_bytes", self.net.migration_bytes());
        m.set("net.faults.dropped", self.net.faults.dropped);
        m.set("net.faults.duplicated", self.net.faults.duplicated);
        m.set("net.faults.delayed", self.net.faults.delayed);
        m.set("net.faults.stalled", self.net.faults.stalled);
        m.set("net.faults.retransmits", self.net.faults.retransmits);
        m.set("net.faults.crash_suppressed", self.net.faults.crash_suppressed);
        m.set("net.faults.partitioned", self.net.faults.partitioned);
        m.set("net.faults.oals_deferred", self.net.faults.oals_deferred);

        m.set("proto.real_faults", self.proto.real_faults);
        m.set("proto.false_invalid_faults", self.proto.false_invalid_faults);
        m.set("proto.accesses", self.proto.accesses);
        m.set("proto.diffs_flushed", self.proto.diffs_flushed);
        m.set("proto.notices_applied", self.proto.notices_applied);
        m.set("proto.home_migrations", self.proto.home_migrations);
        m.set("proto.objects_prefetched", self.proto.objects_prefetched);

        m.set("profiler.intervals_closed", self.profiler.intervals_closed);
        m.set("profiler.oal_entries", self.profiler.oal_entries);
        m.set("profiler.fi_armed", self.profiler.fi_armed);
        m.set("profiler.footprint_rearms", self.profiler.footprint_rearms);

        if let Some(master) = &self.master {
            m.set("master.oals_ingested", master.oals_ingested);
            m.set("master.rounds", master.rounds);
            m.set("master.objects_organized", master.objects_organized);
            m.set("master.rate_changes", master.rate_changes.len() as u64);
            m.set(
                "master.skipped_rate_changes",
                master.skipped_rate_changes.len() as u64,
            );
            m.set("master.deadline_rounds", master.deadline_rounds);
            m.set("master.late_oals", master.late_oals);
            m.set("master.duplicate_oals", master.duplicate_oals);
            m.set(
                "master.planned_migrations",
                master.planned_migrations.len() as u64,
            );
            m.set("master.placement.plans", master.placement.plans);
            m.set("master.placement.directives", master.placement.directives);
            m.set(
                "master.placement.fenced_directives",
                master.placement.fenced_directives,
            );
            m.set(
                "master.placement.applied_migrations",
                master.placement.applied_migrations,
            );
            m.set(
                "master.placement.migrated_bytes",
                master.placement.migrated_bytes,
            );
            m.set(
                "master.placement.homes_migrated",
                master.placement.homes_migrated,
            );
            m.set(
                "master.placement.homes_repaired",
                master.placement.homes_repaired,
            );
            m.set(
                "master.placement.repaired_bytes",
                master.placement.repaired_bytes,
            );
            m.set(
                "master.placement.vetoes",
                master.placement.vetoed_gain
                    + master.placement.vetoed_cooldown
                    + master.placement.vetoed_cost
                    + master.placement.vetoed_budget,
            );
            m.set("master.checkpoints_taken", master.checkpoints_taken);
            m.set("master.restores", master.restores);
            m.set("master.replayed_oals", master.replayed_oals);
            m.set("master.fenced_oals", master.fenced_oals);
            m.set("master.quarantined_nodes", master.quarantined_nodes);
            m.set("master.converged_classes", master.converged_classes);
            m.set("master.final_epoch", master.final_epoch);
            m.set("master.top_pairs", master.top_pairs.len() as u64);
            m.set("master.reduce.tree_rounds", master.reduce.tree_rounds);
            m.set("master.reduce.shuffle_records", master.reduce.shuffle_records);
            m.set("master.reduce.shuffle_bytes", master.reduce.shuffle_bytes);
            m.set("master.reduce.partial_cells", master.reduce.partial_cells);
            m.set("master.reduce.partial_bytes", master.reduce.partial_bytes);
            m.set("master.reduce.master_partials", master.reduce.master_partials);
            m.set("master.stragglers", master.stragglers);
            m.set("profiler.budget.over_rounds", master.budget_over_rounds);
            m.set("profiler.budget.degrades", master.budget_degrades);
        }
        m
    }
}

/// The host-independent projection of a [`RunReport`]: no `wall_ns`, and the
/// master's `tcm_build_real_ns` masked to zero. Serializing this view is the
/// contract the zero-fault bit-identity tests (and the CI journal-identity
/// smoke) compare — see [`RunReport::deterministic`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeterministicReport {
    /// Nodes in the cluster.
    pub n_nodes: usize,
    /// Application threads.
    pub n_threads: usize,
    /// Simulated execution time: the maximum application-thread clock.
    pub sim_exec_ns: SimNanos,
    /// Per-thread simulated times.
    pub per_thread_ns: Vec<SimNanos>,
    /// Network traffic ledger.
    pub net: NetworkStats,
    /// Protocol event counters.
    pub proto: ProtocolCounters,
    /// Profiler counters.
    pub profiler: ProfilerStatsSnapshot,
    /// Master daemon output with its real-time field zeroed.
    pub master: Option<MasterOutput>,
    /// OAL batches that could not be posted.
    pub oal_post_failures: u64,
    /// The lost `(thread, interval)` pairs, sorted.
    pub lost_oals: Vec<(u32, u64)>,
    /// The shed `(thread, interval)` pairs, sorted.
    pub shed_oals: Vec<(u32, u64)>,
    /// Sheds by policy: outright drops.
    pub sheds_dropped: u64,
    /// Sheds by policy: merges into the successor batch.
    pub sheds_merged: u64,
    /// Sheds by policy: merges collapsed to per-class summaries.
    pub sheds_summarized: u64,
    /// Rejoin handshakes performed.
    pub rejoins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sim_ns: u64) -> RunReport {
        RunReport {
            n_nodes: 1,
            n_threads: 1,
            sim_exec_ns: sim_ns,
            per_thread_ns: vec![sim_ns],
            wall_ns: 0,
            net: NetworkStats::new(),
            proto: ProtocolCounters::default(),
            profiler: ProfilerStatsSnapshot::default(),
            master: None,
            oal_post_failures: 0,
            lost_oals: Vec::new(),
            shed_oals: Vec::new(),
            sheds_dropped: 0,
            sheds_merged: 0,
            sheds_summarized: 0,
            rejoins: 0,
        }
    }

    #[test]
    fn overhead_pct_is_relative() {
        let base = report(1_000_000);
        let with = report(1_050_000);
        assert!((with.overhead_pct(&base) - 5.0).abs() < 1e-9);
        assert_eq!(with.overhead_pct(&report(0)), 0.0, "degenerate baseline");
    }

    #[test]
    fn unit_conversions() {
        let r = report(24_250_000_000);
        assert!((r.sim_exec_ms() - 24_250.0).abs() < 1e-9);
        assert_eq!(r.gos_kb(), 0.0);
    }
}
