//! Run reports — what every benchmark table reads.

use serde::{Deserialize, Serialize};

use jessy_core::profiler::ProfilerStatsSnapshot;
use jessy_gos::protocol::ProtocolCounters;
use jessy_net::{NetworkStats, SimNanos, ThreadId};

use crate::cluster::ClusterShared;
use crate::master::MasterOutput;

/// Everything measured over one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Nodes in the cluster.
    pub n_nodes: usize,
    /// Application threads.
    pub n_threads: usize,
    /// Simulated execution time: the maximum application-thread clock.
    pub sim_exec_ns: SimNanos,
    /// Per-thread simulated times.
    pub per_thread_ns: Vec<SimNanos>,
    /// Real wall-clock time of the run (host-dependent; used for sanity only).
    pub wall_ns: u64,
    /// Network traffic ledger.
    pub net: NetworkStats,
    /// Protocol event counters.
    pub proto: ProtocolCounters,
    /// Profiler counters.
    pub profiler: ProfilerStatsSnapshot,
    /// Master daemon output, when a run happened.
    pub master: Option<MasterOutput>,
    /// OAL batches an application thread could not post (master mailbox already
    /// closed). Non-zero values mean the profile silently lost those intervals.
    pub oal_post_failures: u64,
    /// Rejoin handshakes performed by threads of nodes that came back from a crash
    /// window (DESIGN.md §12).
    pub rejoins: u64,
}

impl RunReport {
    pub(crate) fn gather(
        shared: &ClusterShared,
        master: Option<&MasterOutput>,
        wall_ns: u64,
    ) -> RunReport {
        let per_thread_ns: Vec<SimNanos> = (0..shared.n_threads)
            .map(|t| shared.board.read(ThreadId(t as u32)))
            .collect();
        RunReport {
            n_nodes: shared.n_nodes,
            n_threads: shared.n_threads,
            sim_exec_ns: per_thread_ns.iter().copied().max().unwrap_or(0),
            per_thread_ns,
            wall_ns,
            net: shared.gos.net_stats(),
            proto: shared.gos.proto_counters(),
            profiler: shared.prof.stats().snapshot(),
            master: master.cloned(),
            oal_post_failures: shared
                .oal_post_failures
                .load(std::sync::atomic::Ordering::Relaxed),
            rejoins: shared.rejoins.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Simulated execution time in milliseconds (the unit of the paper's tables).
    pub fn sim_exec_ms(&self) -> f64 {
        self.sim_exec_ns as f64 / 1e6
    }

    /// GOS (coherence) traffic in KB — Table III's "GOS Message Volume".
    pub fn gos_kb(&self) -> f64 {
        self.net.gos_bytes() as f64 / 1024.0
    }

    /// OAL (profiling) traffic in KB — Table III's "OAL Message Volume".
    pub fn oal_kb(&self) -> f64 {
        self.net.oal_bytes() as f64 / 1024.0
    }

    /// Percentage execution-time overhead of this run relative to a baseline.
    pub fn overhead_pct(&self, baseline: &RunReport) -> f64 {
        if baseline.sim_exec_ns == 0 {
            return 0.0;
        }
        (self.sim_exec_ns as f64 - baseline.sim_exec_ns as f64) / baseline.sim_exec_ns as f64
            * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sim_ns: u64) -> RunReport {
        RunReport {
            n_nodes: 1,
            n_threads: 1,
            sim_exec_ns: sim_ns,
            per_thread_ns: vec![sim_ns],
            wall_ns: 0,
            net: NetworkStats::new(),
            proto: ProtocolCounters::default(),
            profiler: ProfilerStatsSnapshot::default(),
            master: None,
            oal_post_failures: 0,
            rejoins: 0,
        }
    }

    #[test]
    fn overhead_pct_is_relative() {
        let base = report(1_000_000);
        let with = report(1_050_000);
        assert!((with.overhead_pct(&base) - 5.0).abs() < 1e-9);
        assert_eq!(with.overhead_pct(&report(0)), 0.0, "degenerate baseline");
    }

    #[test]
    fn unit_conversions() {
        let r = report(24_250_000_000);
        assert!((r.sim_exec_ms() - 24_250.0).abs() < 1e-9);
        assert_eq!(r.gos_kb(), 0.0);
    }
}
