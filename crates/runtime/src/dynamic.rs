//! Dynamic load balancing — closing the loop the paper opens.
//!
//! Section V: *"Our future work is to formulate an advanced load balancing policy that
//! utilizes the correlation maps and sticky sets gathered…"*. This module is that
//! policy's skeleton, built from the pieces the paper provides:
//!
//! * the master watches the TCM accumulate; after [`RebalanceConfig::after_rounds`]
//!   rounds it plans a balanced placement with the [`crate::LoadBalancer`];
//! * threads whose planned node differs from their current one get a **migration
//!   directive**; a directive is priced first — the correlation *gain* (marginal
//!   intra-node mass) must clear [`RebalanceConfig::min_gain_bytes`], the paper's
//!   guard against thrashing ("employing localized thread placement strategies may …
//!   cause threads to thrash between nodes");
//! * each thread checks its directive at its next barrier (a safe point, where the
//!   real JESSICA2 migrates too) and relocates, optionally prefetching its resolved
//!   sticky set so the indirect cost is paid up front instead of as post-migration
//!   faults.

use serde::{Deserialize, Serialize};

use jessy_net::{NodeId, ThreadId};

use crate::balancer::LoadBalancer;
use crate::cluster::ClusterShared;
use jessy_core::Tcm;

/// Configuration of the dynamic balancer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Plan once this many TCM rounds have closed.
    pub after_rounds: u64,
    /// Prefetch each migrant's resolved sticky set along with its context.
    pub with_prefetch: bool,
    /// Minimum correlation gain (bytes/round of new intra-node mass) for a directive
    /// to be issued — the anti-thrashing guard.
    pub min_gain_bytes: f64,
    /// How many future rounds a migration's gain is credited for when weighed against
    /// its one-time sticky-set cost: migrate iff
    /// `gain × horizon ≥ sticky-footprint bytes` (the paper's profitability test).
    pub gain_horizon_rounds: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            after_rounds: 4,
            with_prefetch: true,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 10.0,
        }
    }
}

/// One directive the planner issued.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedMigration {
    /// The thread to move.
    pub thread: ThreadId,
    /// Where it was when the plan was made.
    pub from: NodeId,
    /// Where it should go.
    pub to: NodeId,
    /// The correlation gain that justified it.
    pub gain_bytes: f64,
    /// The sticky-set cost it was weighed against.
    pub sticky_cost_bytes: f64,
}

/// Plan against the current placement and post directives. Returns what was issued.
/// Called by the master daemon once `after_rounds` rounds have closed.
pub fn plan_and_post(shared: &ClusterShared, tcm: &Tcm, config: &RebalanceConfig) -> Vec<PlannedMigration> {
    let lb = LoadBalancer::new();
    let current = shared.placement.read().clone();
    let plan = lb.plan(tcm, shared.n_nodes);
    let mut issued = Vec::new();
    let mut directives = shared.directives.write();
    for t in 0..shared.n_threads {
        let thread = ThreadId(t as u32);
        let dest = plan.placement[t];
        if dest == current[t] {
            continue;
        }
        let gain = lb.migration_gain(tcm, &current, thread, dest);
        if gain < config.min_gain_bytes {
            continue;
        }
        // The paper's profitability test: the one-time sticky-set transfer must be
        // amortized by the per-round correlation gain within the horizon.
        let sticky_cost = shared.footprints.read()[t];
        if gain * config.gain_horizon_rounds < sticky_cost {
            continue;
        }
        directives[t] = Some(dest);
        issued.push(PlannedMigration {
            thread,
            from: current[t],
            to: dest,
            gain_bytes: gain,
            sticky_cost_bytes: sticky_cost,
        });
    }
    issued
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use jessy_core::ProfilerConfig;

    #[test]
    fn plan_and_post_respects_min_gain() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();

        // Threads 0&1 correlate strongly; 2&3 weakly.
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 1000.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 0.5);

        let strict = RebalanceConfig {
            after_rounds: 1,
            with_prefetch: false,
            min_gain_bytes: 10.0,
            gain_horizon_rounds: 1e18,
        };
        let issued = plan_and_post(shared, &tcm, &strict);
        // Reuniting 0&1 clears the bar; reuniting 2&3 (gain 0.5) does not.
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|m| m.gain_bytes >= 10.0));
        let directives = shared.directives.read();
        let posted = directives.iter().filter(|d| d.is_some()).count();
        assert_eq!(posted, issued.len());
    }

    #[test]
    fn sticky_cost_vetoes_marginal_migrations() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);

        // Every thread carries a huge sticky footprint: the one-time transfer cannot
        // be amortized within the horizon.
        *shared.footprints.write() = vec![1e9; 4];
        let cfg = RebalanceConfig {
            after_rounds: 1,
            with_prefetch: false,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 2.0, // gain 100 × 2 « 1e9
        };
        assert!(plan_and_post(shared, &tcm, &cfg).is_empty());

        // With light footprints the same plan goes through.
        *shared.footprints.write() = vec![50.0; 4];
        shared.directives.write().iter_mut().for_each(|d| *d = None);
        let issued = plan_and_post(shared, &tcm, &cfg);
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|m| m.sticky_cost_bytes == 50.0));
    }

    #[test]
    fn no_directives_for_an_already_good_placement() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 100.0);
        let issued = plan_and_post(cluster.shared(), &tcm, &RebalanceConfig::default());
        assert!(issued.is_empty(), "{issued:?}");
    }
}
