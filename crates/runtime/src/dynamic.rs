//! Dynamic load balancing — closing the loop the paper opens.
//!
//! Section V: *"Our future work is to formulate an advanced load balancing policy that
//! utilizes the correlation maps and sticky sets gathered…"*. This module is that
//! policy, built from the pieces the paper provides, in two modes:
//!
//! * **One-shot** (`every_rounds: None`, the original behavior): after
//!   [`RebalanceConfig::after_rounds`] rounds the master plans a balanced placement
//!   with the [`crate::LoadBalancer`] and posts directives once.
//! * **Continuous** (`every_rounds: Some(k)`): the master re-plans every `k` rounds
//!   from whatever correlation view the reducer maintains ([`plan_epoch`]), refining
//!   the *live* placement with KL-style boundary moves. Hysteresis
//!   ([`RebalanceConfig::cooldown_rounds`]) keeps a recently moved thread pinned so
//!   plans can't bounce it back ("threads … thrash between nodes", the paper's
//!   warning), and [`RebalanceConfig::migration_budget_bytes`] caps the sticky-set
//!   bytes any one epoch may put on the fabric.
//!
//! Every directive is **epoch-stamped** with the master epoch current at plan time
//! and fenced at the honouring barrier, exactly like OAL batches: a directive planned
//! before a master crash/restore is dropped attributably
//! (`EventKind::DirectiveFenced`), never applied to the post-recovery world.

use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;

use jessy_net::{NodeId, ThreadId};

use crate::balancer::{LoadBalancer, MoveFilter};
use crate::cluster::ClusterShared;
use jessy_core::CorrelationView;

/// Configuration of the dynamic balancer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Plan once this many TCM rounds have closed.
    pub after_rounds: u64,
    /// Prefetch each migrant's resolved sticky set along with its context.
    pub with_prefetch: bool,
    /// Minimum correlation gain (bytes/round of new intra-node mass) for a directive
    /// to be issued — the anti-thrashing guard.
    pub min_gain_bytes: f64,
    /// How many future rounds a migration's gain is credited for when weighed against
    /// its one-time sticky-set cost: migrate iff
    /// `gain × horizon ≥ sticky-footprint bytes` (the paper's profitability test).
    pub gain_horizon_rounds: f64,
    /// Re-plan every this many rounds after `after_rounds` (continuous mode).
    /// `None` keeps the original one-shot behavior.
    pub every_rounds: Option<u64>,
    /// A thread that migrated within this many rounds is ineligible to move again
    /// (hysteresis; continuous mode only).
    pub cooldown_rounds: u64,
    /// Sticky-set bytes one planning epoch may commit to the fabric (continuous
    /// mode only). `None` is unlimited.
    pub migration_budget_bytes: Option<f64>,
    /// Relocate the homes of a migrant's resolved sticky-set objects to its
    /// destination. Cache copies live in thread-local heaps, so collocating
    /// correlated threads only pays off once their shared objects are *homed* where
    /// they run — this is what converts a placement gain into home-local accesses.
    pub migrate_homes: bool,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            after_rounds: 4,
            with_prefetch: true,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 10.0,
            every_rounds: None,
            cooldown_rounds: 8,
            migration_budget_bytes: None,
            migrate_homes: true,
        }
    }
}

/// A migration directive posted to a thread's slot, honoured (or fenced) at its
/// next barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directive {
    /// Where the thread should go.
    pub dest: NodeId,
    /// The master epoch the plan was made in; a mismatch at the barrier fences
    /// the directive.
    pub epoch: u64,
}

/// One directive the planner issued.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedMigration {
    /// The thread to move.
    pub thread: ThreadId,
    /// Where it was when the plan was made.
    pub from: NodeId,
    /// Where it should go.
    pub to: NodeId,
    /// The correlation gain that justified it.
    pub gain_bytes: f64,
    /// The sticky-set cost it was weighed against.
    pub sticky_cost_bytes: f64,
}

/// One planning epoch's intra-fraction movement, for the telemetry trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntraSample {
    /// The round whose close triggered the plan.
    pub round: u64,
    /// Intra-node correlation fraction of the live placement, under the planning view.
    pub before: f64,
    /// Intra-node fraction the posted plan targets.
    pub after: f64,
}

/// Placement-engine counters surfaced in `MasterOutput` and the CLI summary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlacementTelemetry {
    /// Planning epochs closed.
    pub plans: u64,
    /// Migration directives posted across all epochs.
    pub directives: u64,
    /// Sticky-set bytes the posted directives committed to.
    pub planned_bytes: f64,
    /// Moves vetoed because the best gain fell below `min_gain_bytes`.
    pub vetoed_gain: u64,
    /// Moves vetoed by the cooldown window (hysteresis).
    pub vetoed_cooldown: u64,
    /// Moves vetoed by the sticky-cost profitability test.
    pub vetoed_cost: u64,
    /// Moves vetoed by the per-epoch migration-byte budget.
    pub vetoed_budget: u64,
    /// Directives dropped at barriers for carrying a stale master epoch.
    pub fenced_directives: u64,
    /// Migrations threads actually performed.
    pub applied_migrations: u64,
    /// Context + prefetch bytes those migrations moved.
    pub migrated_bytes: u64,
    /// Object homes relocated alongside the migrants.
    pub homes_migrated: u64,
    /// Object homes repaired by the master's home-effect pass (objects pulled to
    /// their dominant accessor node without any thread moving).
    pub homes_repaired: u64,
    /// Payload bytes those repairs shipped between homes.
    pub repaired_bytes: u64,
    /// Per-epoch (round, intra-before, intra-after) under the planning view.
    pub intra_trajectory: Vec<IntraSample>,
}

/// What one continuous planning epoch decided.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochPlan {
    /// Directives posted this epoch.
    pub issued: Vec<PlannedMigration>,
    /// Sticky-set bytes the issued directives committed to.
    pub planned_bytes: f64,
    /// `min_gain_bytes` stops recorded.
    pub vetoed_gain: u64,
    /// Cooldown vetoes recorded.
    pub vetoed_cooldown: u64,
    /// Profitability vetoes recorded.
    pub vetoed_cost: u64,
    /// Budget vetoes recorded.
    pub vetoed_budget: u64,
    /// Intra-node fraction of the live placement before the plan.
    pub intra_before: f64,
    /// Intra-node fraction the plan targets.
    pub intra_after: f64,
}

/// Plan against the current placement and post directives. Returns what was issued.
/// Called by the master daemon once `after_rounds` rounds have closed (one-shot mode).
pub fn plan_and_post(
    shared: &ClusterShared,
    view: &dyn CorrelationView,
    config: &RebalanceConfig,
) -> Vec<PlannedMigration> {
    let lb = LoadBalancer::new();
    let current = shared.placement.read().clone();
    let plan = lb.plan(view, shared.n_nodes);
    let epoch = shared.master_epoch.load(Ordering::Acquire);
    let mut issued = Vec::new();
    let mut directives = shared.directives.write();
    for t in 0..shared.n_threads {
        let thread = ThreadId(t as u32);
        let dest = plan.placement[t];
        if dest == current[t] {
            continue;
        }
        let gain = lb.migration_gain(view, &current, thread, dest);
        if gain < config.min_gain_bytes {
            continue;
        }
        // The paper's profitability test: the one-time sticky-set transfer must be
        // amortized by the per-round correlation gain within the horizon.
        let sticky_cost = shared.footprints.read()[t];
        if gain * config.gain_horizon_rounds < sticky_cost {
            continue;
        }
        directives[t] = Some(Directive { dest, epoch });
        issued.push(PlannedMigration {
            thread,
            from: current[t],
            to: dest,
            gain_bytes: gain,
            sticky_cost_bytes: sticky_cost,
        });
    }
    issued
}

/// Close one continuous planning epoch: refine the *live* placement under the
/// sticky-cost/budget/cooldown filter, post epoch-stamped directives for the
/// surviving moves, and record when each mover last moved (for the cooldown mask
/// of the next epoch).
pub fn plan_epoch(
    shared: &ClusterShared,
    view: &dyn CorrelationView,
    config: &RebalanceConfig,
    round: u64,
    last_moved_round: &mut [Option<u64>],
) -> EpochPlan {
    let lb = LoadBalancer::new();
    let current = shared.placement.read().clone();
    let costs = shared.footprints.read().clone();
    let cooldown: Vec<bool> = last_moved_round
        .iter()
        .map(|m| m.is_some_and(|r| round.saturating_sub(r) < config.cooldown_rounds))
        .collect();
    let filter = MoveFilter {
        min_gain: config.min_gain_bytes,
        gain_horizon: config.gain_horizon_rounds,
        costs: Some(&costs),
        budget_bytes: config.migration_budget_bytes,
        in_cooldown: Some(&cooldown),
    };
    let intra_before = lb.intra_fraction(view, &current);
    let outcome = lb.refine(view, shared.n_nodes, &current, &filter);
    let intra_after = lb.intra_fraction(view, &outcome.placement);

    let epoch = shared.master_epoch.load(Ordering::Acquire);
    let mut issued = Vec::with_capacity(outcome.moves.len());
    let mut directives = shared.directives.write();
    for m in &outcome.moves {
        directives[m.thread.index()] = Some(Directive { dest: m.to, epoch });
        last_moved_round[m.thread.index()] = Some(round);
        issued.push(PlannedMigration {
            thread: m.thread,
            from: m.from,
            to: m.to,
            gain_bytes: m.gain,
            sticky_cost_bytes: m.cost_bytes,
        });
    }
    EpochPlan {
        issued,
        planned_bytes: outcome.spent_bytes,
        vetoed_gain: outcome.vetoed_gain,
        vetoed_cooldown: outcome.vetoed_cooldown,
        vetoed_cost: outcome.vetoed_cost,
        vetoed_budget: outcome.vetoed_budget,
        intra_before,
        intra_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use jessy_core::{ProfilerConfig, Tcm};

    #[test]
    fn plan_and_post_respects_min_gain() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();

        // Threads 0&1 correlate strongly; 2&3 weakly.
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 1000.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 0.5);

        let strict = RebalanceConfig {
            after_rounds: 1,
            with_prefetch: false,
            min_gain_bytes: 10.0,
            gain_horizon_rounds: 1e18,
            ..RebalanceConfig::default()
        };
        let issued = plan_and_post(shared, &tcm, &strict);
        // Reuniting 0&1 clears the bar; reuniting 2&3 (gain 0.5) does not.
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|m| m.gain_bytes >= 10.0));
        let directives = shared.directives.read();
        let posted = directives.iter().filter(|d| d.is_some()).count();
        assert_eq!(posted, issued.len());
        // Healthy-run directives carry the live epoch (0: no restore happened).
        assert!(directives.iter().flatten().all(|d| d.epoch == 0));
    }

    #[test]
    fn sticky_cost_vetoes_marginal_migrations() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);

        // Every thread carries a huge sticky footprint: the one-time transfer cannot
        // be amortized within the horizon.
        *shared.footprints.write() = vec![1e9; 4];
        let cfg = RebalanceConfig {
            after_rounds: 1,
            with_prefetch: false,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 2.0, // gain 100 × 2 « 1e9
            ..RebalanceConfig::default()
        };
        assert!(plan_and_post(shared, &tcm, &cfg).is_empty());

        // With light footprints the same plan goes through.
        *shared.footprints.write() = vec![50.0; 4];
        shared.directives.write().iter_mut().for_each(|d| *d = None);
        let issued = plan_and_post(shared, &tcm, &cfg);
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|m| m.sticky_cost_bytes == 50.0));
    }

    #[test]
    fn no_directives_for_an_already_good_placement() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 100.0);
        let issued = plan_and_post(cluster.shared(), &tcm, &RebalanceConfig::default());
        assert!(issued.is_empty(), "{issued:?}");
    }

    #[test]
    fn plan_epoch_refines_the_live_placement_and_stamps_cooldowns() {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(1), NodeId(1), NodeId(0)])
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();
        let mut tcm = Tcm::new(4);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 100.0);

        let cfg = RebalanceConfig {
            every_rounds: Some(2),
            cooldown_rounds: 4,
            ..RebalanceConfig::default()
        };
        let mut last_moved = vec![None; 4];
        let plan = plan_epoch(shared, &tcm, &cfg, 5, &mut last_moved);
        assert!(!plan.issued.is_empty(), "a split-clique placement must improve");
        assert!(plan.intra_after > plan.intra_before);
        for m in &plan.issued {
            assert_eq!(last_moved[m.thread.index()], Some(5), "cooldown stamped");
            let d = shared.directives.read()[m.thread.index()];
            assert_eq!(d, Some(Directive { dest: m.to, epoch: 0 }));
        }

        // Apply the migrations, then present a correlation view whose only repair
        // would move a just-migrated thread again: the cooldown must veto it.
        {
            let mut placement = shared.placement.write();
            for m in &plan.issued {
                placement[m.thread.index()] = m.to;
            }
        }
        shared.directives.write().iter_mut().for_each(|d| *d = None);
        assert_eq!(plan.issued.len(), 2, "the repair is one pairwise exchange");
        let (mover, other) = (plan.issued[0].thread, plan.issued[1].thread);
        let mut flipped = Tcm::new(4);
        flipped.add_pair(mover, other, 100.0);
        let again = plan_epoch(shared, &flipped, &cfg, 6, &mut last_moved);
        assert!(again.issued.is_empty(), "{:?}", again.issued);
        assert!(again.vetoed_cooldown > 0, "the bounce is attributed to hysteresis");
    }

    #[test]
    fn plan_epoch_budget_caps_committed_bytes() {
        // Four cliques, every one split across the two (exactly full) nodes: fixing
        // each takes one pairwise exchange of 2 × 60 = 120 bytes. A 150-byte budget
        // admits the first exchange and must veto the rest.
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(8)
            .placement(
                [0u16, 1, 1, 0, 0, 1, 1, 0].iter().map(|&n| NodeId(n)).collect::<Vec<_>>(),
            )
            .profiler(ProfilerConfig::disabled())
            .build();
        let shared = cluster.shared();
        let mut tcm = Tcm::new(8);
        tcm.add_pair(ThreadId(0), ThreadId(1), 100.0);
        tcm.add_pair(ThreadId(2), ThreadId(3), 90.0);
        tcm.add_pair(ThreadId(4), ThreadId(5), 80.0);
        tcm.add_pair(ThreadId(6), ThreadId(7), 70.0);
        *shared.footprints.write() = vec![60.0; 8];

        let cfg = RebalanceConfig {
            every_rounds: Some(1),
            cooldown_rounds: 0,
            migration_budget_bytes: Some(150.0),
            gain_horizon_rounds: 10.0,
            ..RebalanceConfig::default()
        };
        let mut last_moved = vec![None; 8];
        let plan = plan_epoch(shared, &tcm, &cfg, 3, &mut last_moved);
        assert_eq!(plan.issued.len(), 2, "one exchange = two directives: {:?}", plan.issued);
        assert!(plan.vetoed_budget > 0);
        assert!(plan.planned_bytes <= 150.0);
        assert!(plan.intra_after > plan.intra_before);
    }
}
