//! # jessy-runtime — the distributed JVM runtime
//!
//! Ties the substrates together into the system of the paper's Fig. 2: a cluster of
//! worker nodes each hosting application threads over the Global Object Space, plus a
//! master node running the correlation-computing daemon, the adaptive rate controller
//! and the global load balancer.
//!
//! * [`cluster`] — building and running a simulated cluster; each application (Java)
//!   thread is a cooperatively-scheduled task of the deterministic executor
//!   (carried by a parked OS thread) holding a [`thread::JThread`] handle, so a
//!   given `(exec_seed, exec_jitter)` pair replays the whole run bit-identically.
//! * [`thread`] — the application-facing API: allocation, read/write barriers,
//!   locks/barriers (interval boundaries), stack frames, compute charging.
//! * [`master`] — the coordinator daemon: ingests OAL batches, builds the TCM in
//!   rounds, steers per-class sampling rates, broadcasts rate changes and triggers
//!   resampling walks.
//! * [`migration`] — the thread migration engine with optional sticky-set prefetching,
//!   plus the induced-cost measurement used to validate the cost model.
//! * [`balancer`] — correlation-driven thread placement (the paper's stated purpose
//!   for the profiles; Section V future work, built here as the X1 extension).
//! * [`metrics`] — the run report every benchmark table reads.


#![warn(missing_docs)]
pub mod balancer;
pub mod cluster;
pub mod dynamic;
pub mod error;
pub mod master;
pub mod metrics;
pub mod migration;
pub mod thread;

pub use balancer::{LoadBalancer, MoveFilter, PlacementPlan, RefineOutcome, RefinedMove};
pub use cluster::{Cluster, ClusterBuilder, InitCtx};
pub use dynamic::{
    Directive, IntraSample, PlacementTelemetry, PlannedMigration, RebalanceConfig,
};
pub use error::RuntimeError;
pub use master::{
    AppliedRateChange, ClassRoundState, ClosedRound, EpochOal, Ingest, MasterOutput,
    ProfilerCheckpoint, RoundScheduler, RoundTimeline, SchedulerCheckpoint, SkippedRateChange,
};
pub use metrics::{DeterministicReport, RunReport};
pub use migration::MigrationReport;
pub use thread::JThread;
