//! Typed errors of the cluster runtime.
//!
//! Construction and execution mistakes (empty clusters, bad placements, double runs)
//! and infrastructure failures (spawn errors, panicked workers) surface here instead
//! of as `panic!`/`expect` deep in the run loop. `thiserror` is unavailable offline,
//! so the impls are hand-written.

use std::fmt;

use jessy_core::ConfigError;
use jessy_net::NetError;

/// Everything that can go wrong building or running a [`crate::Cluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A network-layer error (empty fabric, invalid fault plan, …).
    Net(NetError),
    /// A profiler configuration field is outside its documented domain.
    Config(ConfigError),
    /// The cluster was configured with zero nodes or zero threads.
    InvalidTopology {
        /// Configured node count.
        n_nodes: usize,
        /// Configured thread count.
        n_threads: usize,
    },
    /// An explicit placement does not fit the topology.
    InvalidPlacement(String),
    /// `run` was called a second time on the same cluster.
    AlreadyRun,
    /// An OS thread could not be spawned.
    SpawnFailed(String),
    /// An application task panicked (or the cooperative task set deadlocked, in
    /// which case the executor poisons every task and the first one is named).
    TaskPanicked {
        /// Index of the panicked application thread.
        thread: usize,
    },
    /// The master correlation daemon panicked.
    MasterPanicked,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Net(e) => write!(f, "network error: {e}"),
            RuntimeError::Config(e) => write!(f, "invalid profiler config: {e}"),
            RuntimeError::InvalidTopology { n_nodes, n_threads } => write!(
                f,
                "cluster needs at least one node and one thread (got {n_nodes} nodes, {n_threads} threads)"
            ),
            RuntimeError::InvalidPlacement(why) => write!(f, "invalid placement: {why}"),
            RuntimeError::AlreadyRun => write!(f, "Cluster::run may only be called once"),
            RuntimeError::SpawnFailed(what) => write!(f, "failed to spawn {what}"),
            RuntimeError::TaskPanicked { thread } => {
                write!(f, "application thread {thread} panicked")
            }
            RuntimeError::MasterPanicked => write!(f, "master daemon panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Net(e) => Some(e),
            RuntimeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for RuntimeError {
    fn from(e: NetError) -> Self {
        RuntimeError::Net(e)
    }
}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::from(NetError::EmptyFabric);
        assert!(e.to_string().contains("at least one node"));
        assert!(std::error::Error::source(&e).is_some());
        let e = RuntimeError::TaskPanicked { thread: 3 };
        assert!(e.to_string().contains("thread 3"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
