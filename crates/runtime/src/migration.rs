//! Thread migration machinery (Section III).
//!
//! The *direct* cost of a migration is the packed thread context (the Java stack); the
//! *indirect* cost is the train of remote object faults the thread suffers after
//! landing, which is exactly what the sticky set predicts and sticky-set prefetching
//! hides. [`MigrationReport`] records both; [`count_would_fault`] measures ground
//! truth — how many of a set of objects would actually fault at a node — which the
//! tests use to validate the cost model against reality.

use serde::{Deserialize, Serialize};

use jessy_core::sticky::resolution::Resolution;
use jessy_gos::{AccessState, Gos, ObjectId, ThreadSpace};
use jessy_net::{NodeId, SimNanos, ThreadId};

/// What one thread migration moved and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The migrated thread.
    pub thread: ThreadId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Thread context (stack) bytes shipped — the direct cost.
    pub ctx_bytes: usize,
    /// Objects prefetched alongside (0 without prefetching).
    pub prefetched_objects: usize,
    /// Prefetched payload bytes.
    pub prefetch_bytes: usize,
    /// Sticky-set object homes relocated to the destination alongside the thread
    /// (the home-migration companion optimization; 0 when disabled).
    pub homes_migrated: usize,
    /// Simulated nanoseconds the migration itself took.
    pub sim_cost_ns: SimNanos,
    /// The sticky-set resolution, when prefetching was requested.
    pub resolution: Option<Resolution>,
}

impl MigrationReport {
    /// Total bytes moved by the migration.
    pub fn total_bytes(&self) -> usize {
        self.ctx_bytes + self.prefetch_bytes
    }
}

/// Ground truth for the sticky-set cost model: how many of `objs` would take a remote
/// fault if the owner of `space` (running on `node`) accessed them right now (no
/// entry in the thread's arena, or an invalid one).
pub fn count_would_fault(
    gos: &Gos,
    space: &ThreadSpace,
    node: NodeId,
    objs: impl IntoIterator<Item = ObjectId>,
) -> usize {
    objs.into_iter()
        .filter(|&obj| {
            if gos.object(obj).home() == node {
                return false;
            }
            !matches!(
                space.access_state(obj),
                Some(AccessState::Valid) | Some(AccessState::FalseInvalid)
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_gos::{CostModel, GosConfig};
    use jessy_net::{ClockBoard, LatencyModel};

    #[test]
    fn count_would_fault_distinguishes_states() {
        let gos = Gos::new(GosConfig {
            n_nodes: 2,
            n_threads: 4,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let mut space = ThreadSpace::new(ThreadId(0));
        let class = gos.classes().register_scalar("X", 1);
        let home0 = gos.alloc_scalar(NodeId(0), class, &clock, None); // homed at target
        let cached = gos.alloc_scalar(NodeId(1), class, &clock, None);
        let cold = gos.alloc_scalar(NodeId(1), class, &clock, None);
        gos.read(&mut space, NodeId(0), cached.id, &clock, |_| {}); // valid cache at node 0

        let faults = count_would_fault(&gos, &space, NodeId(0), [home0.id, cached.id, cold.id]);
        assert_eq!(faults, 1, "only the cold remote object faults");
    }

    #[test]
    fn prefetch_eliminates_predicted_faults() {
        let gos = Gos::new(GosConfig {
            n_nodes: 2,
            n_threads: 4,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let mut space = ThreadSpace::new(ThreadId(0));
        let class = gos.classes().register_scalar("X", 2);
        let objs: Vec<ObjectId> = (0..5)
            .map(|_| gos.alloc_scalar(NodeId(1), class, &clock, None).id)
            .collect();
        assert_eq!(count_would_fault(&gos, &space, NodeId(0), objs.iter().copied()), 5);
        let bytes = gos.prefetch_into(&mut space, NodeId(0), objs.iter().copied(), &clock);
        assert_eq!(bytes, 5 * (16 + 16), "payload + object header each");
        assert_eq!(count_would_fault(&gos, &space, NodeId(0), objs.iter().copied()), 0);
    }
}
