//! Cluster construction and execution.
//!
//! A [`Cluster`] is the whole simulated DJVM: the GOS, the clock board, the shared
//! profiler state, the master daemon and a thread→node placement. Usage:
//!
//! ```
//! use jessy_runtime::Cluster;
//! use jessy_core::ProfilerConfig;
//!
//! let mut cluster = Cluster::builder()
//!     .nodes(2)
//!     .threads(4)
//!     .profiler(ProfilerConfig::default())
//!     .build();
//! // Set up classes and shared data from the init context…
//! let class = cluster.init(|ctx| {
//!     let c = ctx.register_scalar_class("Counter", 1);
//!     for node in 0..2 {
//!         ctx.alloc_scalar_at(jessy_net::NodeId(node), c);
//!     }
//!     c
//! });
//! // …then run one closure per application thread.
//! cluster.run(move |jt| {
//!     jt.read(jessy_gos::ObjectId(jt.thread_id().0 % 2), |_| {});
//!     jt.barrier();
//! });
//! let report = cluster.report();
//! assert_eq!(report.n_threads, 4);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use jessy_core::{ProfilerConfig, ProfilerShared, ThreadProfiler};
use jessy_gos::protocol::ConsistencyModel;
use jessy_gos::{ClassId, CostModel, Gos, GosConfig, LockId, ObjectCore, ObjectId, ThreadSpace};
use jessy_obs::{EventKind, TraceSink};
use jessy_net::mailbox::MailboxSender;
use jessy_net::{
    ClockBoard, ClockHandle, DetExecutor, FaultPlan, LatencyModel, Mailbox, MsgClass, NodeId,
    ThreadId, POISON_MSG,
};
use jessy_stack::{MethodId, MethodRegistry};

use crate::dynamic::{Directive, RebalanceConfig};
use crate::error::RuntimeError;
use crate::master::{EpochOal, MasterDaemon, MasterOutput};
use crate::metrics::RunReport;
use crate::migration::MigrationReport;
use crate::thread::JThread;

/// State shared by every thread of the cluster.
pub struct ClusterShared {
    /// The Global Object Space.
    pub gos: Gos,
    /// Simulated clocks: indices `0..n_threads` are application threads; index
    /// `n_threads` is the master/init clock.
    pub board: Arc<ClockBoard>,
    /// Shared profiler state (gap table, counters).
    pub prof: Arc<ProfilerShared>,
    /// Method layouts for Java stacks.
    pub methods: MethodRegistry,
    /// Sender half of the master's OAL mailbox. OALs travel epoch-stamped so a
    /// restored master can fence stale duplicates (DESIGN.md §12).
    pub oal_tx: MailboxSender<EpochOal>,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Number of application threads.
    pub n_threads: usize,
    /// Current thread→node placement (updated by migrations).
    pub placement: RwLock<Vec<NodeId>>,
    /// Parked single-writer access arenas, one per thread. A [`JThread`] checks its
    /// arena out on construction and parks it back on drop; while a thread runs, its
    /// slot is `None`. The mutex only guards checkout/park — accesses themselves go
    /// through the `&mut` the owning `JThread` holds.
    pub spaces: Vec<parking_lot::Mutex<Option<ThreadSpace>>>,
    /// Per-thread migration directives issued by the dynamic balancer; each thread
    /// honours its slot at its next barrier (a safe point) and clears it. A
    /// directive whose epoch is stale by then is fenced instead of applied.
    pub directives: RwLock<Vec<Option<Directive>>>,
    /// Directives dropped at barriers for carrying a stale master epoch.
    pub fenced_directives: AtomicU64,
    /// Dynamic-rebalancing configuration, if enabled.
    pub rebalance: Option<RebalanceConfig>,
    /// Log of every thread migration performed during the run.
    pub migration_log: parking_lot::Mutex<Vec<MigrationReport>>,
    /// Latest per-thread sticky-set footprint totals (bytes), published at interval
    /// close when footprinting is on — the *cost* side of the balancer's
    /// migration-profitability test.
    pub footprints: RwLock<Vec<f64>>,
    /// Set when application threads have all finished (stops the master daemon).
    pub done: AtomicBool,
    /// OAL posts that failed because the master's mailbox was gone (threads keep
    /// running — losing profiling data must never stop the application).
    pub oal_post_failures: AtomicU64,
    /// The `(thread, interval)` pairs whose OALs were lost to failed posts — the
    /// data behind [`crate::RunReport::lost_oals`], so the loss reaches coverage
    /// accounting instead of dying as a bare counter.
    pub lost_oals: parking_lot::Mutex<Vec<(u32, u64)>>,
    /// The `(thread, interval)` pairs whose OAL batch identity was shed under
    /// mailbox backpressure (dropped outright, or merged away into a younger
    /// batch) — folded into `adjusted_round_coverage` exactly like `lost_oals`,
    /// so no shed is ever silent.
    pub shed_oals: parking_lot::Mutex<Vec<(u32, u64)>>,
    /// Batches shed by `ShedPolicy::DropOldestRound`.
    pub sheds_dropped: AtomicU64,
    /// Batches merged away by `ShedPolicy::MergeBatches`.
    pub sheds_merged: AtomicU64,
    /// Batches merged-and-summarized by `ShedPolicy::SummaryOnly`.
    pub sheds_summarized: AtomicU64,
    /// The observability journal, if tracing is enabled. Runtime-layer events
    /// funnel through [`ClusterShared::emit_event`]; the GOS and fabric hold
    /// their own clones installed at build time.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// The master's current recovery epoch, bumped on every restore and read by
    /// worker threads when stamping outgoing OAL batches.
    pub master_epoch: AtomicU64,
    /// Rejoin handshakes performed by threads of restarted nodes.
    pub rejoins: AtomicU64,
    /// The deterministic cooperative executor that carries the run: tasks
    /// `0..n_threads` are the application threads, task `n_threads` is the master
    /// daemon. At most one task executes at any instant, ordered by virtual
    /// clock, so a given `(exec_seed, exec_jitter)` pair replays bit-identically.
    pub exec: Arc<DetExecutor>,
}

impl ClusterShared {
    /// The master/init clock handle.
    pub fn master_clock(&self) -> ClockHandle {
        self.board.handle(ThreadId(self.n_threads as u32))
    }

    /// The executor task id of the master daemon (one past the worker tasks).
    pub fn master_task(&self) -> usize {
        self.n_threads
    }

    /// Emit a journal event stamped with `clock`'s current simulated time and
    /// thread index. A single never-taken branch when tracing is off.
    pub fn emit_event(&self, clock: &ClockHandle, kind: EventKind) {
        if let Some(sink) = &self.trace {
            sink.emit(clock.now(), clock.thread().0, kind);
        }
    }

    /// Current node of a thread.
    pub fn node_of(&self, thread: ThreadId) -> NodeId {
        self.placement.read()[thread.index()]
    }

    /// Run `f` over a thread's parked access arena (post-run inspection).
    ///
    /// # Panics
    /// If the thread's arena is checked out (its `JThread` is still alive).
    pub fn with_space<R>(&self, thread: ThreadId, f: impl FnOnce(&ThreadSpace) -> R) -> R {
        let guard = self.spaces[thread.index()].lock();
        let space = guard
            .as_ref()
            .expect("thread space is checked out (JThread still alive)");
        f(space)
    }
}

/// Builder for a [`Cluster`].
#[derive(Clone)]
pub struct ClusterBuilder {
    n_nodes: usize,
    n_threads: usize,
    latency: LatencyModel,
    costs: CostModel,
    profiler: ProfilerConfig,
    placement: Option<Vec<NodeId>>,
    rebalance: Option<RebalanceConfig>,
    prefetch_depth: u32,
    consistency: ConsistencyModel,
    faults: Option<FaultPlan>,
    trace: Option<Arc<dyn TraceSink>>,
    exec_seed: u64,
    exec_jitter_ns: u64,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("n_nodes", &self.n_nodes)
            .field("n_threads", &self.n_threads)
            .field("latency", &self.latency)
            .field("costs", &self.costs)
            .field("profiler", &self.profiler)
            .field("placement", &self.placement)
            .field("rebalance", &self.rebalance)
            .field("prefetch_depth", &self.prefetch_depth)
            .field("consistency", &self.consistency)
            .field("faults", &self.faults)
            .field("traced", &self.trace.is_some())
            .field("exec_seed", &self.exec_seed)
            .field("exec_jitter_ns", &self.exec_jitter_ns)
            .finish()
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            n_nodes: 8,
            n_threads: 8,
            latency: LatencyModel::fast_ethernet(),
            costs: CostModel::pentium4_2ghz(),
            profiler: ProfilerConfig::disabled(),
            placement: None,
            rebalance: None,
            prefetch_depth: 0,
            consistency: ConsistencyModel::GlobalHlrc,
            faults: None,
            trace: None,
            exec_seed: 0,
            exec_jitter_ns: 0,
        }
    }
}

impl ClusterBuilder {
    /// Number of nodes (default 8, the paper's testbed).
    pub fn nodes(mut self, n: usize) -> Self {
        self.n_nodes = n;
        self
    }

    /// Number of application threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.n_threads = n;
        self
    }

    /// Network model (default Fast Ethernet).
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// CPU cost model (default 2 GHz Pentium 4).
    pub fn costs(mut self, c: CostModel) -> Self {
        self.costs = c;
        self
    }

    /// Profiler configuration (default: everything off).
    pub fn profiler(mut self, p: ProfilerConfig) -> Self {
        self.profiler = p;
        self
    }

    /// Shard the master's TCM reducer `k` ways (default 1 = centralized serial). Any
    /// value produces bit-identical maps; values > 1 let large rounds close on
    /// parallel OS threads.
    pub fn tcm_shards(mut self, k: usize) -> Self {
        self.profiler.tcm_shards = k.max(1);
        self
    }

    /// Aggregate TCM partials up a k-ary fabric tree instead of shipping raw
    /// per-thread OALs to a flat coordinator (0 = flat, the default; values >= 2
    /// enable per-node pre-reduction; 1 is rejected by validation). Dense-backend
    /// tree runs are bit-identical to flat runs' maps.
    pub fn tcm_tree_fanout(mut self, fanout: usize) -> Self {
        self.profiler.tcm_tree_fanout = fanout;
        self
    }

    /// Backend for the master's cumulative pair state (`TcmBackend::Sketch`
    /// requires tree mode; see `ProfilerConfig::tcm_backend`).
    pub fn tcm_backend(mut self, backend: jessy_core::TcmBackend) -> Self {
        self.profiler.tcm_backend = backend;
        self
    }

    /// Maintain a streaming view of the `k` hottest correlated pairs, exported
    /// as `MasterOutput::top_pairs` (0 disables, the default).
    pub fn tcm_top_k(mut self, k: usize) -> Self {
        self.profiler.tcm_top_k = k;
        self
    }

    /// Bound the profiler's own cost to this fraction of charged compute
    /// (e.g. `0.02` = 2%): over-budget rounds walk the degradation ladder
    /// (coarsen rates → merge rounds → summary-only OALs) instead of refining.
    /// Requires an adaptive profiler configuration (`adaptive_threshold`).
    pub fn overhead_budget(mut self, fraction: f64) -> Self {
        self.profiler.overhead_budget = Some(fraction);
        self
    }

    /// Bound the master's OAL mailbox to `cap` queued batches; senders that find
    /// it full queue per-thread (same bound) and shed per the configured
    /// [`ShedPolicy`](jessy_core::ShedPolicy). Pair with
    /// `round_deadline_intervals` so rounds missing shed batches still close.
    pub fn oal_mailbox_capacity(mut self, cap: usize) -> Self {
        self.profiler.oal_mailbox_capacity = Some(cap);
        self
    }

    /// What threads do with pending OAL batches under mailbox backpressure
    /// (default: drop the oldest). Ignored without a mailbox capacity.
    pub fn shed_policy(mut self, policy: jessy_core::ShedPolicy) -> Self {
        self.profiler.shed_policy = policy;
        self
    }

    /// Demote a node to straggler when the EWMA of its per-round progress
    /// deficit (intervals advanced behind the fastest-progressing node between
    /// round closes) exceeds this threshold: its unreported intervals are
    /// prorated out of round coverage (a soft quarantine) until the EWMA
    /// recovers below half the threshold. Gray-failure tolerance: a merely-slow
    /// node degrades accuracy measurably but never wedges a round.
    pub fn straggler_lag(mut self, intervals: f64) -> Self {
        self.profiler.straggler_lag_intervals = Some(intervals);
        self
    }

    /// Explicit initial thread→node placement (default: block distribution, matching
    /// how SPLASH-2 style workloads are usually laid out: thread i on node
    /// i·K/N).
    pub fn placement(mut self, p: Vec<NodeId>) -> Self {
        self.placement = Some(p);
        self
    }

    /// Connectivity-based object prefetching depth (0 disables; the paper's runs have
    /// "optimizations of object prefetching and home migration … enabled").
    pub fn prefetch_depth(mut self, depth: u32) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Notice-scoping discipline: LRC-style global history (default) or scope
    /// consistency (per-lock notice histories, as in ScC).
    pub fn consistency(mut self, c: ConsistencyModel) -> Self {
        self.consistency = c;
        self
    }

    /// Enable the dynamic load balancer: after the configured number of TCM rounds the
    /// master plans a placement from the recovered correlation map and issues
    /// per-thread migration directives, honoured at the threads' next barriers.
    /// Requires a profiler configuration with correlation tracking on.
    pub fn rebalance(mut self, r: RebalanceConfig) -> Self {
        self.rebalance = Some(r);
        self
    }

    /// Inject network faults according to `plan` (drops, duplicates, delay spikes,
    /// node stalls — see [`FaultPlan`]). OAL batches to the master travel through a
    /// lossy sender sharing the fabric's injector, so one plan governs all traffic.
    /// A plan with every probability zero behaves bit-identically to no plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach an observability sink: every layer (fabric, GOS, profiler rounds,
    /// master daemon) journals its structured events there, stamped with simulated
    /// time. Pass a [`jessy_obs::JournalSink`] and keep a clone to export the
    /// journal after the run. When unset (the default), no emission site is ever
    /// reached and the hot paths cost exactly what they did before.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Seed of the deterministic executor's scheduling jitter (default 0). Only
    /// observable when [`ClusterBuilder::exec_jitter`] is nonzero.
    pub fn exec_seed(mut self, seed: u64) -> Self {
        self.exec_seed = seed;
        self
    }

    /// Scheduling jitter of the deterministic executor, in simulated nanoseconds
    /// (default 0 = pure min-clock order). A nonzero jitter perturbs each
    /// scheduling decision by a seeded hash, so `(seed, jitter)` selects one
    /// reproducible interleaving out of many — useful for schedule-space
    /// exploration without giving up replayability.
    pub fn exec_jitter(mut self, jitter_ns: u64) -> Self {
        self.exec_jitter_ns = jitter_ns;
        self
    }

    /// Build the cluster.
    ///
    /// # Panics
    /// On an invalid configuration; use [`ClusterBuilder::try_build`] to handle that
    /// as a typed error.
    pub fn build(self) -> Cluster {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the cluster, surfacing configuration mistakes as a [`RuntimeError`].
    pub fn try_build(self) -> Result<Cluster, RuntimeError> {
        if self.n_nodes == 0 || self.n_threads == 0 {
            return Err(RuntimeError::InvalidTopology {
                n_nodes: self.n_nodes,
                n_threads: self.n_threads,
            });
        }
        let placement = self.placement.unwrap_or_else(|| {
            // Block placement: contiguous groups of threads per node.
            (0..self.n_threads)
                .map(|t| NodeId((t * self.n_nodes / self.n_threads) as u16))
                .collect()
        });
        if placement.len() != self.n_threads {
            return Err(RuntimeError::InvalidPlacement(format!(
                "placement lists {} threads, cluster has {}",
                placement.len(),
                self.n_threads
            )));
        }
        if let Some(bad) = placement.iter().find(|n| n.index() >= self.n_nodes) {
            return Err(RuntimeError::InvalidPlacement(format!(
                "thread placed on {bad}, but the cluster has {} nodes",
                self.n_nodes
            )));
        }

        // Validate the fault plan and profiler config up front so a malformed
        // field is reported with the offending name/value instead of surfacing as
        // a mid-run anomaly (or a panic deep inside sticky-set resolution).
        if let Some(plan) = &self.faults {
            plan.validate()?;
            plan.validate_bounds(self.n_nodes)?;
        }
        self.profiler.validate()?;

        let mut gos = Gos::try_new(GosConfig {
            n_nodes: self.n_nodes,
            n_threads: self.n_threads,
            latency: self.latency,
            costs: self.costs,
            prefetch_depth: self.prefetch_depth,
            consistency: self.consistency,
            faults: self.faults,
        })?;
        if let Some(sink) = &self.trace {
            gos.set_trace_sink(Arc::clone(sink));
        }
        // One task per application thread plus the master daemon. The executor is
        // inert until `run` registers the tasks; non-task callers (init, adopted
        // threads) fall through to the OS-thread sync paths.
        let exec = DetExecutor::new(self.n_threads + 1, self.exec_seed, self.exec_jitter_ns);
        // On equal virtual time the master daemon runs first, so mail is serviced
        // promptly even under cost models that never advance the clocks.
        exec.set_priority(self.n_threads, 0);
        gos.set_executor(Arc::clone(&exec));
        let board = ClockBoard::new(self.n_threads + 1);
        // A configured capacity bounds the master's OAL queue; senders that find
        // it full queue per-thread and shed per `shed_policy`. `None` keeps the
        // legacy unbounded mailbox (and the legacy direct-post path) unchanged.
        let mailbox = match self.profiler.oal_mailbox_capacity {
            Some(cap) => Mailbox::bounded(NodeId::MASTER, cap),
            None => Mailbox::new(NodeId::MASTER),
        };
        // With faults on, OAL delivery goes through a lossy sender sharing the
        // fabric's injector (fabric accounting stays separate: bytes are spent on the
        // wire whether or not the master ever sees them).
        let oal_tx = match gos.fabric().injector() {
            Some(inj) => mailbox.sender_with_faults(Arc::clone(inj), MsgClass::OalBatch),
            None => mailbox.sender(),
        };
        let shared = Arc::new(ClusterShared {
            gos,
            board,
            prof: ProfilerShared::new(self.profiler),
            methods: MethodRegistry::new(),
            oal_tx,
            n_nodes: self.n_nodes,
            n_threads: self.n_threads,
            placement: RwLock::new(placement),
            spaces: (0..self.n_threads)
                .map(|t| parking_lot::Mutex::new(Some(ThreadSpace::new(ThreadId(t as u32)))))
                .collect(),
            directives: RwLock::new(vec![None; self.n_threads]),
            fenced_directives: AtomicU64::new(0),
            rebalance: self.rebalance,
            migration_log: parking_lot::Mutex::new(Vec::new()),
            footprints: RwLock::new(vec![0.0; self.n_threads]),
            done: AtomicBool::new(false),
            oal_post_failures: AtomicU64::new(0),
            lost_oals: parking_lot::Mutex::new(Vec::new()),
            shed_oals: parking_lot::Mutex::new(Vec::new()),
            sheds_dropped: AtomicU64::new(0),
            sheds_merged: AtomicU64::new(0),
            sheds_summarized: AtomicU64::new(0),
            trace: self.trace,
            master_epoch: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            exec,
        });
        Ok(Cluster {
            shared,
            mailbox: Some(mailbox),
            master_out: None,
            run_wall_ns: 0,
        })
    }
}

/// Context for pre-run setup: class registration and shared-data allocation with
/// explicit home placement. Costs are charged to the master clock and excluded from
/// the run's execution time (clocks reset when the run starts).
pub struct InitCtx<'a> {
    shared: &'a ClusterShared,
    clock: ClockHandle,
}

impl InitCtx<'_> {
    /// Register a scalar class of `words` 8-byte words (also registers it for
    /// sampling at the configured initial rate).
    pub fn register_scalar_class(&self, name: &str, words: u32) -> ClassId {
        let class = self.shared.gos.classes().register_scalar(name, words);
        self.shared.prof.register_class(class, words.max(1) as usize * 8);
        class
    }

    /// Register an array class of `elem_words` words per element.
    pub fn register_array_class(&self, name: &str, elem_words: u32) -> ClassId {
        let class = self.shared.gos.classes().register_array(name, elem_words);
        self.shared
            .prof
            .register_class(class, elem_words.max(1) as usize * 8);
        class
    }

    /// Register a method layout for Java stacks.
    pub fn register_method(&self, name: &str, n_slots: usize) -> MethodId {
        self.shared.methods.register(name, n_slots)
    }

    /// Allocate a zeroed scalar instance homed at `node`.
    pub fn alloc_scalar_at(&self, node: NodeId, class: ClassId) -> Arc<ObjectCore> {
        let core = self.shared.gos.alloc_scalar(node, class, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Allocate an initialized scalar instance homed at `node`.
    pub fn alloc_scalar_init(&self, node: NodeId, class: ClassId, init: &[f64]) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_scalar(node, class, &self.clock, Some(init));
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Allocate a zeroed array of `len_elems` elements homed at `node`.
    pub fn alloc_array_at(&self, node: NodeId, class: ClassId, len_elems: u32) -> Arc<ObjectCore> {
        let core = self
            .shared
            .gos
            .alloc_array(node, class, len_elems, &self.clock, None);
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Allocate an initialized array homed at `node`.
    pub fn alloc_array_init(
        &self,
        node: NodeId,
        class: ClassId,
        init: &[f64],
    ) -> Arc<ObjectCore> {
        let core =
            self.shared
                .gos
                .alloc_array(node, class, init.len() as u32, &self.clock, Some(init));
        self.shared.prof.tag_new_object(&core);
        core
    }

    /// Register a distributed lock.
    pub fn register_lock(&self) -> LockId {
        self.shared.gos.register_lock()
    }

    /// Add a reference edge `from → to` in the object graph.
    pub fn add_ref(&self, from: ObjectId, to: ObjectId) {
        self.shared.gos.object(from).add_ref(to);
    }

    /// Direct access to the GOS (advanced setup).
    pub fn gos(&self) -> &Gos {
        &self.shared.gos
    }
}

/// A simulated DJVM cluster.
pub struct Cluster {
    shared: Arc<ClusterShared>,
    mailbox: Option<Mailbox<EpochOal>>,
    master_out: Option<MasterOutput>,
    run_wall_ns: u64,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Shared state (for advanced inspection).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// Run setup code with an [`InitCtx`].
    pub fn init<R>(&self, f: impl FnOnce(&mut InitCtx<'_>) -> R) -> R {
        let mut ctx = InitCtx {
            shared: &self.shared,
            clock: self.shared.master_clock(),
        };
        f(&mut ctx)
    }

    /// Run `body` once per application thread (each a cooperatively-scheduled task
    /// of the deterministic executor, carried by its own parked OS thread), with
    /// the master daemon pumping OALs as task `n_threads` of the same schedule.
    /// Clocks are reset first, so the reported simulated execution time covers
    /// exactly this parallel phase.
    ///
    /// # Panics
    /// If called twice, or if any application thread panics; use
    /// [`Cluster::try_run`] to handle those as typed errors.
    pub fn run<F>(&mut self, body: F)
    where
        F: Fn(&mut JThread) + Send + Sync + 'static,
    {
        self.try_run(body).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the cluster, surfacing a double run, spawn failures and panicked threads
    /// as a [`RuntimeError`]. Even when workers panic, the master is joined first so
    /// the partial [`MasterOutput`] stays available for post-mortem inspection.
    pub fn try_run<F>(&mut self, body: F) -> Result<(), RuntimeError>
    where
        F: Fn(&mut JThread) + Send + Sync + 'static,
    {
        let mailbox = self.mailbox.take().ok_or(RuntimeError::AlreadyRun)?;
        // Registration and setup allocation are done: snapshot the object table so
        // the access path resolves objects with a plain indexed read (mid-run
        // allocations still work — they land past the frozen prefix).
        self.shared.gos.freeze_object_table();
        self.shared.board.reset();
        self.shared.done.store(false, Ordering::Release);

        let wall_start = Instant::now();
        let master = MasterDaemon::spawn(Arc::clone(&self.shared), mailbox)?;

        // Carrier threads: each registers its task with the deterministic executor
        // (dispatch begins once all have, so spawn order is unobservable), runs the
        // body under `catch_unwind` so the task can always be retired, and re-raises
        // any panic for classification at join time.
        let body = Arc::new(body);
        let mut workers = Vec::with_capacity(self.shared.n_threads);
        let mut spawn_error = None;
        for t in 0..self.shared.n_threads {
            let shared = Arc::clone(&self.shared);
            let body = Arc::clone(&body);
            let spawned = std::thread::Builder::new()
                .name(format!("jthread-{t}"))
                .stack_size(512 * 1024)
                .spawn(move || {
                    let exec = Arc::clone(&shared.exec);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        exec.register_current(t);
                        let thread = ThreadId(t as u32);
                        let mut jt = JThread::new(shared, thread);
                        body(&mut jt);
                    }));
                    exec.finish(t);
                    if let Err(payload) = result {
                        std::panic::resume_unwind(payload);
                    }
                });
            match spawned {
                Ok(w) => workers.push(w),
                Err(e) => {
                    spawn_error = Some(RuntimeError::SpawnFailed(format!("worker {t}: {e}")));
                    // Registration can never complete: poison the executor so the
                    // already-registered tasks (and the master) abort instead of
                    // parking forever.
                    self.shared.exec.poison();
                    break;
                }
            }
        }

        // Panic classification: a task killed by executor poisoning (payload ==
        // POISON_MSG) is a cascade, not a root cause — report the first *primary*
        // panic if there is one, and fall back to the first cascade only when the
        // whole task set deadlocked.
        let mut primary = None;
        let mut first_cascade = None;
        for (t, w) in workers.into_iter().enumerate() {
            if let Err(payload) = w.join() {
                let is_poison = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    == Some(POISON_MSG);
                if is_poison {
                    first_cascade.get_or_insert(t);
                } else {
                    primary.get_or_insert(t);
                }
            }
        }
        self.shared.done.store(true, Ordering::Release);
        self.shared.exec.unblock(self.shared.master_task());
        let master_out = master.join();
        self.run_wall_ns = wall_start.elapsed().as_nanos() as u64;
        // Keep whatever the master managed to produce, then report the most
        // fundamental failure.
        let master_err = match master_out {
            Ok(out) => {
                self.master_out = Some(out);
                None
            }
            Err(e) => Some(e),
        };
        if let Some(e) = spawn_error {
            return Err(e);
        }
        if let Some(thread) = primary {
            return Err(RuntimeError::TaskPanicked { thread });
        }
        if let Some(e) = master_err {
            if let Some(thread) = first_cascade {
                // The master died of the same poisoning — the worker-side report
                // (which names a thread) is the more useful one.
                if e == RuntimeError::MasterPanicked && self.shared.exec.is_poisoned() {
                    return Err(RuntimeError::TaskPanicked { thread });
                }
            }
            return Err(e);
        }
        if let Some(thread) = first_cascade {
            return Err(RuntimeError::TaskPanicked { thread });
        }
        Ok(())
    }

    /// The master daemon's output (TCM, rounds, rate changes) — available after
    /// [`Cluster::run`].
    pub fn master_output(&self) -> Option<&MasterOutput> {
        self.master_out.as_ref()
    }

    /// Build the run report.
    pub fn report(&self) -> RunReport {
        RunReport::gather(
            &self.shared,
            self.master_out.as_ref(),
            self.run_wall_ns,
        )
    }

    /// Per-thread profiler handle for one-off (non-`run`) driving in tests: builds a
    /// fresh [`JThread`] on the calling thread.
    pub fn adopt_thread(&self, thread: ThreadId) -> JThread {
        JThread::new(Arc::clone(&self.shared), thread)
    }
}

/// Convenience: a fresh `ThreadProfiler` for `thread` against this cluster's shared
/// profiler state.
pub fn thread_profiler(shared: &Arc<ClusterShared>, thread: ThreadId) -> ThreadProfiler {
    ThreadProfiler::new(Arc::clone(&shared.prof), thread)
}
