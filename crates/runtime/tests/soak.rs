//! Time-compressed scale soak: ten thousand simulated application threads on one
//! box. The cooperative executor carries each JThread on a parked OS carrier, so
//! the box needs carriers and stack reservations, not cores — the whole run is a
//! single token hopping through 10 001 tasks in virtual-time order.
//!
//! `#[ignore]`-gated: `verify.sh` runs it as the soak smoke
//! (`cargo test -p jessy-runtime --test soak -- --ignored`); plain `cargo test`
//! skips it.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{LatencyModel, NodeId};
use jessy_runtime::Cluster;

const N_NODES: usize = 4;
const N_THREADS: usize = 10_000;

/// 10k threads, 4 nodes, 3 profiled rounds each: the run completes, the master
/// closes rounds over the full population and the report sees every thread.
#[test]
#[ignore = "scale soak; run explicitly via verify.sh"]
fn ten_thousand_threads_complete_a_profiled_run() {
    let mut cluster = Cluster::builder()
        .nodes(N_NODES)
        .threads(N_THREADS)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::free())
        .profiler({
            let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
            config.intervals_per_round = 1;
            config.round_deadline_intervals = Some(3);
            config
        })
        .build();
    // One scalar per node; every thread reads its home node's object, so the
    // traffic that scales with the population is OAL posting and barrier control.
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..N_NODES)
            .map(|n| ctx.alloc_scalar_at(NodeId(n as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let mine = objs[jt.node().index()];
        for _ in 0..3 {
            jt.read(mine, |_| {});
            jt.barrier();
        }
    });

    let report = cluster.report();
    assert_eq!(report.n_threads, N_THREADS);
    let master = cluster.master_output().expect("master ran to completion");
    assert!(master.rounds > 0, "rounds closed at scale");
    assert!(master.tcm.total() > 0.0, "the profile saw the population");
}
