//! Chaos tests: full cluster runs under injected network faults.
//!
//! The acceptance bar of the fault-injection work: a lossy run must *complete* (no
//! deadlock), report degraded per-round coverage, and skip rate changes below the
//! coverage floor — while a zero-fault plan reproduces the fault-free run
//! bit-identically.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, LockId, ObjectId};
use jessy_net::{
    CrashWindow, FaultPlan, LatencyModel, MasterCrashWindow, NodeId, PartitionWindow, SlowWindow,
    StallWindow,
};
use jessy_runtime::Cluster;

/// CI runs this suite under a small seed matrix (`JESSY_CHAOS_SEED`); locally the
/// plan's default seed applies. Every assertion below must hold for *any* seed —
/// the matrix exists to catch seed-shaped luck, not to pick a lucky seed.
fn chaos_seed() -> u64 {
    std::env::var("JESSY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| FaultPlan::default().seed)
}

/// A workload whose round-over-round maps disagree (even rounds touch one shared
/// object, odd rounds two), so the adaptive controller has refinement pressure on
/// every round — which is what makes "skipped below the coverage floor" observable.
fn unstable_workload(cluster: &mut Cluster, barriers: usize) {
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for round in 0..barriers {
            jt.read(objs[0], |_| {});
            if round % 2 == 1 {
                jt.read(objs[67], |_| {});
            }
            jt.barrier();
        }
    });
}

fn chaos_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.02);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    config.min_round_coverage = 0.95;
    config
}

/// The headline acceptance test: 10% OAL drop, run completes, coverage degrades,
/// the controller skips rather than steering on garbage.
#[test]
fn lossy_oal_run_completes_and_degrades_gracefully() {
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(chaos_profiler())
        .faults(FaultPlan {
            seed: chaos_seed(),
            oal_drop: 0.10,
            ..FaultPlan::default()
        })
        .build();
    unstable_workload(&mut cluster, 40);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert!(master.rounds > 0, "rounds closed despite losses");
    assert!(
        report.net.faults.dropped > 0,
        "the plan must actually have dropped OAL batches: {:?}",
        report.net.faults
    );
    assert!(
        master.round_coverage.iter().any(|&c| c < 1.0),
        "dropped batches must show up as partial coverage: {:?}",
        master.round_coverage
    );
    assert!(
        master.round_coverage.iter().all(|&c| c > 0.0),
        "no round can be fully empty at a 10% drop rate: {:?}",
        master.round_coverage
    );
    assert!(
        !master.skipped_rate_changes.is_empty(),
        "rounds below the 0.95 coverage floor must skip rate steering"
    );
    for skip in &master.skipped_rate_changes {
        assert!(skip.coverage < 0.95, "skip recorded at {}", skip.coverage);
    }
    // The cumulative TCM still reflects the workload: pairs share, total mass > 0.
    assert!(master.tcm.total() > 0.0);
}

/// A zero-fault plan must be a no-op: bit-identical TCM, rounds, coverage and rate
/// decisions versus a build with no fault plan at all.
///
/// The workload is *stable* (every round identical) so the adaptive controller never
/// fires: applied rate changes take effect at real-time-dependent points in worker
/// progress, which is the one legitimately non-reproducible part of a run and not
/// what this test is about.
#[test]
fn zero_fault_plan_reproduces_the_fault_free_run() {
    let run = |faults: Option<FaultPlan>| {
        let mut builder = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::fast_ethernet())
            .costs(CostModel::free())
            .profiler(chaos_profiler());
        if let Some(plan) = faults {
            builder = builder.faults(plan);
        }
        let mut cluster = builder.build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Body", 8);
            (0..100)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<ObjectId>>()
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            for _ in 0..20 {
                jt.read(objs[0], |_| {});
                jt.read(objs[67], |_| {});
                jt.barrier();
            }
        });
        let report = cluster.report();
        let master = cluster.master_output().expect("master ran").clone();
        (report, master)
    };
    let (base_report, base) = run(None);
    // Explicitly spell the PR 6 and PR 8 fields: empty partition and slow-window
    // schedules are part of the zero plan.
    let zero_plan = FaultPlan {
        partitions: vec![],
        slow: vec![],
        ..FaultPlan::default()
    };
    let (zero_report, zero) = run(Some(zero_plan));

    assert!(FaultPlan::default().is_zero());
    // A plan carrying any slow window is *not* zero: gray failures are faults.
    assert!(!FaultPlan {
        slow: vec![jessy_net::SlowWindow {
            node: NodeId(1),
            from_ns: 0,
            until_ns: None,
            factor: 2.0,
        }],
        ..FaultPlan::default()
    }
    .is_zero());
    // A few targeted fields first, for readable failures...
    assert_eq!(zero.tcm, base.tcm, "TCM must be bit-identical");
    assert_eq!(zero.rounds, base.rounds);
    assert_eq!(zero.round_coverage, base.round_coverage);
    assert_eq!(zero.rate_changes, base.rate_changes);
    assert_eq!(zero.skipped_rate_changes.len(), base.skipped_rate_changes.len());
    assert!(zero_report.net.faults.is_zero());
    // ...then the whole report at once. `DeterministicReport` is the host-independent
    // view (no wall-clock fields), so the two runs must serialize byte-identically —
    // this covers every counter, the full master output and the convergence timeline
    // without enumerating them field by field.
    assert_eq!(
        serde_json::to_string(&zero_report.deterministic()).expect("serialize"),
        serde_json::to_string(&base_report.deterministic()).expect("serialize"),
        "a zero-fault plan must reproduce the fault-free run bit for bit"
    );
    // PR 3 extension: a plan with empty crash vectors also schedules no recovery
    // machinery — no epochs, no restores, no fencing, no quarantine, no rejoins.
    assert_eq!(zero_report.net.faults.crash_suppressed, 0);
    assert_eq!(zero_report.net.faults.partitioned, 0);
    assert_eq!(zero_report.net.faults.oals_deferred, 0);
    for m in [&zero, &base] {
        assert_eq!(m.restores, 0);
        assert_eq!(m.replayed_oals, 0);
        assert_eq!(m.fenced_oals, 0);
        assert_eq!(m.quarantined_nodes, 0);
        assert_eq!(m.final_epoch, 0, "epoch must stay 0 without a master crash");
    }
    assert_eq!(zero.checkpoints_taken, base.checkpoints_taken);
    assert_eq!(zero_report.rejoins, 0);
    assert_eq!(base_report.rejoins, 0);
}

/// A node whose outbound traffic stalls for the whole run: its threads' OALs never
/// arrive, yet every round still closes (deadline path) with partial coverage and
/// the run terminates.
#[test]
fn stalled_node_cannot_wedge_round_close() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(2);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(2)
        .placement(vec![NodeId(0), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .faults(FaultPlan {
            stalls: vec![StallWindow {
                node: NodeId(1),
                start_msg: 0,
                end_msg: u64::MAX,
            }],
            ..FaultPlan::default()
        })
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![ctx.alloc_scalar_at(NodeId(0), class).id]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..10 {
            jt.read(objs[0], |_| {});
            jt.barrier();
        }
    });

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran");
    assert!(master.rounds > 0, "deadline must close rounds");
    assert!(master.deadline_rounds > 0, "closure came from the deadline path");
    assert!(
        master.round_coverage.iter().all(|&c| c <= 0.5 + 1e-9),
        "only the healthy node's thread can contribute: {:?}",
        master.round_coverage
    );
    assert!(report.net.faults.stalled > 0, "{:?}", report.net.faults);
}

/// Duplicated OAL batches are deduplicated at the master: the TCM and round count
/// match a clean run exactly, and the duplicates are counted.
#[test]
fn duplicated_oal_batches_are_deduplicated() {
    let run = |plan: Option<FaultPlan>| {
        let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
        config.intervals_per_round = 1;
        let mut builder = Cluster::builder()
            .nodes(2)
            .threads(2)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(config);
        if let Some(p) = plan {
            builder = builder.faults(p);
        }
        let mut cluster = builder.build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("S", 8);
            vec![ctx.alloc_scalar_at(NodeId(0), class).id]
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            for _ in 0..8 {
                jt.read(objs[0], |_| {});
                jt.barrier();
            }
        });
        let master = cluster.master_output().expect("master ran").clone();
        let faults = cluster.report().net.faults;
        (master, faults)
    };
    let (clean, _) = run(None);
    let (dup, faults) = run(Some(FaultPlan {
        seed: chaos_seed(),
        duplicate_prob: 0.5,
        ..FaultPlan::default()
    }));
    assert!(faults.duplicated > 0, "{faults:?}");
    // `faults.duplicated` also counts duplicated GOS messages; OAL duplicates are a
    // subset of it, and every one of them must have been discarded at the master.
    assert!(dup.duplicate_oals > 0, "OAL batches were duplicated");
    assert!(dup.duplicate_oals <= faults.duplicated);
    assert_eq!(dup.tcm, clean.tcm, "duplication must not inflate the map");
    assert_eq!(dup.rounds, clean.rounds);
    assert_eq!(dup.oals_ingested, clean.oals_ingested);
}

// ---------------------------------------------------------- crash-stop recovery (PR 3)

/// A *stable* workload (every round identical), shared by the recovery tests that
/// compare against an uninterrupted run bit for bit.
fn stable_run(
    profiler: ProfilerConfig,
    faults: Option<FaultPlan>,
    barriers: usize,
) -> (jessy_runtime::RunReport, jessy_runtime::MasterOutput) {
    let mut builder = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut cluster = builder.build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..barriers {
            jt.read(objs[0], |_| {});
            jt.read(objs[67], |_| {});
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    (report, master)
}

fn recovery_profiler() -> ProfilerConfig {
    let mut config = chaos_profiler();
    config.checkpoint_every_rounds = Some(3);
    config
}

/// The headline tentpole test: the master crashes mid-run and restarts; checkpoint
/// restore plus deterministic replay of the buffered backlog reproduces the
/// uninterrupted run's TCM **bit for bit** (f64 equality) when no message faults
/// dropped OALs — along with rounds, coverage and the ingest ledger.
#[test]
fn master_crash_with_restart_recovers_a_bit_identical_tcm() {
    let (_, base) = stable_run(recovery_profiler(), None, 20);
    let (report, crashed) = stable_run(
        recovery_profiler(),
        Some(FaultPlan {
            master_crashes: vec![MasterCrashWindow {
                from_interval: 8,
                until_interval: 11,
            }],
            ..FaultPlan::default()
        }),
        20,
    );

    assert_eq!(crashed.restores, 1, "exactly one crash window, one restore");
    assert_eq!(crashed.final_epoch, 1, "each restore bumps the epoch once");
    assert!(crashed.checkpoints_taken >= 1, "K=3 must have snapshotted");
    assert!(crashed.replayed_oals >= 1, "the post-checkpoint backlog replays");
    assert_eq!(crashed.tcm, base.tcm, "recovered TCM must be bit-identical");
    assert_eq!(crashed.rounds, base.rounds);
    assert_eq!(crashed.round_coverage, base.round_coverage);
    assert_eq!(crashed.oals_ingested, base.oals_ingested);
    assert_eq!(report.oal_post_failures, 0);
    assert_eq!(report.rejoins, 0, "a master crash restarts no worker node");
}

/// A master crash *without* checkpointing still recovers — the replay log then spans
/// the whole run (cold restart from round zero) and the result is still bit-identical.
#[test]
fn master_crash_without_checkpoints_replays_from_round_zero() {
    let (_, base) = stable_run(chaos_profiler(), None, 16);
    let (_, crashed) = stable_run(
        chaos_profiler(), // checkpoint_every_rounds: None
        Some(FaultPlan {
            master_crashes: vec![MasterCrashWindow {
                from_interval: 6,
                until_interval: 9,
            }],
            ..FaultPlan::default()
        }),
        16,
    );
    assert_eq!(crashed.checkpoints_taken, 0);
    assert_eq!(crashed.restores, 1);
    assert!(
        crashed.replayed_oals >= crashed.oals_ingested / 2,
        "cold restart replays the full pre-crash history: {} of {}",
        crashed.replayed_oals,
        crashed.oals_ingested
    );
    assert_eq!(crashed.tcm, base.tcm, "cold recovery must also be exact");
    assert_eq!(crashed.rounds, base.rounds);
    assert_eq!(crashed.round_coverage, base.round_coverage);
}

/// Master crash composed with a lossy network: recovery still completes (no wedge,
/// no panic), the dropped batches show up as partial round coverage, and the
/// controller skips below the floor instead of steering on loss-shaped phantoms.
#[test]
fn master_crash_composed_with_drops_degrades_by_coverage() {
    let mut config = recovery_profiler();
    config.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .faults(FaultPlan {
            seed: chaos_seed(),
            oal_drop: 0.10,
            master_crashes: vec![MasterCrashWindow {
                from_interval: 10,
                until_interval: 14,
            }],
            ..FaultPlan::default()
        })
        .build();
    unstable_workload(&mut cluster, 40);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert_eq!(master.restores, 1);
    assert!(report.net.faults.dropped > 0, "{:?}", report.net.faults);
    assert!(master.rounds > 0);
    assert!(
        master.round_coverage.iter().any(|&c| c < 1.0),
        "drops must surface as partial coverage: {:?}",
        master.round_coverage
    );
    assert!(master.tcm.total() > 0.0, "the recovered map still has mass");
}

/// A node crashes and restarts: its threads' OALs are suppressed during the window,
/// the first interval after the restart performs the rejoin handshake, and coverage
/// returns to 1.0 once the node is back.
#[test]
fn restarted_node_rejoins_and_coverage_recovers() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .faults(FaultPlan {
            node_crashes: vec![CrashWindow {
                node: NodeId(1),
                from_interval: 3,
                until_interval: Some(6),
            }],
            ..FaultPlan::default()
        })
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![ctx.alloc_scalar_at(NodeId(0), class).id]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..12 {
            jt.read(objs[0], |_| {});
            jt.barrier();
        }
    });

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran");
    // Threads 2 and 3 live on node 1: three suppressed intervals each, one rejoin
    // handshake each when the node comes back at interval 6.
    assert_eq!(report.net.faults.crash_suppressed, 6, "{:?}", report.net.faults);
    assert_eq!(report.rejoins, 2);
    // Request + reply per rejoining thread, accounted under the rejoin class.
    assert_eq!(report.net.class(jessy_net::MsgClass::Rejoin).messages, 4);
    for (r, &c) in master.round_coverage.iter().enumerate() {
        let expect = if (3..6).contains(&r) { 0.5 } else { 1.0 };
        assert_eq!(c, expect, "round {r} coverage");
    }
    assert_eq!(master.quarantined_nodes, 0, "one crash is below any threshold");
}

/// The quarantine acceptance test. Node 1 flaps (crashes at interval 1, again —
/// permanently — at interval 5) against `quarantine_after_crashes = 1`, so from
/// interval 5 its threads leave the coverage denominator. Without quarantine every
/// post-crash round sits at 0.5 coverage — below the 0.95 floor — and the adaptive
/// controller can never converge; with it, post-quarantine rounds read 1.0 and the
/// remaining cluster converges.
#[test]
fn flapping_node_is_quarantined_and_the_rest_converges() {
    let run = |quarantine: Option<u32>| {
        let mut config = chaos_profiler(); // threshold 0.02, floor 0.95, deadline 3
        config.quarantine_after_crashes = quarantine;
        let plan = FaultPlan {
            node_crashes: vec![
                CrashWindow {
                    node: NodeId(1),
                    from_interval: 1,
                    until_interval: Some(5),
                },
                CrashWindow {
                    node: NodeId(1),
                    from_interval: 5,
                    until_interval: None,
                },
            ],
            ..FaultPlan::default()
        };
        stable_run(config, Some(plan), 30)
    };
    let (_, unfenced) = run(None);
    let (report, master) = run(Some(1));

    assert_eq!(master.quarantined_nodes, 1);
    assert!(
        master.round_coverage[6..].iter().all(|&c| c == 1.0),
        "post-quarantine rounds owe nothing to the expelled node: {:?}",
        master.round_coverage
    );
    assert!(
        master.converged_classes >= 1,
        "the remaining cluster must reach the convergence criterion"
    );
    assert_eq!(
        unfenced.converged_classes, 0,
        "control: without quarantine the flapper pins every comparable round below \
         the coverage floor and convergence starves"
    );
    assert_eq!(unfenced.quarantined_nodes, 0);
    assert!(report.net.faults.crash_suppressed > 0);
}

// ---------------------------------------------------------------------- PR 6:
// network partitions. Windows are keyed by *virtual time* (unlike crash windows'
// interval ordinals): a window severs every link with exactly one endpoint in its
// island. OAL batches closed behind the cut are deferred in the node's send queue
// and flushed when the partition heals; an unhealed partition surfaces them as
// lost at thread exit. Either way the run completes — partitions degrade the
// profile, never wedge the application.

/// A workload whose reads stay home-local (thread reads the object homed at its
/// own node), so the partition is crossed only by profiling/sync traffic and the
/// severed threads' clocks keep their own pace instead of being raised to the
/// heal horizon by fetch retries.
fn home_local_workload(cluster: &mut Cluster, barriers: usize) {
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        vec![
            ctx.alloc_scalar_at(NodeId(0), class).id,
            ctx.alloc_scalar_at(NodeId(1), class).id,
        ]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let mine = objs[jt.node().index()];
        for _ in 0..barriers {
            jt.read(mine, |_| {});
            jt.barrier();
        }
    });
}

fn partitioned_cluster(heal_ns: Option<u64>) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::free())
        .profiler(chaos_profiler())
        .faults(FaultPlan {
            seed: chaos_seed(),
            partitions: vec![PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 1_000,
                heal_ns,
            }],
            ..FaultPlan::default()
        })
        .build()
}

/// Partition + heal: OALs closed behind the cut are deferred, the post-heal flush
/// delivers every one of them (nothing is lost), and round coverage recovers.
#[test]
fn healed_partition_converges_and_deferred_oals_arrive() {
    // The 40-barrier run spans ~7 ms of simulated time; the partition covers
    // roughly the first 2 ms of it.
    let mut cluster = partitioned_cluster(Some(2_000_000));
    home_local_workload(&mut cluster, 40);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert!(
        report.net.faults.oals_deferred > 0,
        "intervals closed behind the cut must defer: {:?}",
        report.net.faults
    );
    assert!(report.net.faults.partitioned > 0, "severed sends are counted");
    assert!(
        report.lost_oals.is_empty(),
        "a healed partition loses nothing: {:?}",
        report.lost_oals
    );
    assert!(master.rounds > 0);
    assert!(
        master.round_coverage.iter().any(|&c| c < 1.0),
        "deadline-closed rounds during the partition show partial coverage: {:?}",
        master.round_coverage
    );
    assert!(
        master.round_coverage.contains(&1.0),
        "post-heal rounds close complete again: {:?}",
        master.round_coverage
    );
    assert!(
        master.late_oals > 0,
        "flushed backlog lands as late arrivals for already-closed rounds"
    );
    assert!(master.tcm.total() > 0.0);
}

/// An unhealed partition degrades gracefully: every round still closes (deadline
/// path), the reachable side's profile survives, and the severed side's OALs are
/// surfaced as lost at thread exit — the run never wedges.
#[test]
fn unhealed_partition_degrades_gracefully_without_wedging() {
    let mut cluster = partitioned_cluster(None);
    home_local_workload(&mut cluster, 40);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert!(report.net.faults.oals_deferred > 0);
    assert!(report.net.faults.partitioned > 0);
    assert!(
        !report.lost_oals.is_empty(),
        "a permanent partition must surface the stuck OALs as lost"
    );
    assert!(
        report.lost_oals.iter().all(|&(t, _)| t >= 2),
        "only node 1's threads (2, 3) lose data: {:?}",
        report.lost_oals
    );
    assert!(master.rounds > 0, "deadline close keeps rounds moving");
    // The very first round may close off OALs posted before the 1 µs cut; every
    // round after it sees the reachable half only.
    assert!(
        master.round_coverage.iter().skip(1).all(|&c| c > 0.0 && c < 1.0),
        "post-cut rounds see the reachable half only: {:?}",
        master.round_coverage
    );
    assert!(master.tcm.total() > 0.0, "the reachable side's profile survives");
}

// ---------------------------------------------------------------------- PR 8:
// gray failure. A slow node is not a dead node: every message still arrives and
// every interval still closes — just late. The progress-deficit EWMA must pick
// the genuinely slow node out even when seeded OAL drops are muddying the
// watermarks, and the run must complete on prorated coverage either way.

/// Slow node plus seeded drops: the run completes, node 1 (8× service time for
/// the first stretch) is demoted, and slowness itself loses no data — the drop
/// plan is the only loss channel.
#[test]
fn slow_node_under_seeded_drops_demotes_and_completes() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(4);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .straggler_lag(1.2)
        .faults(FaultPlan {
            seed: chaos_seed(),
            oal_drop: 0.05,
            slow: vec![SlowWindow {
                node: NodeId(1),
                from_ns: 0,
                until_ns: Some(30_000),
                factor: 8.0,
            }],
            ..FaultPlan::default()
        })
        .build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        let objs = (0..4)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..4).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().index();
        for _ in 0..80 {
            jt.lock(locks[t]);
            jt.read(objs[t], |_| {});
            jt.compute(50);
            jt.unlock(locks[t]);
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion").clone();
    assert!(master.rounds > 0, "rounds keep closing under gray failure");
    assert!(
        report.net.faults.dropped > 0,
        "the seeded drop plan must actually bite: {:?}",
        report.net.faults
    );
    assert!(master.stragglers >= 1, "the 8x node must be demoted");
    assert_eq!(report.oal_post_failures, 0, "slowness itself loses nothing");
    assert!(master.oals_ingested > 0, "the profile survives on what arrives");
}

// ---------------------------------------------------------------------- PR 9:
// continuous rebalancing under chaos. The placement engine plans from the live
// profile on a cadence and posts epoch-stamped directives; every fault that can
// invalidate a plan mid-flight — a master restore bumping the epoch, a node
// crash window, a partition — must degrade into an attributable no-op, never a
// migration into a world that no longer exists, and never a wedge.

/// Threads 0&2 and 1&3 share heavily but start split across nodes: constant
/// refinement pressure, so the continuous engine has real moves to make while
/// the fault plan is chewing on the cluster.
fn split_sharers(cluster: &mut Cluster, barriers: usize) {
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![
            ctx.alloc_scalar_at(NodeId(0), class).id, // shared by threads 0 & 2
            ctx.alloc_scalar_at(NodeId(1), class).id, // shared by threads 1 & 3
        ]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let group = jt.thread_id().index() % 2;
        for _ in 0..barriers {
            jt.read(objs[group], |_| {});
            jt.barrier();
        }
    });
}

fn rebalance_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    config
}

fn continuous_rebalance() -> jessy_runtime::RebalanceConfig {
    jessy_runtime::RebalanceConfig {
        after_rounds: 1,
        every_rounds: Some(2),
        cooldown_rounds: 4,
        with_prefetch: false,
        min_gain_bytes: 1.0,
        gain_horizon_rounds: 1e18,
        migration_budget_bytes: None,
        migrate_homes: true,
    }
}

/// A directive stamped with a master epoch that never existed must be dropped at
/// the barrier — attributably: the telemetry counter, and a `DirectiveFenced`
/// journal event naming the thread and both epochs. The thread stays put.
#[test]
fn stale_directive_is_fenced_attributably() {
    let sink = jessy_obs::JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(rebalance_profiler())
        // Rebalancing armed (directives are honoured at barriers) but the
        // planner dormant: the only directive in this run is the injected one.
        .rebalance(jessy_runtime::RebalanceConfig {
            after_rounds: 1_000_000,
            every_rounds: None,
            ..continuous_rebalance()
        })
        .trace(sink.clone())
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![ctx.alloc_scalar_at(NodeId(0), class).id]
    });
    let objs = Arc::new(objs);
    let shared = Arc::clone(cluster.shared());
    cluster.run(move |jt| {
        if jt.thread_id() == jessy_net::ThreadId(0) {
            // A plan from "epoch 99" — a regime that never existed (the master
            // never restored, so the live epoch is 0).
            shared.directives.write()[0] = Some(jessy_runtime::Directive {
                dest: NodeId(1),
                epoch: 99,
            });
        }
        for _ in 0..4 {
            jt.read(objs[0], |_| {});
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert_eq!(master.placement.fenced_directives, 1, "{:?}", master.placement);
    assert_eq!(master.placement.applied_migrations, 0, "fenced, not applied");
    let shared = cluster.shared();
    assert_eq!(
        shared.placement.read()[0],
        NodeId(0),
        "the stale directive must not have moved thread 0"
    );
    let fenced: Vec<_> = sink
        .sorted_events()
        .into_iter()
        .filter_map(|e| match e.kind {
            jessy_obs::EventKind::DirectiveFenced {
                thread,
                directive_epoch,
                current_epoch,
            } => Some((thread, directive_epoch, current_epoch)),
            _ => None,
        })
        .collect();
    assert_eq!(fenced, vec![(0, 99, 0)], "one attributable fencing event");
    assert_eq!(report.rejoins, 0);
}

/// Continuous rebalancing composed with a node crash window: the engine keeps
/// planning on its cadence while node 1 is dark (deadline close keeps rounds
/// moving), its threads rejoin, and the run completes with real plans issued.
#[test]
fn continuous_rebalance_survives_a_crash_window() {
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(rebalance_profiler())
        .rebalance(continuous_rebalance())
        .faults(FaultPlan {
            seed: chaos_seed(),
            node_crashes: vec![CrashWindow {
                node: NodeId(1),
                from_interval: 3,
                until_interval: Some(6),
            }],
            ..FaultPlan::default()
        })
        .build();
    split_sharers(&mut cluster, 24);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert!(master.rounds > 0, "rounds keep closing through the window");
    assert!(
        master.placement.plans >= 1,
        "the engine must have planned despite the crash: {:?}",
        master.placement
    );
    assert!(report.net.faults.crash_suppressed > 0, "{:?}", report.net.faults);
    assert_eq!(report.rejoins, 2, "node 1's threads come back");
    assert_eq!(
        master.placement.fenced_directives, 0,
        "no restore happened, so nothing may be fenced"
    );
    let placement = cluster.shared().placement.read().clone();
    assert_eq!(placement.len(), 4, "placement stays coherent");
}

/// Continuous rebalancing composed with a healed partition: plans are still
/// issued, the run completes — and the whole composition is **deterministic**:
/// two identical runs produce bit-identical deterministic reports, migrations
/// and all. This is what makes chaos-found placement bugs replayable.
#[test]
fn continuous_rebalance_under_partition_is_bit_identical() {
    let run = || {
        let mut cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
            .latency(LatencyModel::fast_ethernet())
            .costs(CostModel::free())
            .profiler(rebalance_profiler())
            .rebalance(continuous_rebalance())
            .faults(FaultPlan {
                seed: chaos_seed(),
                partitions: vec![PartitionWindow {
                    island: vec![NodeId(1)],
                    from_ns: 1_000,
                    heal_ns: Some(2_000_000),
                }],
                ..FaultPlan::default()
            })
            .build();
        split_sharers(&mut cluster, 30);
        let report = cluster.report();
        let master = cluster.master_output().expect("master ran").clone();
        (report, master)
    };
    let (report_a, master_a) = run();
    let (report_b, master_b) = run();
    assert!(master_a.rounds > 0);
    assert!(
        master_a.placement.plans >= 1,
        "the engine must plan through the partition: {:?}",
        master_a.placement
    );
    assert_eq!(
        report_a.deterministic(),
        report_b.deterministic(),
        "rebalance x partition must replay bit-identically"
    );
    assert_eq!(master_a.placement, master_b.placement, "telemetry too");
    assert_eq!(master_a.tcm, master_b.tcm);
}
