//! Chaos tests: full cluster runs under injected network faults.
//!
//! The acceptance bar of the fault-injection work: a lossy run must *complete* (no
//! deadlock), report degraded per-round coverage, and skip rate changes below the
//! coverage floor — while a zero-fault plan reproduces the fault-free run
//! bit-identically.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, NodeId, StallWindow};
use jessy_runtime::Cluster;

/// A workload whose round-over-round maps disagree (even rounds touch one shared
/// object, odd rounds two), so the adaptive controller has refinement pressure on
/// every round — which is what makes "skipped below the coverage floor" observable.
fn unstable_workload(cluster: &mut Cluster, barriers: usize) {
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for round in 0..barriers {
            jt.read(objs[0], |_| {});
            if round % 2 == 1 {
                jt.read(objs[67], |_| {});
            }
            jt.barrier();
        }
    });
}

fn chaos_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.02);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    config.min_round_coverage = 0.95;
    config
}

/// The headline acceptance test: 10% OAL drop, run completes, coverage degrades,
/// the controller skips rather than steering on garbage.
#[test]
fn lossy_oal_run_completes_and_degrades_gracefully() {
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(chaos_profiler())
        .faults(FaultPlan {
            oal_drop: 0.10,
            ..FaultPlan::default()
        })
        .build();
    unstable_workload(&mut cluster, 40);

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    assert!(master.rounds > 0, "rounds closed despite losses");
    assert!(
        report.net.faults.dropped > 0,
        "the plan must actually have dropped OAL batches: {:?}",
        report.net.faults
    );
    assert!(
        master.round_coverage.iter().any(|&c| c < 1.0),
        "dropped batches must show up as partial coverage: {:?}",
        master.round_coverage
    );
    assert!(
        master.round_coverage.iter().all(|&c| c > 0.0),
        "no round can be fully empty at a 10% drop rate: {:?}",
        master.round_coverage
    );
    assert!(
        !master.skipped_rate_changes.is_empty(),
        "rounds below the 0.95 coverage floor must skip rate steering"
    );
    for skip in &master.skipped_rate_changes {
        assert!(skip.coverage < 0.95, "skip recorded at {}", skip.coverage);
    }
    // The cumulative TCM still reflects the workload: pairs share, total mass > 0.
    assert!(master.tcm.total() > 0.0);
}

/// A zero-fault plan must be a no-op: bit-identical TCM, rounds, coverage and rate
/// decisions versus a build with no fault plan at all.
///
/// The workload is *stable* (every round identical) so the adaptive controller never
/// fires: applied rate changes take effect at real-time-dependent points in worker
/// progress, which is the one legitimately non-reproducible part of a run and not
/// what this test is about.
#[test]
fn zero_fault_plan_reproduces_the_fault_free_run() {
    let run = |faults: Option<FaultPlan>| {
        let mut builder = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::fast_ethernet())
            .costs(CostModel::free())
            .profiler(chaos_profiler());
        if let Some(plan) = faults {
            builder = builder.faults(plan);
        }
        let mut cluster = builder.build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Body", 8);
            (0..100)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<ObjectId>>()
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            for _ in 0..20 {
                jt.read(objs[0], |_| {});
                jt.read(objs[67], |_| {});
                jt.barrier();
            }
        });
        let report = cluster.report();
        let master = cluster.master_output().expect("master ran").clone();
        (report, master)
    };
    let (base_report, base) = run(None);
    let (zero_report, zero) = run(Some(FaultPlan::default()));

    assert!(FaultPlan::default().is_zero());
    assert_eq!(zero.tcm, base.tcm, "TCM must be bit-identical");
    assert_eq!(zero.rounds, base.rounds);
    assert_eq!(zero.round_coverage, base.round_coverage);
    assert_eq!(zero.rate_changes, base.rate_changes);
    assert_eq!(zero.skipped_rate_changes.len(), base.skipped_rate_changes.len());
    assert_eq!(zero.oals_ingested, base.oals_ingested);
    assert_eq!(zero.late_oals, base.late_oals);
    assert_eq!(zero.duplicate_oals, base.duplicate_oals);
    assert_eq!(zero_report.sim_exec_ns, base_report.sim_exec_ns);
    assert_eq!(zero_report.net.faults, base_report.net.faults);
    assert!(zero_report.net.faults.is_zero());
}

/// A node whose outbound traffic stalls for the whole run: its threads' OALs never
/// arrive, yet every round still closes (deadline path) with partial coverage and
/// the run terminates.
#[test]
fn stalled_node_cannot_wedge_round_close() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(2);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(2)
        .placement(vec![NodeId(0), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .faults(FaultPlan {
            stalls: vec![StallWindow {
                node: NodeId(1),
                start_msg: 0,
                end_msg: u64::MAX,
            }],
            ..FaultPlan::default()
        })
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![ctx.alloc_scalar_at(NodeId(0), class).id]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..10 {
            jt.read(objs[0], |_| {});
            jt.barrier();
        }
    });

    let report = cluster.report();
    let master = cluster.master_output().expect("master ran");
    assert!(master.rounds > 0, "deadline must close rounds");
    assert!(master.deadline_rounds > 0, "closure came from the deadline path");
    assert!(
        master.round_coverage.iter().all(|&c| c <= 0.5 + 1e-9),
        "only the healthy node's thread can contribute: {:?}",
        master.round_coverage
    );
    assert!(report.net.faults.stalled > 0, "{:?}", report.net.faults);
}

/// Duplicated OAL batches are deduplicated at the master: the TCM and round count
/// match a clean run exactly, and the duplicates are counted.
#[test]
fn duplicated_oal_batches_are_deduplicated() {
    let run = |plan: Option<FaultPlan>| {
        let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
        config.intervals_per_round = 1;
        let mut builder = Cluster::builder()
            .nodes(2)
            .threads(2)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(config);
        if let Some(p) = plan {
            builder = builder.faults(p);
        }
        let mut cluster = builder.build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("S", 8);
            vec![ctx.alloc_scalar_at(NodeId(0), class).id]
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            for _ in 0..8 {
                jt.read(objs[0], |_| {});
                jt.barrier();
            }
        });
        let master = cluster.master_output().expect("master ran").clone();
        let faults = cluster.report().net.faults;
        (master, faults)
    };
    let (clean, _) = run(None);
    let (dup, faults) = run(Some(FaultPlan {
        duplicate_prob: 0.5,
        ..FaultPlan::default()
    }));
    assert!(faults.duplicated > 0, "{faults:?}");
    // `faults.duplicated` also counts duplicated GOS messages; OAL duplicates are a
    // subset of it, and every one of them must have been discarded at the master.
    assert!(dup.duplicate_oals > 0, "OAL batches were duplicated");
    assert!(dup.duplicate_oals <= faults.duplicated);
    assert_eq!(dup.tcm, clean.tcm, "duplication must not inflate the map");
    assert_eq!(dup.rounds, clean.rounds);
    assert_eq!(dup.oals_ingested, clean.oals_ingested);
}
