//! Observability tests: the deterministic event journal, the exporters and the
//! unified metrics registry, end to end over real cluster runs.
//!
//! The acceptance bar of the observability work: a zero-fault run's journal is
//! **bit-identical** across repeated runs (the canonical `(t_ns, source, seq)`
//! order erases OS-thread interleaving), the Chrome export is valid JSON, the
//! metrics registry agrees with every raw counter struct it flattens — and the
//! two bugfix satellites hold: an invalid `tolerance_t` is rejected at build
//! time instead of panicking mid-run, and post-run OAL losses are attributable
//! and fold into coverage instead of vanishing into a bare counter.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{LatencyModel, NodeId, ThreadId};
use jessy_obs::{to_chrome_trace, to_json_lines, EventKind, JournalSink, MetricsSnapshot, TraceEvent};
use jessy_runtime::{Cluster, RunReport, RuntimeError};
use serde_json::Value;

fn profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    config
}

/// A stable traced run (every round identical), returning the journal and the
/// report. Remote reads (objects homed on both nodes) guarantee net and GOS
/// events; `Full` sampling guarantees armed traps, so correlation faults.
fn traced_run(barriers: usize) -> (Arc<JournalSink>, RunReport, Cluster) {
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::free())
        .profiler(profiler())
        .trace(sink.clone())
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..barriers {
            jt.read(objs[0], |_| {});
            jt.read(objs[67], |_| {});
            jt.barrier();
        }
    });
    let report = cluster.report();
    (sink, report, cluster)
}

/// The headline determinism test: two identical zero-fault runs journal the
/// same events and both exporters render them byte-identically, despite the
/// workers being real OS threads with arbitrary interleaving.
#[test]
fn zero_fault_journals_are_bit_identical_across_runs() {
    let (sink_a, _, _) = traced_run(12);
    let (sink_b, _, _) = traced_run(12);
    let a = sink_a.sorted_events();
    let b = sink_b.sorted_events();
    assert!(!a.is_empty(), "a traced run must journal events");
    assert_eq!(a.len(), b.len(), "event counts diverged");
    assert_eq!(
        to_json_lines(&a),
        to_json_lines(&b),
        "JSON-lines journals must be bit-identical"
    );
    assert_eq!(
        to_chrome_trace(&a),
        to_chrome_trace(&b),
        "Chrome traces must be bit-identical"
    );
}

/// One journal spans all four layers, in canonical order.
#[test]
fn journal_spans_every_layer_in_canonical_order() {
    let (sink, report, _) = traced_run(12);
    let events = sink.sorted_events();
    assert!(
        events.windows(2).all(|w| w[0].order_key() <= w[1].order_key()),
        "sorted_events must be in (t_ns, source, seq) order"
    );
    // Per-source seq numbers are each source's program order: 0, 1, 2, …
    let n_sources = report.n_threads + 1; // app threads + master
    let mut next_seq = vec![0u64; n_sources];
    let mut by_source = events.clone();
    by_source.sort_by_key(|e| (e.source, e.seq));
    for e in &by_source {
        assert!((e.source as usize) < n_sources, "unknown source {}", e.source);
        assert_eq!(e.seq, next_seq[e.source as usize], "seq gap at {e:?}");
        next_seq[e.source as usize] += 1;
    }
    let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    // net: OAL posts and object fetches are accounted on the fabric.
    assert!(has(&|k| matches!(k, EventKind::MessageSent { .. })), "net layer");
    // gos: remote objects fault in; Full sampling arms traps that then fire.
    assert!(has(&|k| matches!(k, EventKind::ObjectFault { .. })), "gos layer");
    assert!(
        has(&|k| matches!(k, EventKind::FalseInvalidTrap { .. })),
        "correlation faults under Full sampling"
    );
    // core: every barrier closes and reopens an interval on every thread.
    assert!(has(&|k| matches!(k, EventKind::IntervalOpened { .. })), "core layer");
    assert!(has(&|k| matches!(k, EventKind::IntervalClosed { .. })), "core layer");
    // runtime: the master closes TCM rounds.
    assert!(has(&|k| matches!(k, EventKind::RoundClosed { .. })), "runtime layer");
    // The journaled round stream matches the master's own ledger.
    let journaled_rounds = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RoundClosed { .. }))
        .count() as u64;
    assert_eq!(journaled_rounds, report.master.as_ref().unwrap().rounds);
}

/// The Chrome export is one valid JSON document Chrome's `about:tracing` /
/// Perfetto will load: a `traceEvents` array with one entry per journal event.
#[test]
fn chrome_trace_export_is_valid_json() {
    let (sink, _, _) = traced_run(6);
    let events = sink.sorted_events();
    let doc: Value = serde_json::from_str(&to_chrome_trace(&events)).expect("valid JSON");
    let Value::Object(pairs) = &doc else {
        panic!("top level must be an object");
    };
    let trace_events = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Value::Array(items) = trace_events else {
        panic!("traceEvents must be an array");
    };
    // Interval open/close pairs collapse into one "X" complete event; every
    // other journal entry (and unmatched opens) renders as one record.
    let mut open_keys: Vec<(u32, u64)> = Vec::new();
    let mut matched_pairs = 0usize;
    for e in &events {
        match &e.kind {
            EventKind::IntervalOpened { thread, interval } => open_keys.push((*thread, *interval)),
            EventKind::IntervalClosed { thread, interval, .. } => {
                if let Some(i) = open_keys.iter().rposition(|k| *k == (*thread, *interval)) {
                    open_keys.swap_remove(i);
                    matched_pairs += 1;
                }
            }
            _ => {}
        }
    }
    assert_eq!(items.len(), events.len() - matched_pairs);
    for item in items.iter().take(16) {
        let Value::Object(fields) = item else {
            panic!("each trace event is an object");
        };
        for required in ["name", "ph", "ts", "pid", "tid"] {
            assert!(
                fields.iter().any(|(k, _)| k == required),
                "trace events need {required:?}: {fields:?}"
            );
        }
    }
}

/// Every JSON-lines journal line parses back into the `TraceEvent` it came
/// from (the journal is a loadable artifact, not just a printout).
#[test]
fn journal_lines_roundtrip() {
    let (sink, _, _) = traced_run(6);
    let events = sink.sorted_events();
    let journal = to_json_lines(&events);
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, event) in lines.iter().zip(&events) {
        let back: TraceEvent = serde_json::from_str(line).expect("line parses");
        assert_eq!(&back, event);
    }
}

/// The metrics registry agrees with every raw counter struct it flattens, and
/// its snapshot algebra (diff against empty) is the identity.
#[test]
fn metrics_registry_consolidates_every_layer() {
    let (_, report, _) = traced_run(8);
    let m = report.metrics();
    let master = report.master.as_ref().unwrap();

    assert_eq!(m.get("run.n_nodes"), report.n_nodes as u64);
    assert_eq!(m.get("run.n_threads"), report.n_threads as u64);
    assert_eq!(m.get("run.sim_exec_ns"), report.sim_exec_ns);
    assert_eq!(m.get("net.total_messages"), report.net.total_messages());
    assert_eq!(m.get("net.total_bytes"), report.net.total_bytes());
    assert_eq!(m.get("net.oal_bytes"), report.net.oal_bytes());
    assert_eq!(m.get("proto.accesses"), report.proto.accesses);
    assert_eq!(m.get("proto.real_faults"), report.proto.real_faults);
    assert_eq!(
        m.get("profiler.intervals_closed"),
        report.profiler.intervals_closed
    );
    assert_eq!(m.get("master.rounds"), master.rounds);
    assert_eq!(m.get("master.oals_ingested"), master.oals_ingested);
    // The run did real work, so the namespaces cannot be empty.
    assert!(m.namespace_total("net.") > 0);
    assert!(m.namespace_total("proto.") > 0);
    assert!(m.namespace_total("profiler.") > 0);
    assert!(m.namespace_total("master.") > 0);
    // Snapshot algebra: diffing against the empty snapshot is the identity.
    assert_eq!(m.since(&MetricsSnapshot::new()), m);
    // And the registry serializes (sorted keys — deterministic artifact).
    let json = serde_json::to_string(&m).expect("serialize");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, m);
}

/// Satellite bugfix 1, end to end: a `tolerance_t` at or below 1.0 used to
/// panic inside `resolve_sticky_set` mid-run; it must now be rejected with a
/// typed, field-naming error before the cluster even builds.
#[test]
fn invalid_tolerance_is_rejected_at_build_time() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.tolerance_t = 0.5;
    let err = match Cluster::builder().nodes(1).threads(1).profiler(config).try_build() {
        Ok(_) => panic!("tolerance_t = 0.5 must not build"),
        Err(e) => e,
    };
    match &err {
        RuntimeError::Config(e) => {
            assert_eq!(e.field, "tolerance_t");
            assert_eq!(e.value, "0.5");
        }
        other => panic!("expected a config error, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("tolerance_t"), "diagnosable message: {msg}");
    assert!(msg.contains("0.5"), "value echoed: {msg}");
}

/// Satellite bugfix 2, end to end: OALs shipped after the master stopped
/// listening used to vanish into a bare counter. They are now attributable
/// `(thread, interval)` pairs, journaled, and folded back into round coverage.
#[test]
fn post_run_oal_loss_is_recorded_journaled_and_degrades_coverage() {
    let sink = JournalSink::shared();
    let mut config = profiler();
    config.footprint = None;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .trace(sink.clone())
        .build();
    let (objs, lock) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        let objs = (0..10)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        (objs, ctx.register_lock())
    });
    let run_objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..4 {
            jt.read(run_objs[0], |_| {});
            jt.barrier();
        }
    });

    // The run is over and the master mailbox is closed: an adopted thread
    // hitting an interval boundary (lock/unlock) must fail to post its OAL.
    let mut jt = cluster.adopt_thread(ThreadId(0));
    jt.lock(lock);
    jt.unlock(lock);

    let report = cluster.report();
    assert!(report.oal_post_failures >= 1, "posts must have failed");
    assert_eq!(
        report.oal_post_failures,
        report.lost_oals.len() as u64,
        "every failure is attributable"
    );
    assert!(
        report.lost_oals.iter().all(|&(t, _)| t == 0),
        "only the adopted thread lost OALs: {:?}",
        report.lost_oals
    );
    // The loss is journaled…
    let journaled: Vec<(u32, u64)> = sink
        .sorted_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::OalPostFailed { thread, interval } => Some((thread, interval)),
            _ => None,
        })
        .collect();
    assert_eq!(journaled, report.lost_oals, "journal and report agree");
    // …and folds into coverage: the adopted thread's intervals restart at 0,
    // so round 0's adjusted coverage drops by 1/(n_threads · ipr) per loss.
    let ipr = 1;
    let adjusted = report.adjusted_round_coverage(ipr);
    let master_coverage = &report.master.as_ref().unwrap().round_coverage;
    assert!(adjusted.len() >= master_coverage.len());
    assert!(
        adjusted.iter().any(|&c| c < 1.0),
        "losses must dent coverage: {adjusted:?}"
    );
    assert!(
        report.profile_degraded(0.95, ipr),
        "the coverage gate must see the post-run loss"
    );
    // The baseline run itself was clean: the master's own history is full.
    assert!(master_coverage.iter().all(|&c| c == 1.0), "{master_coverage:?}");
}
