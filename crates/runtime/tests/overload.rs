//! Overload-protection tests: SLO-budgeted sampling, bounded mailboxes with
//! shed policies, and gray-failure (slow-node) tolerance, end to end.
//!
//! The acceptance bar of the overload work: with every knob at a harmless
//! setting the run is **bit-identical** to a plain run; an OAL burst against a
//! bounded mailbox sheds deterministically with every shed attributable (policy
//! counters, journal events and coverage proration all agree); an over-budget
//! workload walks the degradation ladder until its measured profiling cost sits
//! inside the budget; and a slow (not dead) node is demoted out of the coverage
//! denominator and restored when it recovers — the run never wedges.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate, ShedPolicy};
use jessy_gos::{CostModel, LockId, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, NodeId, SlowWindow};
use jessy_obs::{to_json_lines, EventKind, JournalSink};
use jessy_runtime::{Cluster, MasterOutput, RunReport};

fn adaptive_profiler() -> ProfilerConfig {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.02);
    config.intervals_per_round = 1;
    config
}

/// Every overload knob at a setting that can never fire: a budget no round can
/// exceed, a mailbox no burst can fill, a straggler threshold no node can trip.
/// The run must reproduce the plain run bit for bit — report *and* journal —
/// proving the protection machinery is pure overhead-free observation until it
/// actually has to act.
#[test]
fn harmless_overload_knobs_reproduce_the_plain_run_bit_for_bit() {
    let run = |with_knobs: bool| {
        let sink = JournalSink::shared();
        let mut builder = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::fast_ethernet())
            .costs(CostModel::pentium4_2ghz())
            .profiler(adaptive_profiler())
            .trace(sink.clone());
        if with_knobs {
            builder = builder
                .overhead_budget(1.0)
                .oal_mailbox_capacity(1_000_000)
                .shed_policy(ShedPolicy::MergeBatches)
                .straggler_lag(1_000_000.0);
        }
        let mut cluster = builder.build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Body", 8);
            (0..100)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<ObjectId>>()
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            for _ in 0..20 {
                jt.read(objs[0], |_| {});
                jt.read(objs[67], |_| {});
                jt.compute(100_000);
                jt.barrier();
            }
        });
        let report = cluster.report();
        let master = cluster.master_output().expect("master ran").clone();
        (sink, report, master)
    };
    let (plain_sink, plain_report, plain) = run(false);
    let (knobs_sink, knobs_report, knobs) = run(true);

    // The second feedback loop's input is recorded in both runs (the budget
    // only changes what is *done* about it), and nothing ever fired.
    assert_eq!(plain.round_cost_fraction.len(), plain.rounds as usize);
    assert_eq!(knobs.round_cost_fraction, plain.round_cost_fraction);
    assert_eq!(knobs.budget_over_rounds, 0, "no round may exceed a 100% budget");
    assert_eq!(knobs.budget_degrades, 0);
    assert_eq!(knobs.stragglers, 0);
    assert_eq!(knobs_report.shed_oals, vec![]);
    assert_eq!(
        knobs_report.sheds_dropped + knobs_report.sheds_merged + knobs_report.sheds_summarized,
        0
    );
    assert_eq!(
        serde_json::to_string(&knobs_report.deterministic()).expect("serialize"),
        serde_json::to_string(&plain_report.deterministic()).expect("serialize"),
        "harmless knobs must reproduce the plain report bit for bit"
    );
    assert_eq!(
        to_json_lines(&knobs_sink.sorted_events()),
        to_json_lines(&plain_sink.sorted_events()),
        "harmless knobs must reproduce the plain journal bit for bit"
    );
}

/// A run whose middle phase is a burst of uncontended critical sections: every
/// `lock`/`unlock` closes an interval and posts its OAL *without yielding the
/// cooperative token*, so the master cannot drain and the bounded mailbox must
/// shed. Warm-up and cool-down phases bracket the burst with normal barrier
/// rounds so the TCM has content and pending queues flush before the run ends.
fn burst_run(policy: ShedPolicy) -> (Arc<JournalSink>, RunReport, MasterOutput) {
    let sink = JournalSink::shared();
    let mut profiler = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    profiler.intervals_per_round = 1;
    profiler.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler)
        .oal_mailbox_capacity(4)
        .shed_policy(policy)
        .trace(sink.clone())
        .build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        let objs = (0..8)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..4).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().0 as usize;
        for _ in 0..5 {
            jt.read(objs[t % 8], |_| {});
            jt.read(objs[(t + 1) % 8], |_| {});
            jt.barrier();
        }
        for _ in 0..30 {
            jt.lock(locks[t]);
            jt.unlock(locks[t]);
        }
        for _ in 0..5 {
            jt.read(objs[t % 8], |_| {});
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    (sink, report, master)
}

/// The headline backpressure test: the burst must shed, the run must complete,
/// and every shed must be attributable three ways — the policy counter, the
/// sorted `(thread, interval)` ledger and the journal's `OalShed` events all
/// agree — with the shed intervals prorated out of adjusted round coverage.
#[test]
fn bounded_mailbox_sheds_attributably_under_burst() {
    let (sink, report, master) = burst_run(ShedPolicy::DropOldestRound);
    assert!(master.rounds > 0, "rounds closed despite the burst");
    assert!(
        report.sheds_dropped > 0,
        "a 60-OAL unyielding burst against a 4-slot mailbox must shed"
    );
    assert_eq!(report.sheds_merged + report.sheds_summarized, 0);
    assert_eq!(
        report.sheds_dropped + report.sheds_merged + report.sheds_summarized,
        report.shed_oals.len() as u64,
        "every shed owns exactly one ledger entry"
    );
    assert!(
        report.shed_oals.windows(2).all(|w| w[0] <= w[1]),
        "the shed ledger is sorted"
    );
    // The journal tells the same story, event for event.
    let events = sink.sorted_events();
    let mut journaled = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::OalShed { thread, interval, policy } => {
                assert_eq!(policy, "drop_oldest_round");
                Some((*thread, *interval))
            }
            _ => None,
        })
        .collect::<Vec<_>>();
    journaled.sort_unstable();
    assert_eq!(journaled, report.shed_oals, "journal and ledger must agree");
    // Shed intervals fold back into coverage where gating looks: the adjusted
    // history must be strictly worse than the master's own view somewhere.
    let adjusted = report.adjusted_round_coverage(1);
    let worse = adjusted
        .iter()
        .enumerate()
        .any(|(r, c)| *c < master.round_coverage.get(r).copied().unwrap_or(1.0));
    assert!(worse, "sheds must depress adjusted coverage: {adjusted:?}");
    assert!(report.profile_degraded(0.95, 1), "the burst run's profile is degraded");
}

/// `MergeBatches` sheds by folding the two oldest pending batches into one —
/// queue depth halves, the batch identity of the older interval is what's shed.
#[test]
fn merge_batches_policy_sheds_by_merging() {
    let (sink, report, master) = burst_run(ShedPolicy::MergeBatches);
    assert!(master.rounds > 0);
    assert!(report.sheds_merged > 0, "the merge policy must merge under the burst");
    assert_eq!(report.sheds_summarized, 0);
    assert_eq!(
        report.sheds_dropped + report.sheds_merged,
        report.shed_oals.len() as u64
    );
    assert!(sink.sorted_events().iter().any(|e| matches!(
        &e.kind,
        EventKind::OalShed { policy, .. } if policy == "merge_batches"
    )));
    // Merging never loses bytes, only interval attribution: the master still
    // ingests batches from the warm-up and cool-down rounds.
    assert!(master.oals_ingested > 0);
}

/// `SummaryOnly` is the last data-bearing rung: merge, then collapse the merged
/// batch to per-class summaries.
#[test]
fn summary_only_policy_sheds_by_summarizing() {
    let (sink, report, master) = burst_run(ShedPolicy::SummaryOnly);
    assert!(master.rounds > 0);
    assert!(report.sheds_summarized > 0, "the summary policy must summarize");
    assert_eq!(report.sheds_merged, 0);
    assert!(sink.sorted_events().iter().any(|e| matches!(
        &e.kind,
        EventKind::OalShed { policy, .. } if policy == "summary_only"
    )));
    assert!(master.oals_ingested > 0);
}

/// The budget loop end to end: a fine-sampled workload whose profiling cost
/// starts well over a 2% budget must walk the degradation ladder (journaled
/// rung by rung) until the measured per-round cost fraction sits inside the
/// budget, and stay there for the rest of the run.
#[test]
fn over_budget_run_degrades_until_within_budget() {
    let sink = JournalSink::shared();
    let mut profiler = ProfilerConfig::tracking_at(SamplingRate::Full);
    profiler.adaptive_threshold = Some(0.5);
    profiler.intervals_per_round = 1;
    profiler.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler)
        .overhead_budget(0.02)
        .trace(sink.clone())
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..200)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        // Threads 0,1 live on node 0 (block placement), 2,3 on node 1; each
        // reads the 100 objects homed on its own node, so at `Full` every
        // interval logs ~100 entries against ~1.8M ns of charged compute.
        let node = (jt.thread_id().0 / 2) as usize;
        for _ in 0..25 {
            for k in 0..100 {
                jt.read(objs[2 * k + node], |_| {});
            }
            jt.compute(100_000);
            jt.barrier();
        }
    });
    let master = cluster.master_output().expect("master ran").clone();
    assert!(master.rounds >= 20);
    assert!(
        master.budget_over_rounds >= 1,
        "the workload must start over budget: {:?}",
        master.round_cost_fraction
    );
    assert!(
        master.budget_degrades >= 1,
        "over-budget rounds must take degradation rungs"
    );
    let degraded = sink
        .sorted_events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::BudgetDegraded { .. }))
        .count() as u64;
    assert_eq!(degraded, master.budget_degrades, "every rung taken is journaled");
    for e in sink.sorted_events() {
        if let EventKind::BudgetDegraded { cost_fraction, .. } = e.kind {
            assert!(cost_fraction > 0.02, "rungs are only taken over budget");
        }
    }
    // The ladder converges: the first round is over budget, the last is not,
    // and once under budget the run stays there.
    let frac = &master.round_cost_fraction;
    assert!(frac[0] > 0.02, "round 0 must be over budget: {frac:?}");
    let settle = frac.iter().position(|f| *f <= 0.02).expect("ladder must settle");
    assert!(
        frac[settle..].iter().all(|f| *f <= 0.02),
        "once inside the budget the run must stay there: {frac:?}"
    );
}

/// Satellite (c)'s load spike: a steady barrier workload interrupted by a 10×
/// burst of interval closes. The bounded mailbox sheds through the spike (every
/// shed attributable), the budget loop sees the spike's cost, and the run both
/// completes and *recovers* — the final rounds' measured cost is back inside
/// the budget.
#[test]
fn load_spike_sheds_attributably_and_recovers_within_budget() {
    let sink = JournalSink::shared();
    let mut profiler = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    profiler.adaptive_threshold = Some(0.5);
    profiler.intervals_per_round = 1;
    profiler.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler)
        .overhead_budget(0.05)
        .oal_mailbox_capacity(4)
        .shed_policy(ShedPolicy::MergeBatches)
        .trace(sink.clone())
        .build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        let objs = (0..8)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..4).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().0 as usize;
        for _ in 0..10 {
            jt.read(objs[t % 8], |_| {});
            jt.compute(100_000);
            jt.barrier();
        }
        // The spike: 10× the interval rate, posted without yielding.
        for _ in 0..50 {
            jt.lock(locks[t]);
            jt.unlock(locks[t]);
        }
        for _ in 0..10 {
            jt.read(objs[t % 8], |_| {});
            jt.compute(100_000);
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    assert!(master.rounds > 0, "the spiked run completes");
    assert!(report.sheds_merged > 0, "the spike must shed: {report:?}");
    let mut journaled = sink
        .sorted_events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::OalShed { thread, interval, .. } => Some((*thread, *interval)),
            _ => None,
        })
        .collect::<Vec<_>>();
    journaled.sort_unstable();
    assert_eq!(journaled, report.shed_oals, "every spike shed is attributable");
    let last = *master.round_cost_fraction.last().expect("rounds closed");
    assert!(
        last <= 0.05,
        "the run must recover to within budget after the spike: {:?}",
        master.round_cost_fraction
    );
}

/// Gray failure end to end: node 1 runs 8× slow for the first stretch of the
/// run, then recovers. The master must demote it (prorating its unreported
/// intervals out of coverage — rounds keep closing, nothing wedges) and then
/// restore it once its progress deficit decays. Both transitions are journaled.
#[test]
fn slow_node_is_demoted_then_restored_without_wedging() {
    let sink = JournalSink::shared();
    let mut profiler = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    profiler.intervals_per_round = 1;
    profiler.round_deadline_intervals = Some(4);
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::free())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler)
        .straggler_lag(1.2)
        .faults(FaultPlan {
            slow: vec![SlowWindow {
                node: NodeId(1),
                from_ns: 0,
                until_ns: Some(30_000),
                factor: 8.0,
            }],
            ..FaultPlan::default()
        })
        .trace(sink.clone())
        .build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        let objs = (0..4)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..4).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().0 as usize;
        for _ in 0..80 {
            jt.lock(locks[t]);
            jt.read(objs[t], |_| {});
            jt.compute(50);
            jt.unlock(locks[t]);
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    assert!(master.rounds > 0, "rounds close while the straggler lags");
    assert!(master.stragglers >= 1, "the slow node must be demoted");
    let events = sink.sorted_events();
    let demoted = events.iter().find_map(|e| match e.kind {
        EventKind::StragglerDemoted { node: 1, round, lag_ewma } => Some((round, lag_ewma)),
        _ => None,
    });
    let (demote_round, lag_ewma) = demoted.expect("node 1 demoted");
    assert!(lag_ewma > 1.2, "the journaled EWMA tripped the threshold");
    let restored = events.iter().find_map(|e| match e.kind {
        EventKind::StragglerRestored { node: 1, round } => Some(round),
        _ => None,
    });
    let restore_round = restored.expect("node 1 restored after the window ends");
    assert!(restore_round > demote_round);
    // Demotion is a coverage-accounting decision, never data loss: the slow
    // node's late intervals still landed (as accepted or late OALs) and the
    // prorated rounds show partial coverage.
    assert!(master.round_coverage.iter().any(|&c| c < 1.0));
    assert!(master.oals_ingested > 0);
    assert_eq!(report.oal_post_failures, 0, "slowness loses nothing");
    assert_eq!(report.shed_oals, vec![], "no mailbox bound, no sheds");
}
