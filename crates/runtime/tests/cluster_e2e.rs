//! End-to-end cluster tests: full runs with profiling, TCM construction at the master,
//! adaptive control, and migration with sticky-set prefetch.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{LatencyModel, NodeId, ThreadId};
use jessy_runtime::migration::count_would_fault;
use jessy_runtime::{Cluster, LoadBalancer};

/// Shared fixture: `n_pairs` pairs of threads; pair k shares its own object.
/// Odd threads also touch a private object, so the TCM must show exactly the pair
/// structure.
fn paired_cluster(n_pairs: usize, rate: SamplingRate) -> (Cluster, Vec<ObjectId>) {
    let cluster = Cluster::builder()
        .nodes(2)
        .threads(2 * n_pairs)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(ProfilerConfig::tracking_at(rate))
        .build();
    let shared_objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Shared", 4);
        let priv_class = ctx.register_scalar_class("Private", 2);
        let objs: Vec<ObjectId> = (0..n_pairs)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect();
        for _ in 0..n_pairs {
            ctx.alloc_scalar_at(NodeId(1), priv_class);
        }
        objs
    });
    (cluster, shared_objs)
}

#[test]
fn sharded_master_reducer_is_bit_identical_to_serial() {
    // The same deterministic workload under 1 (serial) and 4 (parallel-capable)
    // master reducer shards must produce the exact same cumulative TCM.
    let run = |shards: usize| {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(6)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(ProfilerConfig::tracking_at(SamplingRate::Full))
            .tcm_shards(shards)
            .build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Shared", 4);
            (0..3)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<_>>()
        });
        let mut cluster = cluster;
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            let obj = objs[jt.thread_id().index() / 2];
            for _ in 0..4 {
                jt.write(obj, |d| d[0] += 1.0);
                jt.barrier();
            }
        });
        cluster.master_output().expect("master ran").tcm.clone()
    };
    let serial = run(1);
    let sharded = run(4);
    assert_eq!(serial.raw(), sharded.raw());
    assert!(serial.total() > 0.0, "workload must correlate");
}

#[test]
fn tcm_recovers_pairwise_sharing_structure() {
    let n_pairs = 3;
    let (mut cluster, objs) = paired_cluster(n_pairs, SamplingRate::Full);
    let objs = Arc::new(objs);
    let objs_for_run = Arc::clone(&objs);
    cluster.run(move |jt| {
        let pair = jt.thread_id().index() / 2;
        let obj = objs_for_run[pair];
        for _ in 0..5 {
            jt.read(obj, |_| {});
            jt.write(obj, |d| d[0] += 1.0);
            jt.barrier();
        }
    });
    let master = cluster.master_output().expect("master ran");
    assert!(master.oals_ingested > 0, "OALs must reach the master");
    let tcm = &master.tcm;
    for i in 0..(2 * n_pairs) as u32 {
        for j in 0..(2 * n_pairs) as u32 {
            let v = tcm.at(ThreadId(i), ThreadId(j));
            if i == j {
                assert_eq!(v, 0.0);
            } else if i / 2 == j / 2 {
                assert!(v > 0.0, "pair ({i},{j}) must correlate");
            } else {
                assert_eq!(v, 0.0, "threads {i},{j} share nothing");
            }
        }
    }
    // All pairs did identical work: correlations must be equal.
    let base = tcm.at(ThreadId(0), ThreadId(1));
    for k in 1..n_pairs as u32 {
        assert_eq!(tcm.at(ThreadId(2 * k), ThreadId(2 * k + 1)), base);
    }
}

#[test]
fn sampled_tcm_is_close_to_ground_truth() {
    // Same workload traced fully vs sampled at 1X: the (gap-scaled) sampled map must
    // land within 30% on this tiny object population (Fig. 9 uses far more objects and
    // gets within 5%; here we only smoke-test the estimator wiring end to end).
    let run = |rate: Option<SamplingRate>| -> jessy_core::Tcm {
        let config = match rate {
            Some(r) => ProfilerConfig::tracking_at(r),
            None => ProfilerConfig::ground_truth(),
        };
        let mut cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(config)
            .build();
        let objs = cluster.init(|ctx| {
            // 8-byte class: 512X is full sampling; use Full for truth, Full for A too
            // but through the sampling path.
            let class = ctx.register_scalar_class("W", 1);
            (0..64)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<_>>()
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            let t = jt.thread_id().index();
            for round in 0..4 {
                for k in 0..16 {
                    // Threads t and t+1 overlap half their range.
                    let idx = (t * 12 + k + round) % 64;
                    jt.read(objs[idx], |_| {});
                }
                jt.barrier();
            }
        });
        cluster.master_output().unwrap().tcm.clone()
    };
    let truth = run(None);
    let sampled = run(Some(SamplingRate::Full));
    assert!(truth.total() > 0.0);
    let acc = jessy_core::accuracy_abs(&sampled, &truth);
    assert!(acc > 0.95, "full-rate sampling ≈ ground truth, got {acc}");
}

#[test]
fn adaptive_controller_steps_rates_during_run() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.adaptive_threshold = Some(0.02);
    config.intervals_per_round = 1;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(2)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .build();
    // 64-byte class at 1X → gap 67 (objects 0 and 67 sampled). The shared byte volume
    // alternates between rounds (even: one shared sampled object; odd: two), so
    // successive round maps disagree by ~50% and the controller must refine.
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<_>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for round in 0..12usize {
            jt.read(objs[0], |_| {});
            if round % 2 == 1 {
                jt.read(objs[67], |_| {});
            }
            jt.barrier();
        }
    });
    let master = cluster.master_output().unwrap();
    assert!(master.rounds >= 10, "rounds: {}", master.rounds);
    assert!(
        !master.rate_changes.is_empty(),
        "unstable maps must trigger refinement"
    );
    assert!(master.rate_changes.iter().all(|c| c.class_name == "Body"));
    assert!(master.rate_changes[0].resampled_objects == 100);
}

#[test]
fn migration_with_prefetch_eliminates_sticky_refaults() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.footprint = Some(jessy_core::FootprintConfig {
        mode: jessy_core::FootprintMode::Nonstop,
        min_gap: 1,
    });
    config.stack = Some(jessy_core::StackSamplingConfig {
        gap_ns: 1000,
        lazy_extraction: true,
    });
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(1)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .build();
    let (method, head, chain) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Node", 4);
        let method = ctx.register_method("traverse", 2);
        // A chain of 10 objects homed at node 0, linked head → … → tail.
        let ids: Vec<ObjectId> = (0..10)
            .map(|_| ctx.alloc_scalar_at(NodeId(0), class).id)
            .collect();
        for w in ids.windows(2) {
            ctx.add_ref(w[0], w[1]);
        }
        (method, ids[0], ids)
    });
    let chain_arc = Arc::new(chain.clone());
    let reports: Arc<parking_lot::Mutex<Vec<jessy_runtime::MigrationReport>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let reports_run = Arc::clone(&reports);
    cluster.run(move |jt| {
        jt.push_frame(method);
        jt.set_local_ref(0, head);
        // Traverse the chain repeatedly so (a) the stack sampler sees the head slot as
        // invariant, (b) nonstop footprinting sees every chain object as sticky.
        for _ in 0..40 {
            for &o in chain_arc.iter() {
                jt.read(o, |_| {});
                jt.compute(3);
            }
        }
        jt.barrier(); // interval closes: footprint recorded
        let report = jt.migrate_to(NodeId(1), true);
        reports_run.lock().push(report);
    });
    let report = reports.lock().pop().expect("one migration");
    assert_eq!(report.from, NodeId(0));
    assert_eq!(report.to, NodeId(1));
    assert!(report.ctx_bytes > 0, "stack context shipped");
    let res = report.resolution.as_ref().expect("prefetch resolved");
    assert!(
        res.selected.len() >= 5,
        "most of the chain resolved: {:?}",
        res.selected.len()
    );
    // Ground truth: the prefetched objects must no longer fault at the destination
    // (the run's parked thread arena holds the prefetched copies).
    let shared = cluster.shared();
    shared.with_space(ThreadId(0), |space| {
        assert_eq!(
            count_would_fault(&shared.gos, space, NodeId(1), res.selected.iter().copied()),
            0,
            "prefetch hid the induced faults"
        );
        // Without prefetch, the rest of the remote chain still faults.
        assert_eq!(
            count_would_fault(&shared.gos, space, NodeId(1), chain),
            10 - res.selected.len()
        );
    });
}

#[test]
fn balancer_fixes_a_bad_placement_found_by_profiling() {
    // Threads 0&2 share heavily, 1&3 share heavily, but initial placement splits the
    // sharers. Profile, plan, verify the plan reunites them.
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(ProfilerConfig::tracking_at(SamplingRate::Full))
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![
            ctx.alloc_scalar_at(NodeId(0), class).id, // shared by threads 0 & 2
            ctx.alloc_scalar_at(NodeId(1), class).id, // shared by threads 1 & 3
        ]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let group = jt.thread_id().index() % 2;
        for _ in 0..6 {
            jt.read(objs[group], |_| {});
            jt.barrier();
        }
    });
    let tcm = cluster.master_output().unwrap().tcm.clone();
    let lb = LoadBalancer::new();
    let current = vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)];
    assert_eq!(lb.intra_fraction(&tcm, &current), 0.0, "bad placement");
    let plan = lb.plan(&tcm, 2);
    assert_eq!(plan.intra_fraction, 1.0, "plan reunites the sharers");
    assert_eq!(plan.placement[0], plan.placement[2]);
    assert_eq!(plan.placement[1], plan.placement[3]);
    assert!(lb.migration_gain(&tcm, &current, ThreadId(2), NodeId(0)) > 0.0);
}

#[test]
fn run_report_is_coherent() {
    let (mut cluster, objs) = paired_cluster(2, SamplingRate::Full);
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        jt.write(objs[jt.thread_id().index() / 2], |d| d[0] = 1.0);
        jt.compute(100);
        jt.barrier();
    });
    let report = cluster.report();
    assert_eq!(report.n_threads, 4);
    assert_eq!(report.per_thread_ns.len(), 4);
    assert_eq!(
        report.sim_exec_ns,
        report.per_thread_ns.iter().copied().max().unwrap()
    );
    assert!(report.proto.accesses >= 4);
    assert!(report.profiler.intervals_closed >= 4);
    assert!(report.master.is_some());
}

#[test]
fn dynamic_balancer_fixes_placement_mid_run() {
    // Threads 0&2 and 1&3 share heavily but start split across nodes. With dynamic
    // rebalancing on, the master plans from the live TCM and the threads migrate at a
    // barrier; by the end the sharers are collocated.
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .rebalance(jessy_runtime::RebalanceConfig {
            after_rounds: 3,
            with_prefetch: false,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 1e18,
            ..Default::default()
        })
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![
            ctx.alloc_scalar_at(NodeId(0), class).id, // shared by threads 0 & 2
            ctx.alloc_scalar_at(NodeId(1), class).id, // shared by threads 1 & 3
        ]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let group = jt.thread_id().index() % 2;
        for _ in 0..20 {
            jt.read(objs[group], |_| {});
            jt.barrier();
        }
    });

    let master = cluster.master_output().unwrap();
    assert!(
        !master.planned_migrations.is_empty(),
        "the balancer must have issued directives"
    );
    let shared = cluster.shared();
    let placement = shared.placement.read().clone();
    assert_eq!(placement[0], placement[2], "sharers 0&2 collocated: {placement:?}");
    assert_eq!(placement[1], placement[3], "sharers 1&3 collocated: {placement:?}");
    assert_ne!(placement[0], placement[1], "capacity respected");
    let log = shared.migration_log.lock();
    assert!(!log.is_empty(), "migrations actually happened");
    assert!(log.iter().all(|m| m.from != m.to));
}

#[test]
fn dynamic_balancer_leaves_good_placements_alone() {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 1;
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .placement(vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .rebalance(jessy_runtime::RebalanceConfig {
            after_rounds: 3,
            with_prefetch: false,
            min_gain_bytes: 1.0,
            gain_horizon_rounds: 1e18,
            ..Default::default()
        })
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        vec![
            ctx.alloc_scalar_at(NodeId(0), class).id, // shared by threads 0 & 1 (same node)
            ctx.alloc_scalar_at(NodeId(1), class).id, // shared by threads 2 & 3 (same node)
        ]
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let group = jt.thread_id().index() / 2;
        for _ in 0..10 {
            jt.read(objs[group], |_| {});
            jt.barrier();
        }
    });
    let master = cluster.master_output().unwrap();
    assert!(
        master.planned_migrations.is_empty(),
        "no thrashing on an already-optimal placement: {:?}",
        master.planned_migrations
    );
    assert!(cluster.shared().migration_log.lock().is_empty());
}

#[test]
fn tcm_decay_follows_a_shifting_sharing_pattern() {
    // Phase A: threads 0&1 share; phase B: threads 0&2 share. A decayed map must end
    // dominated by the B pair; an undecayed map keeps A's history on top (A ran
    // longer).
    let run = |decay: Option<f64>| {
        let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
        config.intervals_per_round = 1;
        config.tcm_decay = decay;
        let mut cluster = Cluster::builder()
            .nodes(2)
            .threads(3)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(config)
            .build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("S", 8);
            vec![
                ctx.alloc_scalar_at(NodeId(0), class).id,
                ctx.alloc_scalar_at(NodeId(1), class).id,
            ]
        });
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            let t = jt.thread_id().index();
            // Phase A: 12 rounds of {0,1} sharing obj 0.
            for _ in 0..12 {
                if t <= 1 {
                    jt.read(objs[0], |_| {});
                }
                jt.barrier();
            }
            // Phase B: 4 rounds of {0,2} sharing obj 1.
            for _ in 0..4 {
                if t == 0 || t == 2 {
                    jt.read(objs[1], |_| {});
                }
                jt.barrier();
            }
        });
        cluster.master_output().unwrap().tcm.clone()
    };
    let cumulative = run(None);
    let windowed = run(Some(0.5));
    assert!(
        cumulative.at(ThreadId(0), ThreadId(1)) > cumulative.at(ThreadId(0), ThreadId(2)),
        "undecayed: the longer phase A dominates"
    );
    assert!(
        windowed.at(ThreadId(0), ThreadId(2)) > windowed.at(ThreadId(0), ThreadId(1)),
        "decayed: the current phase B dominates ({} vs {})",
        windowed.at(ThreadId(0), ThreadId(2)),
        windowed.at(ThreadId(0), ThreadId(1))
    );
}

#[test]
fn tree_aggregated_reduction_is_bit_identical_to_flat_end_to_end() {
    // The same deterministic workload through the flat coordinator and through
    // the fabric aggregation tree (per-node pre-reduction + owner shuffle +
    // k-ary partial merge) must produce the exact same cumulative TCM, while
    // only the tree run reports reduction traffic.
    let run = |fanout: usize, top_k: usize| {
        let cluster = Cluster::builder()
            .nodes(3)
            .threads(6)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(ProfilerConfig::tracking_at(SamplingRate::Full))
            .tcm_tree_fanout(fanout)
            .tcm_top_k(top_k)
            .build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Shared", 4);
            (0..3)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 3) as u16), class).id)
                .collect::<Vec<_>>()
        });
        let mut cluster = cluster;
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            let obj = objs[jt.thread_id().index() / 2];
            for _ in 0..4 {
                jt.write(obj, |d| d[0] += 1.0);
                jt.barrier();
            }
        });
        cluster.master_output().expect("master ran").clone()
    };
    let flat = run(0, 0);
    let tree = run(2, 4);
    assert_eq!(flat.tcm.raw(), tree.tcm.raw(), "tree reduction must be exact");
    assert_eq!(flat.rounds, tree.rounds);
    assert_eq!(flat.round_coverage, tree.round_coverage);

    // Flat mode reports no reduction traffic; tree mode reports partials into
    // the master (nodes 1 and 2 sit outside node 0, which hosts the master).
    assert_eq!(flat.reduce, jessy_runtime::master::ReduceTelemetry::default());
    assert!(flat.top_pairs.is_empty());
    assert!(tree.reduce.tree_rounds > 0);
    assert!(tree.reduce.partial_bytes > 0, "real fabric hops must be accounted");
    assert!(tree.reduce.master_partials >= tree.reduce.tree_rounds);

    // The streaming top-k view surfaces the true hottest pairs: each thread
    // pair (2k, 2k+1) shares an object, so every reported pair is adjacent.
    assert!(!tree.top_pairs.is_empty() && tree.top_pairs.len() <= 4);
    for &(i, j, w) in &tree.top_pairs {
        assert_eq!(j, i + 1, "only adjacent pairs share objects");
        assert!(w > 0.0);
        assert_eq!(w, tree.tcm.at(ThreadId(i), ThreadId(j)));
    }
}

#[test]
fn sketch_backend_at_generous_width_matches_dense_exactly() {
    // A count-min sketch wide enough to avoid collisions on a handful of hot
    // pairs returns exact weights; the end-to-end run must then agree with the
    // dense-backend run bit for bit (the sketch only ever *adds* collision
    // mass, and there is none here).
    let run = |backend: jessy_core::TcmBackend| {
        let cluster = Cluster::builder()
            .nodes(2)
            .threads(4)
            .latency(LatencyModel::free())
            .costs(CostModel::free())
            .profiler(ProfilerConfig::tracking_at(SamplingRate::Full))
            .tcm_tree_fanout(2)
            .tcm_backend(backend)
            .tcm_top_k(2)
            .build();
        let objs = cluster.init(|ctx| {
            let class = ctx.register_scalar_class("Shared", 4);
            (0..2)
                .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
                .collect::<Vec<_>>()
        });
        let mut cluster = cluster;
        let objs = Arc::new(objs);
        cluster.run(move |jt| {
            let obj = objs[jt.thread_id().index() / 2];
            for _ in 0..3 {
                jt.write(obj, |d| d[0] += 1.0);
                jt.barrier();
            }
        });
        cluster.master_output().expect("master ran").clone()
    };
    let dense = run(jessy_core::TcmBackend::Dense);
    let sketched = run(jessy_core::TcmBackend::Sketch {
        width: 1 << 14,
        depth: 4,
    });
    assert_eq!(dense.tcm.raw(), sketched.tcm.raw());
    assert_eq!(dense.top_pairs, sketched.top_pairs);
    assert!(sketched.reduce.tree_rounds > 0);
}
