//! Replay determinism: the PR 6 acceptance property. A run is fully described by
//! `(exec_seed, exec_jitter, fault plan)` — repeating it must reproduce the event
//! journal **byte for byte**, along with the deterministic report view and the
//! master's cumulative TCM. The property is checked under schedule jitter, OAL
//! drops and a mid-run network partition simultaneously, because determinism that
//! only holds on the happy path is not determinism.

use std::sync::Arc;

use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, NodeId, PartitionWindow};
use jessy_obs::{to_json_lines, JournalSink};
use jessy_runtime::Cluster;
use proptest::prelude::*;

/// One full traced cluster run; returns the canonical journal bytes, the
/// serialized deterministic report and the master TCM rendered to a string.
fn traced_run(exec_seed: u64, exec_jitter: u64, plan: FaultPlan) -> (String, String, String) {
    let sink = JournalSink::shared();
    let mut cluster = Cluster::builder()
        .nodes(2)
        .threads(4)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::free())
        .profiler({
            let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
            config.adaptive_threshold = Some(0.02);
            config.intervals_per_round = 1;
            config.round_deadline_intervals = Some(3);
            config.min_round_coverage = 0.95;
            config
        })
        .faults(plan)
        .exec_seed(exec_seed)
        .exec_jitter(exec_jitter)
        .trace(sink.clone())
        .build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("Body", 8);
        (0..100)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % 2) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for round in 0..24 {
            jt.read(objs[0], |_| {});
            if round % 2 == 1 {
                jt.read(objs[67], |_| {});
            }
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran to completion");
    let journal = to_json_lines(&sink.sorted_events());
    let det = serde_json::to_string(&report.deterministic()).expect("serialize report");
    let tcm = format!("{:?}", master.tcm);
    (journal, det, tcm)
}

proptest! {
    // Each case is two full cluster runs; a handful of cases is plenty — the
    // property is about schedules, and the seed/jitter pair is the schedule.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same `(seed, jitter, plan)` ⇒ bit-identical journal, report and TCM.
    #[test]
    fn seeded_schedules_replay_bit_identically(
        exec_seed in 0u64..u64::MAX,
        exec_jitter in 1u64..5_000,
        fault_seed in 0u64..u64::MAX,
        drop_pct in 0u32..15,
        partition_flag in 0u32..2,
    ) {
        let plan = FaultPlan {
            seed: fault_seed,
            oal_drop: f64::from(drop_pct) / 100.0,
            partitions: if partition_flag == 1 {
                vec![PartitionWindow {
                    island: vec![NodeId(1)],
                    from_ns: 1_000,
                    heal_ns: Some(2_000_000),
                }]
            } else {
                vec![]
            },
            ..FaultPlan::default()
        };
        let (journal_a, det_a, tcm_a) = traced_run(exec_seed, exec_jitter, plan.clone());
        let (journal_b, det_b, tcm_b) = traced_run(exec_seed, exec_jitter, plan);
        prop_assert!(!journal_a.is_empty(), "a traced run must journal events");
        prop_assert_eq!(journal_a, journal_b, "journal bytes diverged");
        prop_assert_eq!(det_a, det_b, "deterministic report diverged");
        prop_assert_eq!(tcm_a, tcm_b, "master TCM diverged");
    }
}
