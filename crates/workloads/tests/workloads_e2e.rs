//! End-to-end workload tests: numerical correctness against sequential references and
//! the sharing structures the paper's evaluation relies on.

use jessy_core::{accuracy_abs, ProfilerConfig, SamplingRate};
use jessy_gos::CostModel;
use jessy_net::{LatencyModel, NodeId, ThreadId};
use jessy_runtime::Cluster;
use jessy_workloads::{barnes_hut, sor, water};

fn fast_cluster(nodes: usize, threads: usize, profiler: ProfilerConfig) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads(threads)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler)
        .build()
}

#[test]
fn sor_parallel_matches_sequential_reference() {
    let cfg = sor::SorConfig::small();
    let mut cluster = fast_cluster(2, 4, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 2));
    let h = std::sync::Arc::new(handles.clone());
    let c = cfg;
    cluster.run(move |jt| sor::thread_body(jt, &c, &h));

    let reference = sor::reference(&cfg);
    let ref_sum: f64 = reference.iter().flatten().sum();
    let mut reader = cluster.adopt_thread(ThreadId(0));
    let sum = sor::checksum(&mut reader, &handles);
    assert!(
        (sum - ref_sum).abs() < 1e-9 * ref_sum.abs().max(1.0),
        "parallel {sum} vs sequential {ref_sum}"
    );
    // Spot-check a full row, not just the checksum.
    let row5 = reader.read(handles.rows[5], |d| d.to_vec());
    for (j, (&a, &b)) in row5.iter().zip(&reference[5]).enumerate() {
        assert!((a - b).abs() < 1e-12, "row 5 col {j}: {a} vs {b}");
    }
}

#[test]
fn sor_sharing_is_near_neighbour() {
    // 4 threads: the TCM must connect only adjacent threads (boundary rows).
    let cfg = sor::SorConfig::small();
    let mut cluster = fast_cluster(2, 4, ProfilerConfig::tracking_at(SamplingRate::NX(1)));
    let report = {
        let handles = cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 2));
        let h = std::sync::Arc::new(handles);
        let c = cfg;
        cluster.run(move |jt| sor::thread_body(jt, &c, &h));
        cluster.report()
    };
    let tcm = &report.master.as_ref().unwrap().tcm;
    for i in 0..4u32 {
        for j in (i + 1)..4 {
            let v = tcm.at(ThreadId(i), ThreadId(j));
            if j == i + 1 {
                assert!(v > 0.0, "adjacent threads {i},{j} must share boundary rows");
            } else {
                assert_eq!(v, 0.0, "non-adjacent threads {i},{j} share nothing");
            }
        }
    }
    // Boundary-row sharing is symmetric along the chain.
    let a = tcm.at(ThreadId(0), ThreadId(1));
    let b = tcm.at(ThreadId(1), ThreadId(2));
    assert!((a - b).abs() / a < 0.5, "chain links comparable: {a} vs {b}");
}

#[test]
fn barnes_hut_two_galaxies_show_block_structure() {
    // 8 threads, threads 0-3 simulate galaxy A, 4-7 galaxy B: intra-galaxy
    // correlation must dominate cross-galaxy correlation (the Fig. 1 claim).
    let cfg = barnes_hut::BhConfig::small();
    let mut cluster = fast_cluster(2, 8, ProfilerConfig::ground_truth());
    let report = {
        let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 8, 2));
        let h = std::sync::Arc::new(handles);
        let c = cfg;
        cluster.run(move |jt| barnes_hut::thread_body(jt, &c, &h));
        cluster.report()
    };
    let tcm = &report.master.as_ref().unwrap().tcm;
    // Exclude thread 0 (the tree builder touches everything).
    let mut intra = 0.0;
    let mut cross = 0.0;
    let mut intra_n = 0;
    let mut cross_n = 0;
    for i in 1..8u32 {
        for j in (i + 1)..8 {
            let v = tcm.at(ThreadId(i), ThreadId(j));
            if (i < 4) == (j < 4) {
                intra += v;
                intra_n += 1;
            } else {
                cross += v;
                cross_n += 1;
            }
        }
    }
    let intra_avg = intra / intra_n as f64;
    let cross_avg = cross / cross_n as f64;
    assert!(
        intra_avg > 1.5 * cross_avg,
        "intra-galaxy {intra_avg} must dominate cross-galaxy {cross_avg}"
    );
}

#[test]
fn barnes_hut_stays_numerically_sane() {
    let cfg = barnes_hut::BhConfig::small();
    let mut cluster = fast_cluster(2, 4, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 4, 2));
    let h = std::sync::Arc::new(handles.clone());
    let c = cfg;
    cluster.run(move |jt| barnes_hut::thread_body(jt, &c, &h));
    let mut reader = cluster.adopt_thread(ThreadId(0));
    let p = barnes_hut::total_momentum(&mut reader, &handles);
    assert!(p.iter().all(|v| v.is_finite()), "momentum diverged: {p:?}");
    // Bodies must have actually moved.
    let moved = reader.read(handles.bodies[0], |d| d[4].abs() + d[5].abs() + d[6].abs());
    assert!(moved > 0.0, "body 0 never accelerated");
}

#[test]
fn barnes_hut_sampled_map_tracks_ground_truth() {
    // The headline property on a real workload: the sampled (1X) TCM approximates the
    // full-trace TCM. Thread 0 is excluded (tree building dominates it).
    let run = |config: ProfilerConfig| {
        let cfg = barnes_hut::BhConfig::small();
        let mut cluster = fast_cluster(2, 4, config);
        let handles = cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 4, 2));
        let h = std::sync::Arc::new(handles);
        cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &h));
        cluster.report().master.unwrap().tcm
    };
    // NX(32) puts the 64-byte Body/Cell classes at gap 2 (every other object) — on
    // this scaled-down population coarser rates leave too few sampled objects for a
    // tight estimate (Fig. 9's ≥95% figures use the full 4K-body run; the fig9 bench
    // reproduces them). Here we only pin down that the estimator tracks the truth.
    let truth = run(ProfilerConfig::ground_truth());
    let sampled = run(ProfilerConfig::tracking_at(SamplingRate::NX(32)));
    assert!(truth.total() > 0.0);
    let acc = accuracy_abs(&sampled, &truth);
    assert!(acc > 0.7, "sampled TCM too far from truth: {acc}");
}

#[test]
fn water_conserves_population_and_stays_in_domain() {
    let cfg = water::WaterConfig::small();
    let mut cluster = fast_cluster(2, 2, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| water::setup(ctx, &cfg, 2, 2));
    let h = std::sync::Arc::new(handles.clone());
    let c = cfg;
    cluster.run(move |jt| water::thread_body(jt, &c, &h));

    let mut reader = cluster.adopt_thread(ThreadId(0));
    // Every molecule is inside the reflecting walls.
    let side = cfg.side();
    for &m in &handles.molecules {
        let p = reader.read(m, |d| [d[0], d[1], d[2]]);
        for v in p {
            assert!((0.0..=side).contains(&v), "molecule escaped: {v}");
        }
    }
    // Box membership still covers every molecule exactly once.
    let mut seen = vec![0u32; cfg.n_molecules];
    for &b in &handles.boxes {
        let members = reader.read(b, |d| {
            let count = d[0] as usize;
            d[1..1 + count].iter().map(|&m| m as usize).collect::<Vec<_>>()
        });
        for m in members {
            seen[m] += 1;
        }
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "membership broken: {:?}",
        seen.iter().enumerate().filter(|(_, &c)| c != 1).collect::<Vec<_>>()
    );
    let ke = water::kinetic_energy(&mut reader, &handles);
    assert!(ke.is_finite() && ke > 0.0, "kinetic energy {ke}");
}

#[test]
fn water_exercises_distributed_locks() {
    let cfg = water::WaterConfig::small();
    let mut cluster = fast_cluster(2, 2, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| water::setup(ctx, &cfg, 2, 2));
    let h = std::sync::Arc::new(handles);
    let c = cfg;
    cluster.run(move |jt| water::thread_body(jt, &c, &h));
    let report = cluster.report();
    // Rebinding moved at least one molecule → lock traffic exists.
    let locks = report.net.class(jessy_net::MsgClass::LockAcquire).messages
        + report.net.class(jessy_net::MsgClass::LockRelease).messages;
    assert!(locks > 0, "no lock traffic: molecules never crossed boxes?");
}

#[test]
fn workload_homes_follow_block_placement() {
    // Row/body/molecule homes must be distributed, not piled on node 0 — otherwise
    // every table's traffic numbers would be bogus.
    let cfg = sor::SorConfig::small();
    let cluster = fast_cluster(4, 4, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| sor::setup(ctx, &cfg, 4, 4));
    let homes: Vec<NodeId> = handles
        .rows
        .iter()
        .map(|&r| cluster.shared().gos.object(r).home())
        .collect();
    for node in 0..4u16 {
        assert!(
            homes.iter().any(|h| h.0 == node),
            "node {node} homes no rows"
        );
    }
    // Block distribution: homes are non-decreasing over row index.
    assert!(homes.windows(2).all(|w| w[0] <= w[1]), "{homes:?}");
}

#[test]
fn lu_parallel_matches_sequential_reference_exactly() {
    use jessy_workloads::lu::{self, LuConfig};
    let cfg = LuConfig::small();
    let mut cluster = fast_cluster(2, 4, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| lu::setup(ctx, &cfg, 4, 2));
    let h = std::sync::Arc::new(handles.clone());
    cluster.run(move |jt| lu::thread_body(jt, &cfg, &h));

    let reference = lu::reference(&cfg);
    let mut reader = cluster.adopt_thread(ThreadId(0));
    for (idx, (obj, ref_block)) in handles.blocks.iter().zip(&reference).enumerate() {
        let got = reader.read(*obj, |d| d.to_vec());
        for (e, (&a, &b)) in got.iter().zip(ref_block).enumerate() {
            assert_eq!(a, b, "block {idx} elem {e}: {a} vs {b} (must be bit-identical)");
        }
    }
}

#[test]
fn lu_sharing_decays_across_the_run() {
    // LU's wavefront sharing shrinks every step — the "dynamically changing sharing
    // pattern" case. Check the diagonal-block fan-out exists in the TCM: the owner of
    // block (0,0) correlates with many threads.
    use jessy_workloads::lu::{self, LuConfig};
    let cfg = LuConfig::small();
    let mut cluster = fast_cluster(2, 4, ProfilerConfig::ground_truth());
    let handles = cluster.init(|ctx| lu::setup(ctx, &cfg, 4, 2));
    let h = std::sync::Arc::new(handles);
    cluster.run(move |jt| lu::thread_body(jt, &cfg, &h));
    let tcm = cluster.master_output().unwrap().tcm.clone();
    assert!(tcm.total() > 0.0);
    // Every thread pair shares at least the diagonal blocks' wavefront.
    for i in 0..4u32 {
        for j in (i + 1)..4 {
            assert!(
                tcm.at(ThreadId(i), ThreadId(j)) > 0.0,
                "LU couples all owners: pair ({i},{j})"
            );
        }
    }
}

#[test]
fn water_membership_survives_box_overflow_pressure() {
    // 100 fast molecules over a 2×2×2 grid (capacity 62/box): moves toward full boxes
    // must be cancelled, never dropping a molecule from the membership.
    let cfg = water::WaterConfig {
        n_molecules: 100,
        k: 2,
        rounds: 6,
        box_len: 1.0,
        cutoff: 0.9,
        dt: 0.01,
        init_speed: 120.0,
        seed: 3,
    };
    let mut cluster = fast_cluster(2, 2, ProfilerConfig::disabled());
    let handles = cluster.init(|ctx| water::setup(ctx, &cfg, 2, 2));
    let h = std::sync::Arc::new(handles.clone());
    cluster.run(move |jt| water::thread_body(jt, &cfg, &h));

    let mut reader = cluster.adopt_thread(ThreadId(0));
    let mut seen = vec![0u32; cfg.n_molecules];
    for &b in &handles.boxes {
        let members = reader.read(b, |d| {
            let count = d[0] as usize;
            d[1..1 + count].iter().map(|&m| m as usize).collect::<Vec<_>>()
        });
        for m in members {
            seen[m] += 1;
        }
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "molecules lost/duplicated under overflow pressure: {:?}",
        seen.iter().enumerate().filter(|(_, &c)| c != 1).take(5).collect::<Vec<_>>()
    );
}
