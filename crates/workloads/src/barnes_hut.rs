//! Barnes-Hut — hierarchical N-body simulation (Table I row 2).
//!
//! 4K bodies of < 100 bytes each (the paper's fine-grained workload), arranged as
//! **two galaxies** — the Fig. 1 setup: each thread simulates a contiguous chunk of
//! bodies, so threads of the same galaxy exhibit high mutual data locality (they read
//! each other's bodies and their galaxy's subtree) while cross-galaxy interactions
//! collapse into a single far-away cell. This is precisely the inherent block
//! structure that page-grain tracking blurs.
//!
//! Each round: thread 0 rebuilds the shared octree (cells are GOS objects whose
//! reference fields form the tree), everyone synchronizes, every thread computes
//! forces for its chunk by traversing the tree with the opening-angle criterion, and
//! finally integrates its own bodies.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use jessy_gos::{ClassId, ObjectId};
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// Barnes-Hut parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BhConfig {
    /// Number of bodies (split evenly between two galaxies).
    pub n_bodies: usize,
    /// Simulation rounds.
    pub rounds: usize,
    /// Opening angle θ: a cell of size `s` at distance `d` is used whole if `s/d < θ`.
    pub theta: f64,
    /// Time step.
    pub dt: f64,
    /// RNG seed for the initial distribution.
    pub seed: u64,
}

impl BhConfig {
    /// The paper's problem size: 4K bodies, 5 rounds.
    pub fn paper() -> Self {
        BhConfig {
            n_bodies: 4096,
            rounds: 5,
            theta: 0.7,
            dt: 0.025,
            seed: 42,
        }
    }

    /// Scaled-down size for tests and quick benches.
    pub fn small() -> Self {
        BhConfig {
            n_bodies: 256,
            rounds: 3,
            theta: 0.8,
            dt: 0.025,
            seed: 42,
        }
    }
}

/// Body payload layout: `[mass, x, y, z, vx, vy, vz, pad]` — 8 words, 64 bytes.
pub const BODY_WORDS: u32 = 8;
/// Cell payload layout: `[mass, comx, comy, comz, cx, cy, cz, half]`.
pub const CELL_WORDS: u32 = 8;

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct BhHandles {
    /// Body objects, chunked per thread.
    pub bodies: Vec<ObjectId>,
    /// The space root object; its first ref is the current tree root cell.
    pub space: ObjectId,
    /// Class of bodies.
    pub body_class: ClassId,
    /// Class of tree cells.
    pub cell_class: ClassId,
    /// Worker method id (`bh.simulate`, the long-lived bottom frame).
    pub method: MethodId,
    /// Per-phase method id (`bh.computeForces`, a medium-lived frame).
    pub force_method: MethodId,
    /// Per-phase method id (`bh.integrate`, a short-lived frame).
    pub integrate_method: MethodId,
}

/// Bodies of thread `t` under block distribution.
pub fn bodies_of(n_bodies: usize, n_threads: usize, t: usize) -> std::ops::Range<usize> {
    let per = n_bodies.div_ceil(n_threads);
    (t * per).min(n_bodies)..((t + 1) * per).min(n_bodies)
}

/// Register classes and allocate the two-galaxy body population, each chunk homed at
/// its owner thread's node.
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &BhConfig, n_threads: usize, n_nodes: usize) -> BhHandles {
    let body_class = ctx.register_scalar_class("Body", BODY_WORDS);
    let cell_class = ctx.register_scalar_class("Cell", CELL_WORDS);
    let space_class = ctx.register_scalar_class("Space", 2);
    let method = ctx.register_method("bh.simulate", 6);
    let _force_method = ctx.register_method("bh.computeForces", 4);
    let _integrate_method = ctx.register_method("bh.integrate", 3);

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut bodies = Vec::with_capacity(cfg.n_bodies);
    for i in 0..cfg.n_bodies {
        // Two galaxies: unit spheres centred at ±6 on x.
        let centre = if i < cfg.n_bodies / 2 { -6.0 } else { 6.0 };
        let pos = loop {
            let p = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            if p.iter().map(|v: &f64| v * v).sum::<f64>() <= 1.0 {
                break p;
            }
        };
        let init = [
            // Normalize total mass to ~2 (1 per galaxy) so accelerations stay O(1)
            // and the two-galaxy structure survives the full run.
            2.0 / cfg.n_bodies as f64,
            centre + pos[0],
            pos[1],
            pos[2],
            0.0,
            0.0,
            0.0,
            0.0,
        ];
        let owner = (0..n_threads)
            .find(|&t| bodies_of(cfg.n_bodies, n_threads, t).contains(&i))
            .unwrap_or(0);
        let node = NodeId((owner * n_nodes / n_threads) as u16);
        bodies.push(ctx.alloc_scalar_init(node, body_class, &init).id);
    }
    let space = ctx.alloc_scalar_at(NodeId(0), space_class).id;
    BhHandles {
        bodies,
        space,
        body_class,
        cell_class,
        method,
        force_method: _force_method,
        integrate_method: _integrate_method,
    }
}

// ---------------------------------------------------------------- tree building

#[derive(Debug)]
enum BuildNode {
    Leaf(usize),            // index into the snapshot
    Internal(Box<[Option<BuildNode>; 8]>, f64, [f64; 3], f64), // children, mass, com*mass, half
}

fn octant(centre: &[f64; 3], p: &[f64; 3]) -> usize {
    (usize::from(p[0] > centre[0]) << 2)
        | (usize::from(p[1] > centre[1]) << 1)
        | usize::from(p[2] > centre[2])
}

fn child_centre(centre: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
    let h = half / 2.0;
    [
        centre[0] + if oct & 4 != 0 { h } else { -h },
        centre[1] + if oct & 2 != 0 { h } else { -h },
        centre[2] + if oct & 1 != 0 { h } else { -h },
    ]
}

fn insert(
    node: &mut Option<BuildNode>,
    idx: usize,
    snapshot: &[(f64, [f64; 3])],
    centre: [f64; 3],
    half: f64,
    depth: usize,
) {
    match node.take() {
        None => *node = Some(BuildNode::Leaf(idx)),
        Some(BuildNode::Leaf(other)) => {
            if depth > 64 {
                // Degenerate coincident points: keep one leaf (mass merged at read).
                *node = Some(BuildNode::Leaf(other));
                return;
            }
            let mut internal = BuildNode::Internal(
                Box::new([const { None }; 8]),
                0.0,
                [0.0; 3],
                half,
            );
            if let BuildNode::Internal(children, ..) = &mut internal {
                for &i in &[other, idx] {
                    let oct = octant(&centre, &snapshot[i].1);
                    insert(
                        &mut children[oct],
                        i,
                        snapshot,
                        child_centre(&centre, half, oct),
                        half / 2.0,
                        depth + 1,
                    );
                }
            }
            *node = Some(internal);
        }
        Some(BuildNode::Internal(mut children, m, com, h)) => {
            let oct = octant(&centre, &snapshot[idx].1);
            insert(
                &mut children[oct],
                idx,
                snapshot,
                child_centre(&centre, half, oct),
                half / 2.0,
                depth + 1,
            );
            *node = Some(BuildNode::Internal(children, m, com, h));
        }
    }
}

/// Materialize the build tree into GOS cell objects; returns the root id and the cell
/// count. Leaves are the body objects themselves.
fn materialize(
    jt: &mut JThread,
    node: &BuildNode,
    snapshot: &[(f64, [f64; 3])],
    h: &BhHandles,
    centre: [f64; 3],
    half: f64,
    cells: &mut usize,
) -> (ObjectId, f64, [f64; 3]) {
    match node {
        BuildNode::Leaf(i) => {
            let (m, p) = snapshot[*i];
            (h.bodies[*i], m, p)
        }
        BuildNode::Internal(children, ..) => {
            let mut mass = 0.0;
            let mut com = [0.0f64; 3];
            let mut child_ids = Vec::new();
            for (oct, child) in children.iter().enumerate() {
                if let Some(c) = child {
                    let (id, m, p) = materialize(
                        jt,
                        c,
                        snapshot,
                        h,
                        child_centre(&centre, half, oct),
                        half / 2.0,
                        cells,
                    );
                    mass += m;
                    for k in 0..3 {
                        com[k] += m * p[k];
                    }
                    child_ids.push(id);
                }
            }
            if mass > 0.0 {
                for c in &mut com {
                    *c /= mass;
                }
            }
            let cell = jt.alloc_scalar(h.cell_class);
            *cells += 1;
            jt.write(cell.id, |d| {
                d[0] = mass;
                d[1] = com[0];
                d[2] = com[1];
                d[3] = com[2];
                d[4] = centre[0];
                d[5] = centre[1];
                d[6] = centre[2];
                d[7] = half;
            });
            cell.set_refs(child_ids);
            (cell.id, mass, com)
        }
    }
}

/// Build this round's tree (thread 0 only); hangs the new root off the space object.
/// Returns the number of cells created.
pub fn build_tree(jt: &mut JThread, _cfg: &BhConfig, h: &BhHandles) -> usize {
    // Snapshot every body's (mass, position) through the GOS.
    let snapshot: Vec<(f64, [f64; 3])> = h
        .bodies
        .iter()
        .map(|&b| jt.read(b, |d| (d[0], [d[1], d[2], d[3]])))
        .collect();
    // Bounding cube.
    let mut maxc = 1.0f64;
    for (_, p) in &snapshot {
        for v in p {
            maxc = maxc.max(v.abs());
        }
    }
    let half = maxc * 1.1;
    let mut root: Option<BuildNode> = None;
    for i in 0..snapshot.len() {
        insert(&mut root, i, &snapshot, [0.0; 3], half, 0);
        jt.compute(50);
    }
    let mut cells = 0;
    if let Some(root) = &root {
        let (root_id, _, _) = materialize(jt, root, &snapshot, h, [0.0; 3], half, &mut cells);
        jt.gos().object(h.space).set_refs(vec![root_id]);
        jt.write(h.space, |d| d[0] += 1.0); // bump tree generation
    }
    cells
}

/// Compute the force on a body at `pos` by traversing the tree from the space root.
pub fn force_on(jt: &mut JThread, h: &BhHandles, own: ObjectId, pos: [f64; 3], theta: f64) -> [f64; 3] {
    const EPS2: f64 = 1e-4;
    let mut force = [0.0f64; 3];
    let roots = jt.gos().object(h.space).refs();
    let mut stack: Vec<ObjectId> = roots;
    while let Some(id) = stack.pop() {
        if id == own {
            continue;
        }
        let core = jt.gos().object(id);
        let is_cell = core.class == h.cell_class;
        let (mass, p, half) = jt.read(id, |d| (d[0], [d[1], d[2], d[3]], if is_cell { d[7] } else { 0.0 }));
        let dx = [p[0] - pos[0], p[1] - pos[1], p[2] - pos[2]];
        let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + EPS2;
        let dist = d2.sqrt();
        if is_cell && (2.0 * half) / dist >= theta {
            // Too close to approximate: descend.
            stack.extend(core.refs());
            continue;
        }
        if mass == 0.0 {
            continue;
        }
        let f = mass / (d2 * dist);
        for k in 0..3 {
            force[k] += f * dx[k];
        }
        // A tree-node visit in the paper's Kaffe-based system costs microseconds
        // (bytecode-level execution + per-access DSM checks); charge accordingly so
        // the profiling-to-compute ratios land in the paper's regime.
        jt.compute(200);
    }
    force
}

/// The per-thread body: `cfg.rounds` of build → force → integrate.
pub fn thread_body(jt: &mut JThread, cfg: &BhConfig, h: &BhHandles) {
    let t = jt.thread_id().index();
    let n_threads = jt.shared().n_threads;
    let mine = bodies_of(cfg.n_bodies, n_threads, t);
    jt.push_frame(h.method);
    jt.set_local_ref(0, h.space);
    if let Some(&first) = h.bodies.get(mine.start) {
        jt.set_local_ref(1, first);
    }

    for _round in 0..cfg.rounds {
        // Round boundary: non-builder threads yield while thread 0 builds.
        jt.yield_now();
        if t == 0 {
            build_tree(jt, cfg, h);
        }
        jt.barrier(); // tree ready

        // Force phase: read-only traversals, under a phase frame whose locals hold
        // the space root (a stack invariant) and the body being processed (varying).
        jt.push_frame(h.force_method);
        jt.set_local_ref(0, h.space);
        let mut forces = Vec::with_capacity(mine.len());
        for i in mine.clone() {
            jt.set_local_ref(1, h.bodies[i]);
            let pos = jt.read(h.bodies[i], |d| [d[1], d[2], d[3]]);
            forces.push(force_on(jt, h, h.bodies[i], pos, cfg.theta));
        }
        jt.pop_frame();
        jt.barrier(); // all forces computed before anyone moves

        // Integrate own bodies under a short-lived phase frame.
        jt.push_frame(h.integrate_method);
        for (k, i) in mine.clone().enumerate() {
            let f = forces[k];
            jt.write(h.bodies[i], |d| {
                // force_on returns acceleration (sum of m_j * dx / d^3, G = 1).
                for c in 0..3 {
                    d[4 + c] += cfg.dt * f[c];
                    d[1 + c] += cfg.dt * d[4 + c];
                }
            });
            jt.compute(30);
        }
        jt.pop_frame();
        jt.barrier();
    }
    jt.pop_frame();
}

/// Total momentum magnitude (diagnostic; near-conserved for symmetric interactions).
pub fn total_momentum(jt: &mut JThread, h: &BhHandles) -> [f64; 3] {
    let mut p = [0.0f64; 3];
    for &b in &h.bodies {
        let (m, v) = jt.read(b, |d| (d[0], [d[4], d[5], d[6]]));
        for k in 0..3 {
            p[k] += m * v[k];
        }
    }
    p
}

/// Run Barnes-Hut on a prepared cluster.
pub fn run_on(cluster: &mut Cluster, cfg: BhConfig) -> RunReport {
    let n_threads = cluster.shared().n_threads;
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_threads, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octant_and_child_centre_are_consistent() {
        let c = [0.0, 0.0, 0.0];
        let p = [1.0, -1.0, 1.0];
        let oct = octant(&c, &p);
        assert_eq!(oct, 0b101);
        let cc = child_centre(&c, 2.0, oct);
        assert_eq!(cc, [1.0, -1.0, 1.0]);
        // The point is inside its child octant.
        assert_eq!(octant(&cc, &p), octant(&cc, &p));
    }

    #[test]
    fn bodies_of_partitions_exactly() {
        let covered: Vec<usize> = (0..5).flat_map(|t| bodies_of(17, 5, t)).collect();
        assert_eq!(covered, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn insert_builds_a_tree_over_coincident_points() {
        // Degenerate input must not recurse forever.
        let snapshot = vec![(1.0, [0.1, 0.1, 0.1]); 4];
        let mut root = None;
        for i in 0..4 {
            insert(&mut root, i, &snapshot, [0.0; 3], 1.0, 0);
        }
        assert!(root.is_some());
    }
}
