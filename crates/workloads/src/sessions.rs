//! Sessions — Zipf-skewed user-session serving, the north-star "heavy traffic"
//! scenario.
//!
//! Each thread plays a front-end worker serving a stream of short-lived user
//! sessions. A session allocates a scratch `Session` object (runtime-allocated,
//! touched only by its own thread, dead as soon as the session ends — the
//! microservice allocation pattern), then issues a burst of reads and writes
//! against a shared `Item` catalog whose popularity follows a Zipf law: a few
//! head items absorb most of the traffic and are shared by *every* thread, while
//! the long tail is touched rarely by anyone.
//!
//! That skew is the interesting profile: the TCM must report strong all-pairs
//! correlation concentrated on the hot head, sticky sets should find the head
//! items, and the sampling controller has to estimate a heavy-tailed access
//! histogram rather than the uniform sweeps of the SPLASH-2 kernels. Every
//! random draw is seeded per `(thread, session)`, so runs are bit-reproducible
//! and independent of scheduling.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use jessy_gos::{ClassId, ObjectId};
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// Session-serving parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionsConfig {
    /// Shared catalog items (64 B each).
    pub n_items: usize,
    /// Zipf exponent `s` (weight of item `k` ∝ `1/(k+1)^s`); larger is more
    /// head-heavy. 0 degenerates to uniform.
    pub zipf_s: f64,
    /// Sessions served per thread (equal across threads — sessions end on a
    /// barrier, so the counts must line up).
    pub sessions_per_thread: usize,
    /// Catalog operations per session; every fourth is a write.
    pub ops_per_session: usize,
    /// Base RNG seed (per-session streams derive from it).
    pub seed: u64,
}

impl SessionsConfig {
    /// Bench scale.
    pub fn paper() -> Self {
        SessionsConfig {
            n_items: 4096,
            zipf_s: 1.1,
            sessions_per_thread: 48,
            ops_per_session: 64,
            seed: 42,
        }
    }

    /// Scaled-down size for tests and smoke lanes.
    pub fn small() -> Self {
        SessionsConfig {
            n_items: 256,
            zipf_s: 1.1,
            sessions_per_thread: 6,
            ops_per_session: 16,
            seed: 42,
        }
    }
}

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct SessionsHandles {
    /// Catalog items, popularity rank order (item 0 is the hottest).
    pub items: Vec<ObjectId>,
    /// Catalog root (refs → every item).
    pub catalog: ObjectId,
    /// Class id of the short-lived per-session scratch objects.
    pub session_class: ClassId,
    /// Method id for the worker's stack frame.
    pub method: MethodId,
    /// Cumulative (unnormalized) Zipf weights: `cdf[k]` = Σ weights `0..=k`.
    pub cdf: Arc<Vec<f64>>,
}

/// Cumulative Zipf weights for `n` ranks at exponent `s`.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|k| {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            acc
        })
        .collect()
}

/// Draw a rank from the Zipf CDF: binary search for the first rank whose
/// cumulative weight covers `u · total`.
pub fn zipf_draw(cdf: &[f64], u: f64) -> usize {
    let target = u * cdf[cdf.len() - 1];
    cdf.partition_point(|&c| c < target).min(cdf.len() - 1)
}

/// Register classes and allocate the catalog round-robin across nodes.
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &SessionsConfig, n_nodes: usize) -> SessionsHandles {
    let item_class = ctx.register_scalar_class("Item", 8); // 64 B
    let session_class = ctx.register_scalar_class("Session", 8); // 64 B scratch
    let catalog_class = ctx.register_scalar_class("Catalog", 2);
    let method = ctx.register_method("sessions.serve", 4);
    let mut items = Vec::with_capacity(cfg.n_items);
    for i in 0..cfg.n_items {
        let node = NodeId((i % n_nodes) as u16);
        items.push(ctx.alloc_scalar_init(node, item_class, &[0.0; 8]).id);
    }
    let catalog = ctx.alloc_scalar_at(NodeId(0), catalog_class).id;
    for &it in &items {
        ctx.add_ref(catalog, it);
    }
    SessionsHandles {
        items,
        catalog,
        session_class,
        method,
        cdf: Arc::new(zipf_cdf(cfg.n_items, cfg.zipf_s)),
    }
}

/// The per-thread body: serve `sessions_per_thread` sessions, one
/// barrier-delimited interval each.
pub fn thread_body(jt: &mut JThread, cfg: &SessionsConfig, h: &SessionsHandles) {
    let t = jt.thread_id().index();
    jt.push_frame(h.method);
    jt.set_local_ref(0, h.catalog);
    for session in 0..cfg.sessions_per_thread {
        jt.yield_now();
        // Short-lived per-session scratch: allocated here, rooted in a local,
        // dead at session end — churn the profiler must stay cheap under.
        let scratch = jt.alloc_scalar(h.session_class);
        jt.set_local_ref(1, scratch.id);
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ ((t as u64) << 32) ^ session as u64);
        for op in 0..cfg.ops_per_session {
            let rank = zipf_draw(&h.cdf, rng.gen_range(0.0..1.0));
            if op % 4 == 3 {
                jt.write(h.items[rank], |d| d[0] += 1.0);
            } else {
                jt.read(h.items[rank], |d| d[0]);
            }
            jt.write(scratch.id, |d| d[1] += 1.0);
            jt.compute(32);
        }
        jt.barrier(); // session boundary = interval boundary
    }
    jt.pop_frame();
}

/// Run the session server on a prepared cluster: setup + run, returning the report.
pub fn run_on(cluster: &mut Cluster, cfg: SessionsConfig) -> RunReport {
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_head_heavy() {
        let cdf = zipf_cdf(1000, 1.1);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // The top 1% of ranks absorbs a large share of the mass at s = 1.1.
        let head = cdf[9] / cdf[999];
        assert!(head > 0.35, "head share {head}");
    }

    #[test]
    fn zipf_draw_covers_the_range_and_respects_the_skew() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(zipf_draw(&cdf, 0.0), 0);
        assert_eq!(zipf_draw(&cdf, 1.0), 99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[zipf_draw(&cdf, rng.gen_range(0.0..1.0))] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 hotter than rank 10");
        assert!(counts[0] > 40 * counts[90].max(1) / 10, "heavy head");
    }

    #[test]
    fn session_streams_are_reproducible() {
        let cfg = SessionsConfig::small();
        let draw = |t: u64, s: u64| {
            let cdf = zipf_cdf(cfg.n_items, cfg.zipf_s);
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t << 32) ^ s);
            (0..cfg.ops_per_session)
                .map(|_| zipf_draw(&cdf, rng.gen_range(0.0..1.0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(1, 3), draw(1, 3));
        assert_ne!(draw(1, 3), draw(2, 3), "streams differ per thread");
        assert_ne!(draw(1, 3), draw(1, 4), "streams differ per session");
    }
}
