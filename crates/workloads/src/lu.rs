//! LU — blocked dense LU factorization (suite extension).
//!
//! The SPLASH-2 kernel the paper's benchmark set is drawn from: an `N × N` matrix in
//! `B × B` blocks, each block one `double[]` GOS object, owned 2-D block-cyclically by
//! the threads. Step `k`: the owner factors the diagonal block; perimeter owners solve
//! their row/column blocks against it; interior owners update `A[i][j] -= A[i][k]
//! A[k][j]`. Sharing is the classic decaying wavefront — every step the diagonal block
//! is read by the whole perimeter and the perimeter by the whole interior — a sharing
//! *pattern that changes over the run*, which is exactly the case the paper says
//! adaptive profiling exists for ("applications whose sharing patterns could change
//! dynamically").
//!
//! No pivoting (the SPLASH-2 kernel also factors without it); inputs are made
//! diagonally dominant so the factorization is stable.

use std::sync::Arc;

use jessy_gos::ObjectId;
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// LU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuConfig {
    /// Matrix dimension (multiple of `block`).
    pub n: usize,
    /// Block dimension.
    pub block: usize,
}

impl LuConfig {
    /// A paper-era problem size: 512 × 512 in 32 × 32 blocks.
    pub fn paper() -> Self {
        LuConfig { n: 512, block: 32 }
    }

    /// Scaled-down size for tests.
    pub fn small() -> Self {
        LuConfig { n: 64, block: 16 }
    }

    /// Blocks per dimension.
    pub fn nb(&self) -> usize {
        self.n / self.block
    }
}

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct LuHandles {
    /// Block objects, row-major (`nb × nb`).
    pub blocks: Vec<ObjectId>,
    /// Worker method id.
    pub method: MethodId,
}

/// 2-D block-cyclic owner of block `(i, j)` among `n_threads` threads.
pub fn owner_of(cfg: &LuConfig, n_threads: usize, i: usize, j: usize) -> usize {
    let _ = cfg;
    // Factor the thread count into a near-square pr × pc grid.
    let pr = (1..=n_threads)
        .filter(|&d| n_threads.is_multiple_of(d))
        .min_by_key(|&d| (d as i64 - (n_threads as f64).sqrt() as i64).abs())
        .unwrap_or(1);
    let pc = n_threads / pr;
    (i % pr) * pc + (j % pc)
}

/// Deterministic, diagonally dominant test matrix entry.
fn matrix_entry(cfg: &LuConfig, r: usize, c: usize) -> f64 {
    if r == c {
        cfg.n as f64 + 1.0
    } else {
        ((r * 31 + c * 17) % 13) as f64 / 13.0
    }
}

/// Register classes and allocate the blocks, homed at their owners' nodes.
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &LuConfig, n_threads: usize, n_nodes: usize) -> LuHandles {
    assert_eq!(cfg.n % cfg.block, 0, "n must be a multiple of block");
    let class = ctx.register_array_class("lu.block[]", 1);
    let method = ctx.register_method("lu.factor", 5);
    let nb = cfg.nb();
    let b = cfg.block;
    let mut blocks = Vec::with_capacity(nb * nb);
    for bi in 0..nb {
        for bj in 0..nb {
            let owner = owner_of(cfg, n_threads, bi, bj);
            let node = NodeId((owner * n_nodes / n_threads) as u16);
            let init: Vec<f64> = (0..b * b)
                .map(|idx| matrix_entry(cfg, bi * b + idx / b, bj * b + idx % b))
                .collect();
            blocks.push(ctx.alloc_array_init(node, class, &init).id);
        }
    }
    LuHandles { blocks, method }
}

// ---------------------------------------------------------------- block kernels

/// In-place LU of a `b × b` block (no pivoting).
fn factor_block(a: &mut [f64], b: usize) {
    for k in 0..b {
        let pivot = a[k * b + k];
        for i in (k + 1)..b {
            a[i * b + k] /= pivot;
            let lik = a[i * b + k];
            for j in (k + 1)..b {
                a[i * b + j] -= lik * a[k * b + j];
            }
        }
    }
}

/// `X ← L⁻¹ X` where `L` is the (unit-diagonal) lower part of the factored diagonal.
fn solve_row_block(diag: &[f64], x: &mut [f64], b: usize) {
    for k in 0..b {
        for i in (k + 1)..b {
            let lik = diag[i * b + k];
            for j in 0..b {
                x[i * b + j] -= lik * x[k * b + j];
            }
        }
    }
}

/// `X ← X U⁻¹` where `U` is the upper part of the factored diagonal.
fn solve_col_block(diag: &[f64], x: &mut [f64], b: usize) {
    for k in 0..b {
        let ukk = diag[k * b + k];
        for i in 0..b {
            x[i * b + k] /= ukk;
            let xik = x[i * b + k];
            for j in (k + 1)..b {
                x[i * b + j] -= xik * diag[k * b + j];
            }
        }
    }
}

/// `C ← C − A·B`.
fn update_block(c: &mut [f64], a: &[f64], bm: &[f64], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let aik = a[i * b + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..b {
                c[i * b + j] -= aik * bm[k * b + j];
            }
        }
    }
}

/// The per-thread body: the full blocked factorization with barriers between phases.
pub fn thread_body(jt: &mut JThread, cfg: &LuConfig, h: &LuHandles) {
    let t = jt.thread_id().index();
    let n_threads = jt.shared().n_threads;
    let nb = cfg.nb();
    let b = cfg.block;
    let at = |i: usize, j: usize| h.blocks[i * nb + j];
    jt.push_frame(h.method);
    jt.set_local_ref(0, h.blocks[0]);

    for k in 0..nb {
        // Step boundary: non-owners of the diagonal block yield to the factorer.
        jt.yield_now();
        // Phase 1: factor the diagonal block.
        if owner_of(cfg, n_threads, k, k) == t {
            jt.set_local_ref(1, at(k, k));
            jt.write(at(k, k), |d| factor_block(d, b));
            jt.compute((b * b * b / 3) as u64);
        }
        jt.barrier();

        // Phase 2: perimeter solves.
        let diag = jt.read(at(k, k), |d| d.to_vec());
        for j in (k + 1)..nb {
            if owner_of(cfg, n_threads, k, j) == t {
                jt.write(at(k, j), |d| solve_row_block(&diag, d, b));
                jt.compute((b * b * b / 2) as u64);
            }
        }
        for i in (k + 1)..nb {
            if owner_of(cfg, n_threads, i, k) == t {
                jt.write(at(i, k), |d| solve_col_block(&diag, d, b));
                jt.compute((b * b * b / 2) as u64);
            }
        }
        jt.barrier();

        // Phase 3: interior updates.
        for i in (k + 1)..nb {
            for j in (k + 1)..nb {
                if owner_of(cfg, n_threads, i, j) == t {
                    let a = jt.read(at(i, k), |d| d.to_vec());
                    let bm = jt.read(at(k, j), |d| d.to_vec());
                    jt.write(at(i, j), |d| update_block(d, &a, &bm, b));
                    jt.compute((b * b * b) as u64);
                }
            }
        }
        jt.barrier();
    }
    jt.pop_frame();
}

/// Sequential reference: the identical blocked algorithm on a plain matrix.
pub fn reference(cfg: &LuConfig) -> Vec<Vec<f64>> {
    let nb = cfg.nb();
    let b = cfg.block;
    let mut blocks: Vec<Vec<f64>> = (0..nb * nb)
        .map(|idx| {
            let (bi, bj) = (idx / nb, idx % nb);
            (0..b * b)
                .map(|e| matrix_entry(cfg, bi * b + e / b, bj * b + e % b))
                .collect()
        })
        .collect();
    for k in 0..nb {
        {
            let d = &mut blocks[k * nb + k];
            factor_block(d, b);
        }
        let diag = blocks[k * nb + k].clone();
        for j in (k + 1)..nb {
            solve_row_block(&diag, &mut blocks[k * nb + j], b);
        }
        for i in (k + 1)..nb {
            solve_col_block(&diag, &mut blocks[i * nb + k], b);
        }
        for i in (k + 1)..nb {
            for j in (k + 1)..nb {
                let a = blocks[i * nb + k].clone();
                let bm = blocks[k * nb + j].clone();
                update_block(&mut blocks[i * nb + j], &a, &bm, b);
            }
        }
    }
    blocks
}

/// Run LU on a prepared cluster.
pub fn run_on(cluster: &mut Cluster, cfg: LuConfig) -> RunReport {
    let n_threads = cluster.shared().n_threads;
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_threads, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_grid_covers_all_threads() {
        let cfg = LuConfig::small();
        let mut seen = vec![false; 6];
        for i in 0..8 {
            for j in 0..8 {
                seen[owner_of(&cfg, 6, i, j)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn block_kernels_factor_a_small_matrix() {
        // 2x2 block: A = [[4,2],[2,3]] → L = [[1,0],[.5,1]], U = [[4,2],[0,2]].
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        factor_block(&mut a, 2);
        assert_eq!(a, vec![4.0, 2.0, 0.5, 2.0]);
    }

    #[test]
    fn reference_reconstructs_the_matrix() {
        // L·U must reproduce the original (diagonally dominant ⇒ stable).
        let cfg = LuConfig { n: 32, block: 8 };
        let nb = cfg.nb();
        let b = cfg.block;
        let blocks = reference(&cfg);
        // Assemble full L and U.
        let n = cfg.n;
        let mut l = vec![vec![0.0f64; n]; n];
        let mut u = vec![vec![0.0f64; n]; n];
        for bi in 0..nb {
            for bj in 0..nb {
                let blk = &blocks[bi * nb + bj];
                for (e, &v) in blk.iter().enumerate() {
                    let (r, c) = (bi * b + e / b, bj * b + e % b);
                    match r.cmp(&c) {
                        std::cmp::Ordering::Greater => l[r][c] = v,
                        std::cmp::Ordering::Equal => {
                            l[r][c] = 1.0;
                            u[r][c] = v;
                        }
                        std::cmp::Ordering::Less => u[r][c] = v,
                    }
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            for c in 0..n {
                let mut dot = 0.0;
                for k in 0..=r.min(c) {
                    dot += l[r][k] * u[k][c];
                }
                let orig = matrix_entry(&cfg, r, c);
                assert!(
                    (dot - orig).abs() < 1e-8 * (1.0 + orig.abs()),
                    "A[{r}][{c}]: {dot} vs {orig}"
                );
            }
        }
    }
}
