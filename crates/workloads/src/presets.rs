//! Workload presets — Table I's problem sizes plus scaled-down variants.

use serde::{Deserialize, Serialize};

use jessy_runtime::{Cluster, RunReport};

use crate::{barnes_hut, lu, phase_shift, sessions, sor, water};

/// The three benchmarks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Red-black successive over-relaxation (coarse-grained).
    Sor,
    /// Barnes-Hut N-body (fine-grained).
    BarnesHut,
    /// Water-Spatial molecular dynamics (medium-grained).
    WaterSpatial,
    /// Blocked LU factorization (suite extension; not part of the paper's Table I,
    /// hence excluded from [`WorkloadKind::ALL`]).
    Lu,
    /// Mid-run sharing-graph flip (scenario-diversity extension; drives the
    /// drift path of the adaptive controller — excluded from
    /// [`WorkloadKind::ALL`]).
    PhaseShift,
    /// Zipf-skewed short-lived session serving (scenario-diversity extension —
    /// excluded from [`WorkloadKind::ALL`]).
    Sessions,
}

impl WorkloadKind {
    /// All three, in Table I order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Sor,
        WorkloadKind::BarnesHut,
        WorkloadKind::WaterSpatial,
    ];

    /// The benchmark's name as printed in the tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Sor => "SOR",
            WorkloadKind::BarnesHut => "Barnes-Hut",
            WorkloadKind::WaterSpatial => "Water-Spatial",
            WorkloadKind::Lu => "LU",
            WorkloadKind::PhaseShift => "Phase-Shift",
            WorkloadKind::Sessions => "Sessions",
        }
    }

    /// Table I's sharing-granularity label.
    pub fn granularity(self) -> &'static str {
        match self {
            WorkloadKind::Sor => "Coarse",
            WorkloadKind::BarnesHut => "Fine",
            WorkloadKind::WaterSpatial => "Medium",
            WorkloadKind::Lu => "Coarse",
            WorkloadKind::PhaseShift => "Fine (shifting)",
            WorkloadKind::Sessions => "Fine (skewed)",
        }
    }

    /// Table I's data-set description.
    pub fn data_set(self, preset: WorkloadPreset) -> String {
        match (self, preset) {
            (WorkloadKind::Sor, WorkloadPreset::Paper) => "2K x 2K".into(),
            (WorkloadKind::BarnesHut, WorkloadPreset::Paper) => "4K bodies".into(),
            (WorkloadKind::WaterSpatial, WorkloadPreset::Paper) => "512 molecules".into(),
            (WorkloadKind::Sor, _) => {
                let c = sor::SorConfig::small();
                format!("{} x {}", c.n, c.m)
            }
            (WorkloadKind::BarnesHut, _) => {
                format!("{} bodies", barnes_hut::BhConfig::small().n_bodies)
            }
            (WorkloadKind::WaterSpatial, _) => {
                format!("{} molecules", water::WaterConfig::small().n_molecules)
            }
            (WorkloadKind::Lu, WorkloadPreset::Paper) => {
                let c = lu::LuConfig::paper();
                format!("{0} x {0} / B{1}", c.n, c.block)
            }
            (WorkloadKind::Lu, _) => {
                let c = lu::LuConfig::small();
                format!("{0} x {0} / B{1}", c.n, c.block)
            }
            (WorkloadKind::PhaseShift, WorkloadPreset::Paper) => {
                let c = phase_shift::PhaseShiftConfig::paper();
                format!("{} cells / flip@{}", c.n_cells, c.flip_round)
            }
            (WorkloadKind::PhaseShift, _) => {
                let c = phase_shift::PhaseShiftConfig::small();
                format!("{} cells / flip@{}", c.n_cells, c.flip_round)
            }
            (WorkloadKind::Sessions, WorkloadPreset::Paper) => {
                let c = sessions::SessionsConfig::paper();
                format!("{} items / zipf {}", c.n_items, c.zipf_s)
            }
            (WorkloadKind::Sessions, _) => {
                let c = sessions::SessionsConfig::small();
                format!("{} items / zipf {}", c.n_items, c.zipf_s)
            }
        }
    }

    /// Table I's rounds count.
    pub fn rounds(self, preset: WorkloadPreset) -> usize {
        match preset {
            WorkloadPreset::Paper => match self {
                WorkloadKind::Sor => sor::SorConfig::paper().rounds,
                WorkloadKind::BarnesHut => barnes_hut::BhConfig::paper().rounds,
                WorkloadKind::WaterSpatial => water::WaterConfig::paper().rounds,
                WorkloadKind::Lu => lu::LuConfig::paper().nb(),
                WorkloadKind::PhaseShift => phase_shift::PhaseShiftConfig::paper().rounds,
                WorkloadKind::Sessions => sessions::SessionsConfig::paper().sessions_per_thread,
            },
            WorkloadPreset::Small => match self {
                WorkloadKind::Sor => sor::SorConfig::small().rounds,
                WorkloadKind::BarnesHut => barnes_hut::BhConfig::small().rounds,
                WorkloadKind::WaterSpatial => water::WaterConfig::small().rounds,
                WorkloadKind::Lu => lu::LuConfig::small().nb(),
                WorkloadKind::PhaseShift => phase_shift::PhaseShiftConfig::small().rounds,
                WorkloadKind::Sessions => sessions::SessionsConfig::small().sessions_per_thread,
            },
        }
    }

    /// Table I's object-size note.
    pub fn object_size(self) -> &'static str {
        match self {
            WorkloadKind::Sor => "each row at least several KB",
            WorkloadKind::BarnesHut => "each body less than 100 bytes",
            WorkloadKind::WaterSpatial => "each molecule about 512 bytes",
            WorkloadKind::Lu => "each block several KB",
            WorkloadKind::PhaseShift => "each cell 64 bytes",
            WorkloadKind::Sessions => "each item 64 bytes",
        }
    }

    /// Run this workload on a prepared cluster at the given preset.
    pub fn run_on(self, cluster: &mut Cluster, preset: WorkloadPreset) -> RunReport {
        match (self, preset) {
            (WorkloadKind::Sor, WorkloadPreset::Paper) => {
                sor::run_on(cluster, sor::SorConfig::paper())
            }
            (WorkloadKind::Sor, WorkloadPreset::Small) => {
                sor::run_on(cluster, sor::SorConfig::small())
            }
            (WorkloadKind::BarnesHut, WorkloadPreset::Paper) => {
                barnes_hut::run_on(cluster, barnes_hut::BhConfig::paper())
            }
            (WorkloadKind::BarnesHut, WorkloadPreset::Small) => {
                barnes_hut::run_on(cluster, barnes_hut::BhConfig::small())
            }
            (WorkloadKind::WaterSpatial, WorkloadPreset::Paper) => {
                water::run_on(cluster, water::WaterConfig::paper())
            }
            (WorkloadKind::WaterSpatial, WorkloadPreset::Small) => {
                water::run_on(cluster, water::WaterConfig::small())
            }
            (WorkloadKind::Lu, WorkloadPreset::Paper) => {
                lu::run_on(cluster, lu::LuConfig::paper())
            }
            (WorkloadKind::Lu, WorkloadPreset::Small) => {
                lu::run_on(cluster, lu::LuConfig::small())
            }
            (WorkloadKind::PhaseShift, WorkloadPreset::Paper) => {
                phase_shift::run_on(cluster, phase_shift::PhaseShiftConfig::paper())
            }
            (WorkloadKind::PhaseShift, WorkloadPreset::Small) => {
                phase_shift::run_on(cluster, phase_shift::PhaseShiftConfig::small())
            }
            (WorkloadKind::Sessions, WorkloadPreset::Paper) => {
                sessions::run_on(cluster, sessions::SessionsConfig::paper())
            }
            (WorkloadKind::Sessions, WorkloadPreset::Small) => {
                sessions::run_on(cluster, sessions::SessionsConfig::small())
            }
        }
    }
}

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadPreset {
    /// The paper's Table I sizes (for the real benchmark harness).
    Paper,
    /// Scaled-down sizes (for tests and quick iterations).
    Small,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_core::{ProfilerConfig, SamplingRate};
    use jessy_gos::CostModel;
    use jessy_net::LatencyModel;

    /// The production-scale reduction path must be invisible to a real
    /// workload's profile: SOR under the fabric aggregation tree produces the
    /// exact TCM the flat coordinator does, while its OAL ledger carries
    /// partial-TCM traffic instead of raw per-thread batches.
    #[test]
    fn sor_profile_is_bit_identical_under_tree_aggregation() {
        let run = |fanout: usize| {
            let mut cluster = Cluster::builder()
                .nodes(4)
                .threads(4)
                .latency(LatencyModel::free())
                .costs(CostModel::free())
                .profiler(ProfilerConfig::tracking_at(SamplingRate::Full))
                .tcm_tree_fanout(fanout)
                .build();
            WorkloadKind::Sor.run_on(&mut cluster, WorkloadPreset::Small)
        };
        let flat = run(0);
        let tree = run(2);
        let (flat_m, tree_m) = (flat.master.unwrap(), tree.master.unwrap());
        assert_eq!(flat_m.tcm.raw(), tree_m.tcm.raw());
        assert_eq!(flat_m.round_coverage, tree_m.round_coverage);
        assert_eq!(flat_m.reduce.tree_rounds, 0);
        assert!(tree_m.reduce.tree_rounds > 0);
    }

    #[test]
    fn table_one_metadata() {
        assert_eq!(WorkloadKind::Sor.name(), "SOR");
        assert_eq!(WorkloadKind::Sor.data_set(WorkloadPreset::Paper), "2K x 2K");
        assert_eq!(WorkloadKind::Sor.rounds(WorkloadPreset::Paper), 10);
        assert_eq!(WorkloadKind::BarnesHut.rounds(WorkloadPreset::Paper), 5);
        assert_eq!(
            WorkloadKind::WaterSpatial.data_set(WorkloadPreset::Paper),
            "512 molecules"
        );
        assert_eq!(WorkloadKind::BarnesHut.granularity(), "Fine");
        assert_eq!(WorkloadKind::ALL.len(), 3);
    }
}
