//! Phase-shift — a workload whose sharing graph flips mid-run.
//!
//! The three Table I kernels have *stable* sharing patterns, which under-stresses
//! the adaptive controller: once a class converges, nothing ever challenges the
//! frozen rate. This workload is built to do exactly that (the ROADMAP's
//! "scenario diversity" item):
//!
//! * **Phase A** (rounds `0..flip_round`): threads pair up as `(2k, 2k+1)`; each
//!   pair sweeps a *static* `2·hot`-cell window at the head of its own block of
//!   `Cell` objects every round. The per-round map is identical round over
//!   round, so the controller converges the class at the initial (coarse) rate
//!   almost immediately — correctly: a stationary footprint needs no finer
//!   look.
//! * **Phase B** (rounds `flip_round..rounds`): the pairing *rotates* (thread `t`
//!   now shares with its ring neighbour, `{(1,2), (3,4), …, (n−1, 0)}`) and each
//!   new pair touches only a `hot`-cell window whose position moves every round
//!   (deterministically, seeded by pair and round). `hot` is sized at about
//!   half the coarse sampling gap, so a stale gap straddles such a window with
//!   0-or-1 sampled cells: the frozen profiler reports pair weights that
//!   flicker between zero and one gap-scaled object — a wrong and *unstable*
//!   picture. Only finer gaps put enough sampled cells inside every window for
//!   the per-round map to settle (the round-over-round relative delta shrinks
//!   like `gap / hot`).
//!
//! The flip therefore exercises the controller's drift path end to end: the
//! post-convergence `E_ABS` spike must un-converge the class, the refinement
//! ladder must walk the rate finer, and the class must re-converge at the gap
//! phase B actually needs. Re-convergence lag is measured from the master's
//! round timeline (first un-converged round after the flip until every class is
//! converged again); [`reconvergence_lag`] computes it from a `RunReport`.

use std::sync::Arc;

use jessy_gos::ObjectId;
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// Phase-shift parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseShiftConfig {
    /// Shared `Cell` objects (64 B each), split into one block per thread pair.
    pub n_cells: usize,
    /// Cells per pair-window in phase B (phase A uses static `2·hot` windows).
    /// Sized at about *half* the coarse sampling gap (≈ 67 for 64 B cells at
    /// 1X), so stale-gap windows hold 0-or-1 sampled cells and the per-round
    /// map flickers instead of settling.
    pub hot: usize,
    /// First phase-B round (the flip point).
    pub flip_round: usize,
    /// Total rounds (one barrier — and thus one profiling interval — each).
    pub rounds: usize,
}

impl PhaseShiftConfig {
    /// Bench scale: long enough phase B for cumulative post-flip mass to
    /// dominate the run.
    pub fn paper() -> Self {
        PhaseShiftConfig {
            n_cells: 2048,
            hot: 33,
            flip_round: 6,
            rounds: 32,
        }
    }

    /// Scaled-down size for tests and smoke lanes.
    pub fn small() -> Self {
        PhaseShiftConfig {
            n_cells: 512,
            hot: 33,
            flip_round: 4,
            rounds: 16,
        }
    }
}

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct PhaseShiftHandles {
    /// The cells, in allocation (= sampling-sequence) order.
    pub cells: Vec<ObjectId>,
    /// Root object holding a reference to every cell.
    pub root: ObjectId,
    /// Method id for the worker's stack frame.
    pub method: MethodId,
}

/// Register classes and allocate the cells round-robin across nodes.
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &PhaseShiftConfig, n_nodes: usize) -> PhaseShiftHandles {
    let cell_class = ctx.register_scalar_class("Cell", 8); // 64 B
    let root_class = ctx.register_scalar_class("CellRoot", 2);
    let method = ctx.register_method("phase_shift.round", 4);
    let mut cells = Vec::with_capacity(cfg.n_cells);
    for i in 0..cfg.n_cells {
        let node = NodeId((i % n_nodes) as u16);
        cells.push(ctx.alloc_scalar_init(node, cell_class, &[0.0; 8]).id);
    }
    let root = ctx.alloc_scalar_at(NodeId(0), root_class).id;
    for &c in &cells {
        ctx.add_ref(root, c);
    }
    PhaseShiftHandles { cells, root, method }
}

/// splitmix64 — deterministic per-(pair, round) window placement. The position
/// depends only on workload inputs (never on rates or timing), so every run of
/// the same config touches the same cells: full-sampling reference runs and
/// adaptive runs see the same ground-truth access stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Phase-A pair of thread `t`: `(2k, 2k+1)` blocks.
fn pair_a(t: usize) -> usize {
    t / 2
}

/// Phase-B pair of thread `t`: the ring-rotated pairing `{(1,2), (3,4), …,
/// (n−1, 0)}` — every thread changes partners at the flip.
fn pair_b(t: usize, n_threads: usize) -> usize {
    ((t + 1) % n_threads) / 2
}

/// The cell indices thread `t` touches in round `round`, and how many sweeps it
/// makes over them. Phase-B pairs sweep `q + 1` times — a compute-time skew
/// that staggers interval lengths across pairs (the TCM weights each object
/// once per round, so the skew exercises timing, not map structure).
pub fn round_plan(
    cfg: &PhaseShiftConfig,
    n_threads: usize,
    t: usize,
    round: usize,
) -> (std::ops::Range<usize>, usize) {
    let n_pairs = (n_threads / 2).max(1);
    let block = cfg.n_cells / n_pairs;
    if round < cfg.flip_round {
        let p = pair_a(t) % n_pairs;
        (p * block..p * block + (2 * cfg.hot).min(block), 1)
    } else {
        let q = pair_b(t, n_threads) % n_pairs;
        let span = block.saturating_sub(cfg.hot).max(1);
        let start = q * block + (mix(((q as u64) << 32) | round as u64) % span as u64) as usize;
        (start..(start + cfg.hot).min(cfg.n_cells), q + 1)
    }
}

/// The per-thread body: one barrier-delimited interval per round; the sharing
/// graph flips at `cfg.flip_round`.
pub fn thread_body(jt: &mut JThread, cfg: &PhaseShiftConfig, h: &PhaseShiftHandles) {
    let t = jt.thread_id().index();
    let n_threads = jt.shared().n_threads;
    jt.push_frame(h.method);
    jt.set_local_ref(0, h.root);
    for round in 0..cfg.rounds {
        jt.yield_now();
        let (range, sweeps) = round_plan(cfg, n_threads, t, round);
        let writer = t.is_multiple_of(2);
        for _ in 0..sweeps {
            for i in range.clone() {
                if writer {
                    jt.write(h.cells[i], |d| d[0] += 1.0);
                } else {
                    jt.read(h.cells[i], |d| d[0]);
                }
            }
        }
        jt.compute(64 * (range.len() * sweeps) as u64);
        jt.barrier();
    }
    jt.pop_frame();
}

/// Run phase-shift on a prepared cluster: setup + run, returning the report.
pub fn run_on(cluster: &mut Cluster, cfg: PhaseShiftConfig) -> RunReport {
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

/// Re-convergence lag in rounds, from the master's round timeline: the number
/// of closed rounds at or after `flip_round` on which at least one class was
/// not converged. Zero means the controller never reacted to the flip (the
/// frozen-forever baseline); with drift detection it is the un-converge +
/// re-refinement window the bench reports.
pub fn reconvergence_lag(report: &RunReport, flip_round: usize) -> u64 {
    let Some(master) = &report.master else { return 0 };
    master
        .timeline
        .iter()
        .filter(|row| row.round >= flip_round as u64)
        .filter(|row| row.classes.iter().any(|c| c.class_name == "Cell" && !c.converged))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_a_windows_are_static_and_pair_disjoint() {
        let cfg = PhaseShiftConfig::small();
        let n_threads = 8;
        let block = cfg.n_cells / (n_threads / 2);
        let mut covered = vec![0u32; cfg.n_cells];
        for t in 0..n_threads {
            let (range, sweeps) = round_plan(&cfg, n_threads, t, 0);
            assert_eq!(sweeps, 1);
            assert_eq!(range.start % block, 0, "phase-A windows sit at block heads");
            assert_eq!(range.len(), (2 * cfg.hot).min(block));
            // Static: the same window every phase-A round.
            assert_eq!(range, round_plan(&cfg, n_threads, t, cfg.flip_round - 1).0);
            for i in range {
                covered[i] += 1;
            }
        }
        // Touched cells are shared by exactly the two threads of their pair.
        assert!(covered.iter().all(|&c| c == 0 || c == 2), "pair windows are disjoint");
        assert!(covered.iter().any(|&c| c == 2));
    }

    #[test]
    fn flip_changes_both_pairing_and_footprint() {
        let cfg = PhaseShiftConfig::small();
        let n = 8;
        // Thread 1's partner in phase A is 0; in phase B it is 2.
        assert_eq!(pair_a(1), pair_a(0));
        assert_ne!(pair_b(1, n), pair_b(0, n));
        assert_eq!(pair_b(1, n), pair_b(2, n));
        // Phase-B windows are `hot`-sized and move between rounds.
        let (r1, s1) = round_plan(&cfg, n, 1, cfg.flip_round);
        let (r2, _) = round_plan(&cfg, n, 1, cfg.flip_round + 1);
        assert_eq!(r1.len(), cfg.hot);
        assert_ne!(r1, r2, "the window must move round over round");
        assert!(s1 >= 1);
        // Ring partners touch the same window in the same round.
        assert_eq!(round_plan(&cfg, n, 1, cfg.flip_round).0, round_plan(&cfg, n, 2, cfg.flip_round).0);
    }

    #[test]
    fn plans_are_deterministic_and_in_bounds() {
        let cfg = PhaseShiftConfig::paper();
        for t in 0..8 {
            for round in 0..cfg.rounds {
                let (a, _) = round_plan(&cfg, 8, t, round);
                let (b, _) = round_plan(&cfg, 8, t, round);
                assert_eq!(a, b);
                assert!(a.end <= cfg.n_cells);
            }
        }
    }
}
