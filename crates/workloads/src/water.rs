//! Water-Spatial — molecular dynamics over a 3D box decomposition (Table I row 3).
//!
//! 512 molecules of ≈ 512 bytes each (medium granularity). Space is cut into a
//! `k × k × k` grid of **box objects** whose payloads list their member molecules and
//! whose reference fields point at them (the object graph sticky-set resolution
//! walks). Threads own slabs of boxes along x; forces act between molecules in the
//! same or adjacent boxes — the near-neighbour 3D-box sharing pattern of Table I.
//! Membership is rebuilt every round under per-box distributed locks, giving the
//! "evolving load distribution" the paper notes.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use jessy_gos::{ClassId, LockId, ObjectId};
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// Molecule payload: 64 words = 512 bytes. Layout: `[x,y,z, vx,vy,vz, fx,fy,fz, …pad]`.
pub const MOLECULE_WORDS: u32 = 64;
/// Box payload: `[count, slot0, slot1, …]`.
pub const BOX_CAPACITY: usize = 62;

/// Water-Spatial parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterConfig {
    /// Number of molecules.
    pub n_molecules: usize,
    /// Boxes per dimension.
    pub k: usize,
    /// Simulation rounds.
    pub rounds: usize,
    /// Box edge length (domain is `k * box_len` per side).
    pub box_len: f64,
    /// Interaction cutoff (≤ `box_len` so neighbours suffice).
    pub cutoff: f64,
    /// Time step.
    pub dt: f64,
    /// Initial speed scale (uniform per component in `[-v, v]`) — gives the molecules
    /// enough motion to migrate between boxes within a short run.
    pub init_speed: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WaterConfig {
    /// The paper's problem size: 512 molecules, 5 rounds.
    pub fn paper() -> Self {
        WaterConfig {
            n_molecules: 512,
            k: 4,
            rounds: 5,
            box_len: 2.0,
            cutoff: 1.8,
            dt: 0.002,
            init_speed: 30.0,
            seed: 7,
        }
    }

    /// Scaled-down size for tests and quick benches.
    pub fn small() -> Self {
        WaterConfig {
            n_molecules: 64,
            k: 2,
            rounds: 3,
            box_len: 2.0,
            cutoff: 1.8,
            dt: 0.002,
            init_speed: 60.0,
            seed: 7,
        }
    }

    /// Total boxes.
    pub fn n_boxes(&self) -> usize {
        self.k * self.k * self.k
    }

    /// Domain side length.
    pub fn side(&self) -> f64 {
        self.k as f64 * self.box_len
    }
}

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct WaterHandles {
    /// Molecule objects.
    pub molecules: Vec<ObjectId>,
    /// Box objects in x-major order.
    pub boxes: Vec<ObjectId>,
    /// One distributed lock per box (membership mutation).
    pub box_locks: Vec<LockId>,
    /// Molecule class.
    pub mol_class: ClassId,
    /// Box class.
    pub box_class: ClassId,
    /// Worker method id (`water.step`, the long-lived bottom frame).
    pub method: MethodId,
    /// Per-phase method id (`water.interf`, pushed during force computation).
    pub force_method: MethodId,
}

/// Box index for a position.
pub fn box_of(cfg: &WaterConfig, p: &[f64; 3]) -> usize {
    let k = cfg.k;
    let clamp = |v: f64| -> usize {
        ((v / cfg.box_len).floor().max(0.0) as usize).min(k - 1)
    };
    clamp(p[0]) * k * k + clamp(p[1]) * k + clamp(p[2])
}

/// Boxes of thread `t`: a slab of x-layers.
pub fn boxes_of(cfg: &WaterConfig, n_threads: usize, t: usize) -> Vec<usize> {
    let k = cfg.k;
    let per = k.div_ceil(n_threads.min(k));
    let owner_of_layer = |x: usize| (x / per).min(n_threads - 1);
    (0..cfg.n_boxes())
        .filter(|b| owner_of_layer(b / (k * k)) == t)
        .collect()
}

/// Neighbouring boxes (3×3×3 block, clipped at the walls), including `b` itself.
pub fn neighbours(cfg: &WaterConfig, b: usize) -> Vec<usize> {
    let k = cfg.k as isize;
    let (x, y, z) = ((b / (cfg.k * cfg.k)) as isize, ((b / cfg.k) % cfg.k) as isize, (b % cfg.k) as isize);
    let mut out = Vec::new();
    for dx in -1..=1 {
        for dy in -1..=1 {
            for dz in -1..=1 {
                let (nx, ny, nz) = (x + dx, y + dy, z + dz);
                if nx >= 0 && nx < k && ny >= 0 && ny < k && nz >= 0 && nz < k {
                    out.push((nx * k * k + ny * k + nz) as usize);
                }
            }
        }
    }
    out
}

/// Register classes, allocate molecules (uniform random in the domain) and boxes,
/// and bind the initial membership.
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &WaterConfig, n_threads: usize, n_nodes: usize) -> WaterHandles {
    let mol_class = ctx.register_scalar_class("Molecule", MOLECULE_WORDS);
    let box_class = ctx.register_scalar_class("BoxList", 1 + BOX_CAPACITY as u32);
    let method = ctx.register_method("water.step", 5);
    let force_method = ctx.register_method("water.interf", 4);

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let side = cfg.side();
    let mut positions = Vec::with_capacity(cfg.n_molecules);
    let mut molecules = Vec::with_capacity(cfg.n_molecules);

    // Owner of a box (for homing): thread owning its x-slab.
    let owner_of_box: Vec<usize> = (0..cfg.n_boxes())
        .map(|b| {
            (0..n_threads)
                .find(|&t| boxes_of(cfg, n_threads, t).contains(&b))
                .unwrap_or(0)
        })
        .collect();

    for _ in 0..cfg.n_molecules {
        let p = [
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        ];
        let mut init = vec![0.0; MOLECULE_WORDS as usize];
        init[0] = p[0];
        init[1] = p[1];
        init[2] = p[2];
        for v in &mut init[3..6] {
            *v = rng.gen_range(-cfg.init_speed..cfg.init_speed);
        }
        let owner = owner_of_box[box_of(cfg, &p)];
        let node = NodeId((owner * n_nodes / n_threads) as u16);
        molecules.push(ctx.alloc_scalar_init(node, mol_class, &init).id);
        positions.push(p);
    }

    let mut boxes = Vec::with_capacity(cfg.n_boxes());
    let mut box_locks = Vec::with_capacity(cfg.n_boxes());
    for &owner in owner_of_box.iter() {
        let node = NodeId((owner * n_nodes / n_threads) as u16);
        boxes.push(ctx.alloc_scalar_at(node, box_class).id);
        box_locks.push(ctx.register_lock());
    }
    // Initial membership.
    for (i, p) in positions.iter().enumerate() {
        let b = box_of(cfg, p);
        let gos = ctx.gos();
        gos.object(boxes[b]).add_ref(molecules[i]);
        let obj = boxes[b];
        let mol = i as f64;
        // Write membership directly into the home copy during init.
        gos.object(obj).with_home_data(|d| {
            let count = d[0] as usize;
            assert!(count < BOX_CAPACITY, "box overflow at init");
            d[1 + count] = mol;
            d[0] = count as f64 + 1.0;
        });
    }

    WaterHandles {
        molecules,
        boxes,
        box_locks,
        mol_class,
        box_class,
        method,
        force_method,
    }
}

/// Lennard-Jones-style pair force on `a` from `b` (truncated at the cutoff).
fn pair_force(pa: &[f64; 3], pb: &[f64; 3], cutoff: f64) -> [f64; 3] {
    let dx = [pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2]];
    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
    if r2 >= cutoff * cutoff || r2 < 1e-12 {
        return [0.0; 3];
    }
    let inv2 = 1.0 / r2;
    let inv6 = inv2 * inv2 * inv2;
    let mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
    // Clamp the (truncated, unshifted) LJ force for numerical robustness.
    let mag = mag.clamp(-1e3, 1e3);
    [mag * dx[0], mag * dx[1], mag * dx[2]]
}

/// Read a box's member list through the GOS.
fn members(jt: &mut JThread, box_obj: ObjectId) -> Vec<usize> {
    jt.read(box_obj, |d| {
        let count = d[0] as usize;
        d[1..1 + count].iter().map(|&m| m as usize).collect()
    })
}

/// The per-thread body: rounds of force → integrate → rebind.
pub fn thread_body(jt: &mut JThread, cfg: &WaterConfig, h: &WaterHandles) {
    let t = jt.thread_id().index();
    let n_threads = jt.shared().n_threads;
    let my_boxes = boxes_of(cfg, n_threads, t);
    jt.push_frame(h.method);
    if let Some(&b) = my_boxes.first() {
        jt.set_local_ref(0, h.boxes[b]);
    }

    for _round in 0..cfg.rounds {
        // Round boundary: a scheduling point even for threads that own no boxes.
        jt.yield_now();
        // --- Force phase: for each own box, interact members with the neighbourhood.
        jt.push_frame(h.force_method);
        let mut forces: Vec<(usize, [f64; 3])> = Vec::new();
        for &b in &my_boxes {
            jt.set_local_ref(0, h.boxes[b]);
            let mine = members(jt, h.boxes[b]);
            if mine.is_empty() {
                continue;
            }
            // Gather neighbour molecules' positions (incl. own box).
            let mut nbr_pos: Vec<(usize, [f64; 3])> = Vec::new();
            for nb in neighbours(cfg, b) {
                for m in members(jt, h.boxes[nb]) {
                    let p = jt.read(h.molecules[m], |d| [d[0], d[1], d[2]]);
                    nbr_pos.push((m, p));
                }
            }
            for &m in &mine {
                let pm = jt.read(h.molecules[m], |d| [d[0], d[1], d[2]]);
                let mut f = [0.0f64; 3];
                for (other, po) in &nbr_pos {
                    if *other == m {
                        continue;
                    }
                    let pf = pair_force(&pm, po, cfg.cutoff);
                    for k in 0..3 {
                        f[k] += pf[k];
                    }
                    // A real water-water interaction evaluates 9 atom-pair terms with
                    // square roots — over a microsecond in the paper's Kaffe-based
                    // system once bytecode overheads are included.
                    jt.compute(80);
                }
                forces.push((m, f));
            }
        }
        jt.pop_frame();
        jt.barrier();

        // --- Integrate phase: write velocities/positions of own-box molecules.
        let side = cfg.side();
        for (m, f) in &forces {
            jt.write(h.molecules[*m], |d| {
                for k in 0..3 {
                    d[3 + k] += cfg.dt * f[k];
                    d[k] += cfg.dt * d[3 + k];
                    // Reflecting walls keep everything in the domain.
                    if d[k] < 0.0 {
                        d[k] = -d[k];
                        d[3 + k] = -d[3 + k];
                    }
                    if d[k] > side {
                        d[k] = 2.0 * side - d[k];
                        d[3 + k] = -d[3 + k];
                    }
                }
            });
            jt.compute(30);
        }
        jt.barrier();

        // --- Rebind phase: move migrated molecules between boxes, under box locks.
        for &b in &my_boxes {
            let mine = members(jt, h.boxes[b]);
            for m in mine {
                let p = jt.read(h.molecules[m], |d| [d[0], d[1], d[2]]);
                let nb = box_of(cfg, &p);
                if nb != b {
                    // Remove from b, insert into nb (two locks, ordered to avoid
                    // deadlock).
                    let (first, second) = if b < nb { (b, nb) } else { (nb, b) };
                    jt.lock(h.box_locks[first]);
                    jt.lock(h.box_locks[second]);
                    // Destination capacity check first: a molecule must never vanish
                    // from the membership, so a full destination cancels the move (it
                    // will be retried next round once space frees up).
                    let dest_full =
                        jt.read(h.boxes[nb], |d| d[0] as usize >= BOX_CAPACITY);
                    if !dest_full {
                        jt.write(h.boxes[b], |d| {
                            let count = d[0] as usize;
                            if let Some(pos) = (0..count).find(|&s| d[1 + s] as usize == m) {
                                d[1 + pos] = d[count]; // swap-remove
                                d[0] = count as f64 - 1.0;
                            }
                        });
                        jt.write(h.boxes[nb], |d| {
                            let count = d[0] as usize;
                            d[1 + count] = m as f64;
                            d[0] = count as f64 + 1.0;
                        });
                        let gos = jt.gos();
                        let refs: Vec<ObjectId> = gos
                            .object(h.boxes[b])
                            .refs()
                            .into_iter()
                            .filter(|&r| r != h.molecules[m])
                            .collect();
                        gos.object(h.boxes[b]).set_refs(refs);
                        gos.object(h.boxes[nb]).add_ref(h.molecules[m]);
                    }
                    jt.unlock(h.box_locks[second]);
                    jt.unlock(h.box_locks[first]);
                }
            }
        }
        jt.barrier();
    }
    jt.pop_frame();
}

/// Total kinetic energy (diagnostic).
pub fn kinetic_energy(jt: &mut JThread, h: &WaterHandles) -> f64 {
    let mut e = 0.0;
    for &m in &h.molecules {
        e += jt.read(m, |d| d[3] * d[3] + d[4] * d[4] + d[5] * d[5]);
    }
    0.5 * e
}

/// Run Water-Spatial on a prepared cluster.
pub fn run_on(cluster: &mut Cluster, cfg: WaterConfig) -> RunReport {
    let n_threads = cluster.shared().n_threads;
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_threads, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WaterConfig {
        WaterConfig::small()
    }

    #[test]
    fn box_of_maps_positions_into_grid() {
        let c = cfg(); // k=2, box_len=2 → side 4
        assert_eq!(box_of(&c, &[0.1, 0.1, 0.1]), 0);
        assert_eq!(box_of(&c, &[3.9, 3.9, 3.9]), 7);
        assert_eq!(box_of(&c, &[3.0, 0.5, 0.5]), 4);
        // Out-of-range positions clamp to the walls.
        assert_eq!(box_of(&c, &[-1.0, 0.0, 5.0]), 1);
    }

    #[test]
    fn boxes_partition_across_threads() {
        let c = cfg();
        let mut covered: Vec<usize> = (0..2).flat_map(|t| boxes_of(&c, 2, t)).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
        // Slab ownership: thread 0 gets the x=0 layer.
        assert_eq!(boxes_of(&c, 2, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn neighbours_are_clipped_at_walls() {
        let c = cfg(); // 2x2x2
        let n = neighbours(&c, 0);
        assert_eq!(n.len(), 8, "corner box sees the whole 2³ grid");
        let c4 = WaterConfig {
            k: 4,
            ..cfg()
        };
        assert_eq!(neighbours(&c4, 21).len(), 27, "interior box sees 3³");
    }

    #[test]
    fn pair_force_is_antisymmetric_and_cut() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.2, 0.0, 0.0];
        let f_ab = pair_force(&a, &b, 1.8);
        let f_ba = pair_force(&b, &a, 1.8);
        assert!((f_ab[0] + f_ba[0]).abs() < 1e-12);
        assert!(f_ab[0].abs() > 0.0);
        assert_eq!(pair_force(&a, &[5.0, 0.0, 0.0], 1.8), [0.0; 3]);
        assert_eq!(pair_force(&a, &a, 1.8), [0.0; 3], "self-force guard");
    }
}
