//! SOR — red-black successive over-relaxation (Table I row 1).
//!
//! An `n × m` grid stored as one `double[]` object per row (a 2K-wide row is 16 KB —
//! "each row at least several KB", well past the 4 KB page size, which is why the
//! paper's SOR is effectively always at full sampling). Threads own contiguous row
//! blocks; each iteration updates red cells then black cells, reading the neighbour
//! rows above and below — the near-neighbour sharing pattern of Table I: only the
//! block-boundary rows are shared, each by exactly two adjacent threads.

use std::sync::Arc;

use jessy_gos::ObjectId;
use jessy_net::NodeId;
use jessy_runtime::{Cluster, InitCtx, JThread, RunReport};
use jessy_stack::MethodId;

/// SOR parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorConfig {
    /// Rows.
    pub n: usize,
    /// Columns (row length).
    pub m: usize,
    /// Red-black iterations.
    pub rounds: usize,
    /// Over-relaxation factor.
    pub omega: f64,
}

impl SorConfig {
    /// The paper's problem size: 2K × 2K, 10 rounds.
    pub fn paper() -> Self {
        SorConfig {
            n: 2048,
            m: 2048,
            rounds: 10,
            omega: 1.25,
        }
    }

    /// Scaled-down size for tests and quick benches.
    pub fn small() -> Self {
        SorConfig {
            n: 64,
            m: 64,
            rounds: 4,
            omega: 1.25,
        }
    }
}

/// Shared handles produced by [`setup`].
#[derive(Debug, Clone)]
pub struct SorHandles {
    /// Row objects, top to bottom.
    pub rows: Vec<ObjectId>,
    /// The matrix root object (refs → every row).
    pub matrix: ObjectId,
    /// Method id for the worker's stack frame.
    pub method: MethodId,
}

/// Rows of thread `t` (half-open range) under block distribution.
pub fn rows_of(cfg: &SorConfig, n_threads: usize, t: usize) -> std::ops::Range<usize> {
    let per = cfg.n.div_ceil(n_threads);
    let lo = (t * per).min(cfg.n);
    let hi = ((t + 1) * per).min(cfg.n);
    lo..hi
}

/// Register classes and allocate the grid, each row homed at the node of the thread
/// that owns it. Boundary rows are initialized to 1.0 (fixed boundary condition).
pub fn setup(ctx: &mut InitCtx<'_>, cfg: &SorConfig, n_threads: usize, n_nodes: usize) -> SorHandles {
    setup_with_homes(ctx, cfg, |i| {
        let owner_thread = (0..n_threads)
            .find(|&t| rows_of(cfg, n_threads, t).contains(&i))
            .unwrap_or(0);
        NodeId((owner_thread * n_nodes / n_threads) as u16)
    })
}

/// Like [`setup`] but with an explicit row → home-node mapping (used by the
/// home-migration experiments, which start from deliberately bad homings).
pub fn setup_with_homes(
    ctx: &mut InitCtx<'_>,
    cfg: &SorConfig,
    home_of_row: impl Fn(usize) -> NodeId,
) -> SorHandles {
    let row_class = ctx.register_array_class("double[]", 1);
    let matrix_class = ctx.register_scalar_class("Matrix", 2);
    let method = ctx.register_method("sor.iterate", 4);

    let mut rows = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let node = home_of_row(i);
        let init: Vec<f64> = if i == 0 || i == cfg.n - 1 {
            vec![1.0; cfg.m]
        } else {
            // Deterministic interior init with a boundary of 1.0 at both ends.
            (0..cfg.m)
                .map(|j| {
                    if j == 0 || j == cfg.m - 1 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        rows.push(ctx.alloc_array_init(node, row_class, &init).id);
    }
    let matrix = ctx.alloc_scalar_at(NodeId(0), matrix_class).id;
    for &r in &rows {
        ctx.add_ref(matrix, r);
    }
    SorHandles {
        rows,
        matrix,
        method,
    }
}

/// One color's relaxation of `row` in place, given snapshots of its neighbours.
fn relax_color(row: &mut [f64], up: &[f64], down: &[f64], color: usize, i: usize, omega: f64) {
    let m = row.len();
    let mut j = 1 + (i + color) % 2;
    while j < m - 1 {
        let nbr = up[j] + down[j] + row[j - 1] + row[j + 1];
        row[j] = (1.0 - omega) * row[j] + omega * 0.25 * nbr;
        j += 2;
    }
}

/// The per-thread body: `cfg.rounds` red-black iterations over the thread's rows.
pub fn thread_body(jt: &mut JThread, cfg: &SorConfig, h: &SorHandles) {
    let t = jt.thread_id().index();
    let n_threads = jt.shared().n_threads;
    let my_rows = rows_of(cfg, n_threads, t);
    jt.push_frame(h.method);
    jt.set_local_ref(0, h.matrix);
    if let Some(&first) = h.rows.get(my_rows.start.min(h.rows.len() - 1)..).and_then(|s| s.first())
    {
        jt.set_local_ref(1, first);
    }

    for _round in 0..cfg.rounds {
        // Round boundary: a scheduling point even for threads whose row range is
        // all fixed boundary (no accesses of their own this round).
        jt.yield_now();
        for color in 0..2usize {
            for i in my_rows.clone() {
                if i == 0 || i == cfg.n - 1 {
                    continue; // fixed boundary rows
                }
                // Snapshot neighbours (closures cannot nest GOS accesses).
                let up = jt.read(h.rows[i - 1], |d| d.to_vec());
                let down = jt.read(h.rows[i + 1], |d| d.to_vec());
                jt.write(h.rows[i], |row| {
                    relax_color(row, &up, &down, color, i, cfg.omega);
                });
                jt.compute(2 * cfg.m as u64);
            }
            jt.barrier();
        }
    }
    jt.pop_frame();
}

/// Checksum of the whole grid (validation; deterministic).
pub fn checksum(jt: &mut JThread, h: &SorHandles) -> f64 {
    let mut sum = 0.0;
    for &r in &h.rows {
        sum += jt.read(r, |d| d.iter().sum::<f64>());
    }
    sum
}

/// Sequential reference solution (for correctness tests).
pub fn reference(cfg: &SorConfig) -> Vec<Vec<f64>> {
    let mut grid: Vec<Vec<f64>> = (0..cfg.n)
        .map(|i| {
            (0..cfg.m)
                .map(|j| {
                    if i == 0 || i == cfg.n - 1 || j == 0 || j == cfg.m - 1 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    for _ in 0..cfg.rounds {
        for color in 0..2usize {
            for i in 1..cfg.n - 1 {
                let (up, rest) = grid.split_at_mut(i);
                let (row, down) = rest.split_at_mut(1);
                let row = &mut row[0];
                let up = &up[i - 1];
                let down = &down[0];
                relax_color(row, up, down, color, i, cfg.omega);
            }
        }
    }
    grid
}

/// Run SOR on a prepared cluster: setup + run, returning the report.
pub fn run_on(cluster: &mut Cluster, cfg: SorConfig) -> RunReport {
    let n_threads = cluster.shared().n_threads;
    let n_nodes = cluster.shared().n_nodes;
    let handles = cluster.init(|ctx| setup(ctx, &cfg, n_threads, n_nodes));
    let handles = Arc::new(handles);
    cluster.run(move |jt| thread_body(jt, &cfg, &handles));
    cluster.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_of_partitions_exactly() {
        let cfg = SorConfig {
            n: 10,
            m: 4,
            rounds: 1,
            omega: 1.0,
        };
        let covered: Vec<usize> = (0..3).flat_map(|t| rows_of(&cfg, 3, t)).collect();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reference_converges_toward_boundary_value() {
        let cfg = SorConfig {
            n: 8,
            m: 8,
            rounds: 200,
            omega: 1.25,
        };
        let grid = reference(&cfg);
        // With all boundaries at 1.0 the interior converges to 1.0.
        for row in &grid[1..7] {
            for &v in &row[1..7] {
                assert!((v - 1.0).abs() < 1e-6, "not converged: {v}");
            }
        }
    }

    #[test]
    fn relax_color_touches_only_its_color() {
        let mut row = vec![0.0; 8];
        let up = vec![4.0; 8];
        let down = vec![4.0; 8];
        relax_color(&mut row, &up, &down, 0, 2, 1.0);
        // i+color even → j starts at 1+(2+0)%2 = 1, stride 2: j = 1,3,5.
        for (j, v) in row.iter().enumerate() {
            if j % 2 == 1 && j < 7 {
                assert!(*v != 0.0, "cell {j} should be updated");
            } else {
                assert_eq!(*v, 0.0, "cell {j} must be untouched");
            }
        }
    }
}
