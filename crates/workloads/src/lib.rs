//! # jessy-workloads — the paper's application benchmarks
//!
//! Rust ports of the three SPLASH-2-derived programs of Table I, written against the
//! `jessy-runtime` [`jessy_runtime::JThread`] API so every shared-data access flows
//! through the GOS (and from there through the profiler):
//!
//! | Benchmark | Data set | Rounds | Granularity | Object size |
//! |-----------|----------|--------|-------------|-------------|
//! | SOR | 2K × 2K | 10 | coarse | each row ≥ several KB |
//! | Barnes-Hut | 4K bodies | 5 | fine | each body < 100 bytes |
//! | Water-Spatial | 512 molecules | 5 | medium | each molecule ≈ 512 bytes |
//!
//! Each module exposes a `Config`, a `setup` (class registration + distributed
//! allocation from the cluster's [`jessy_runtime::InitCtx`]), a `thread_body` (what
//! each application thread runs), and a `run_on` convenience driving a whole cluster.
//! [`presets`] carries the paper-scale parameters plus scaled-down variants for tests
//! and quick benches.
//!
//! The workloads maintain real Java-like stack frames (roots in locals) so stack
//! sampling has genuine material, and real object-graph references (matrix → rows,
//! octree cells → children, boxes → molecules) so sticky-set resolution has a graph
//! to walk.


#![warn(missing_docs)]
pub mod barnes_hut;
pub mod lu;
pub mod phase_shift;
pub mod presets;
pub mod sessions;
pub mod sor;
pub mod water;

pub use presets::{WorkloadKind, WorkloadPreset};
