//! Property tests for the interconnect accounting.

use proptest::prelude::*;

use jessy_net::{ClockBoard, Fabric, LatencyModel, MsgClass, NetworkStats, NodeId, ThreadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ledger_since_and_merge_are_inverses(
        events in prop::collection::vec((0usize..13, 0u64..10_000), 0..60),
        split in 0usize..60,
    ) {
        let mut all = NetworkStats::new();
        let mut first = NetworkStats::new();
        for (i, (class, bytes)) in events.iter().enumerate() {
            all.record(MsgClass::ALL[*class], *bytes);
            if i < split {
                first.record(MsgClass::ALL[*class], *bytes);
            }
        }
        let delta = all.since(&first);
        let mut rebuilt = first.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, all);
    }

    #[test]
    fn partitions_cover_the_ledger(
        events in prop::collection::vec((0usize..13, 0u64..10_000), 0..60),
    ) {
        let mut s = NetworkStats::new();
        for (class, bytes) in &events {
            s.record(MsgClass::ALL[*class], *bytes);
        }
        prop_assert_eq!(
            s.gos_bytes() + s.oal_bytes() + s.migration_bytes(),
            s.total_bytes(),
            "every class belongs to exactly one ledger partition"
        );
    }

    #[test]
    fn fabric_charges_match_the_latency_model(
        sends in prop::collection::vec((0u16..4, 0u16..4, 0usize..5_000), 1..40),
        base in 0u64..100_000,
        per_byte in 0u32..200,
    ) {
        let model = LatencyModel { base_ns: base, ns_per_byte: per_byte as f64 };
        let fabric = Fabric::new(4, model).expect("non-empty fabric");
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let mut expected = 0u64;
        let mut expected_bytes = 0u64;
        for (from, to, bytes) in &sends {
            let cost = fabric.send(NodeId(*from), NodeId(*to), MsgClass::ObjData, *bytes, &clock);
            if from == to {
                prop_assert_eq!(cost, 0, "local messages are free");
            } else {
                let total = bytes + MsgClass::ObjData.header_bytes();
                prop_assert_eq!(cost, model.one_way_ns(total));
                expected += cost;
                expected_bytes += total as u64;
            }
        }
        prop_assert_eq!(clock.now(), expected);
        prop_assert_eq!(fabric.stats().total_bytes(), expected_bytes);
    }

    #[test]
    fn clock_raise_is_idempotent_and_monotone(raises in prop::collection::vec(0u64..1_000_000, 1..50)) {
        let board = ClockBoard::new(1);
        let h = board.handle(ThreadId(0));
        let mut max_seen = 0;
        for r in &raises {
            let after = h.raise_to(*r);
            max_seen = max_seen.max(*r);
            prop_assert_eq!(after, max_seen);
            prop_assert_eq!(h.raise_to(*r), max_seen, "re-raising never lowers");
        }
    }
}
