//! Deterministic fault injection for the simulated interconnect.
//!
//! The paper's profiling pipeline assumes a polite network: every OAL batch reaches the
//! master's correlation daemon, exactly once, in order. Real clusters drop, duplicate
//! and delay messages, and whole nodes go quiet. A [`FaultPlan`] describes such a chaos
//! schedule; a [`FaultInjector`] turns it into per-message [`FaultDecision`]s that the
//! [`crate::Fabric`] and [`crate::Mailbox`] consult on every send.
//!
//! Decisions are **derived, not drawn**: each one is a pure hash of
//! `(seed, from, to, class, key)`, where `key` is either a content key supplied by the
//! caller (e.g. `(thread, interval)` for an OAL batch — see [`oal_fault_key`]) or a
//! per-link-per-class sequence number. Content-keyed decisions are bit-stable across
//! runs regardless of thread scheduling; sequence-keyed decisions are stable for any
//! fixed per-link message order. A plan with all probabilities zero injects nothing and
//! leaves every byte and nanosecond of the fault-free run untouched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ids::{NodeId, ThreadId};
use crate::message::{MsgClass, NUM_MSG_CLASSES};

/// A window of outbound messages during which a node is unresponsive (e.g. a GC pause
/// or a transient network partition). Every message the node sends while its outbound
/// message counter is in `[start_msg, end_msg)` is suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallWindow {
    /// The stalled node.
    pub node: NodeId,
    /// First outbound message index (inclusive) covered by the stall.
    pub start_msg: u64,
    /// First outbound message index past the stall (exclusive).
    pub end_msg: u64,
}

/// A window of profiling intervals during which a worker node is crashed (process
/// gone, not merely silent): its threads ship no OALs and any state the node held is
/// lost. If `until_interval` is `None` the node never restarts; otherwise it rejoins
/// at `until_interval` with a fresh epoch handshake.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First profiling interval (inclusive) during which the node is down.
    pub from_interval: u64,
    /// First interval past the crash (exclusive); `None` means crash-stop forever.
    pub until_interval: Option<u64>,
}

impl CrashWindow {
    /// True if the node is down while closing profiling interval `interval`.
    #[inline]
    pub fn covers(&self, interval: u64) -> bool {
        interval >= self.from_interval && self.until_interval.is_none_or(|u| interval < u)
    }
}

/// A window of profiling intervals during which the **master** correlation daemon is
/// crashed. Its volatile state (open rounds, adaptive baselines, the un-snapshotted
/// TCM tail) dies with it; OAL batches in flight over `[from_interval,
/// until_interval)` are deferred by the transport until the restart. At
/// `until_interval` the master restarts, restores its latest checkpoint and replays
/// its buffered post-checkpoint OALs under a bumped epoch. Master windows are always
/// finite — a master that never restarts is just a shorter run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MasterCrashWindow {
    /// First profiling interval (inclusive) during which the master is down.
    pub from_interval: u64,
    /// First interval past the crash (exclusive); the restart point.
    pub until_interval: u64,
}

impl MasterCrashWindow {
    /// True if the master is down for OALs closing profiling interval `interval`.
    #[inline]
    pub fn covers(&self, interval: u64) -> bool {
        (self.from_interval..self.until_interval).contains(&interval)
    }
}

/// A window of **virtual time** during which a set of nodes (the *island*) is
/// partitioned from the rest of the cluster. Any message whose endpoints straddle the
/// island boundary while `now_ns ∈ [from_ns, heal_ns)` is severed: one-way traffic is
/// counted as partitioned, synchronous round trips pay timeout+retransmit cycles until
/// the partition heals, and OAL batches crossing the cut are deferred (shipped after
/// the heal under the epoch they were closed in) or, if the partition never heals,
/// recorded as attributable loss. `heal_ns == None` means the partition is permanent.
///
/// Windows are keyed by virtual nanoseconds — the same clock that drives `Fabric`
/// charging and round deadlines — so a partition schedule is reproducible wherever the
/// schedule of the run itself is (i.e. under the deterministic executor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// The nodes on one side of the cut (the other side is everyone else). The master
    /// daemon's services live on [`NodeId::MASTER`] (node 0), so an island containing
    /// node 0 severs profiling traffic of every node outside it.
    pub island: Vec<NodeId>,
    /// Virtual nanosecond (inclusive) at which the partition begins.
    pub from_ns: u64,
    /// Virtual nanosecond (exclusive) at which the partition heals; `None` = never.
    pub heal_ns: Option<u64>,
}

impl PartitionWindow {
    /// True if this window severs the directed link `from -> to` at virtual `now_ns`:
    /// the window is active and exactly one endpoint is inside the island.
    #[inline]
    pub fn severs(&self, from: NodeId, to: NodeId, now_ns: u64) -> bool {
        now_ns >= self.from_ns
            && self.heal_ns.is_none_or(|h| now_ns < h)
            && (self.island.contains(&from) != self.island.contains(&to))
    }
}

/// A window of **virtual time** during which a node is merely *slow*, not dead — the
/// gray failure mode (an overloaded CPU, a flaky disk, a half-duplex NIC): every unit
/// of service time its threads charge while `now_ns ∈ [from_ns, until_ns)` is
/// multiplied by `factor`. The node keeps participating in the protocol — its OALs
/// still ship, just later — so failure detectors built on liveness never fire; only
/// latency-sensitive machinery (round deadlines, the master's straggler EWMAs) can
/// see it. Overlapping windows take the maximum factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowWindow {
    /// The slow node.
    pub node: NodeId,
    /// Virtual nanosecond (inclusive) at which the slowdown begins.
    pub from_ns: u64,
    /// Virtual nanosecond (exclusive) at which it ends; `None` = slow forever.
    pub until_ns: Option<u64>,
    /// Service-time multiplier (> 1); e.g. `3.0` makes the node 3× slower.
    pub factor: f64,
}

impl SlowWindow {
    /// True if this window slows `node` at virtual `now_ns`.
    #[inline]
    pub fn active(&self, node: NodeId, now_ns: u64) -> bool {
        self.node == node && now_ns >= self.from_ns && self.until_ns.is_none_or(|u| now_ns < u)
    }
}

/// A declarative, seedable schedule of network faults.
///
/// All probabilities are per message in `[0, 1]`. The effective drop probability of a
/// message is the **maximum** of the base rate, its class override and its link
/// override — overrides strengthen, never weaken, the base plan.
///
/// ```
/// use jessy_net::FaultPlan;
/// let plan = FaultPlan { oal_drop: 0.10, ..FaultPlan::default() };
/// assert!(!plan.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed feeding every per-message decision hash.
    pub seed: u64,
    /// Base drop probability applied to every message class.
    pub drop_prob: f64,
    /// Drop probability for [`MsgClass::OalBatch`] traffic (profiling batches). Takes
    /// the maximum with `drop_prob`.
    pub oal_drop: f64,
    /// Per-class drop overrides; each takes the maximum with `drop_prob`.
    pub class_drop: Vec<(MsgClass, f64)>,
    /// Per-directed-link drop overrides `(from, to, prob)`; each takes the maximum
    /// with the class-level probability.
    pub link_drop: Vec<(NodeId, NodeId, f64)>,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a message suffers a latency spike of `delay_spike_ns`.
    pub delay_prob: f64,
    /// Extra simulated nanoseconds charged when a delay spike fires.
    pub delay_spike_ns: u64,
    /// Outbound-silence windows per node.
    pub stalls: Vec<StallWindow>,
    /// Crash-stop windows for worker nodes (process down, optional restart).
    pub node_crashes: Vec<CrashWindow>,
    /// Crash-restart windows for the master correlation daemon.
    pub master_crashes: Vec<MasterCrashWindow>,
    /// Network partition windows over virtual time (node islands, optional heal).
    pub partitions: Vec<PartitionWindow>,
    /// Gray-failure windows: per-node service-time multipliers over virtual time.
    pub slow: Vec<SlowWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED_CAFE,
            drop_prob: 0.0,
            oal_drop: 0.0,
            class_drop: Vec::new(),
            link_drop: Vec::new(),
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay_spike_ns: 1_000_000, // 1 ms, ~a Fast Ethernet TCP retransmission stall
            stalls: Vec::new(),
            node_crashes: Vec::new(),
            master_crashes: Vec::new(),
            partitions: Vec::new(),
            slow: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True if this plan injects nothing: the injector takes a zero-cost path and the
    /// run is bit-identical to one without any plan at all.
    pub fn is_zero(&self) -> bool {
        self.drop_prob == 0.0
            && self.oal_drop == 0.0
            && self.class_drop.iter().all(|(_, p)| *p == 0.0)
            && self.link_drop.iter().all(|(_, _, p)| *p == 0.0)
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.stalls.is_empty()
            && self.node_crashes.is_empty()
            && self.master_crashes.is_empty()
            && self.partitions.is_empty()
            && self.slow.is_empty()
    }

    /// Check that every probability is a finite number in `[0, 1]` and every stall or
    /// crash window is non-empty, naming the offending node, field and value.
    pub fn validate(&self) -> Result<(), NetError> {
        let check = |name: &str, p: f64| -> Result<(), NetError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::InvalidFaultPlan(format!(
                    "{name} = {p} is not a probability in [0, 1]"
                )));
            }
            Ok(())
        };
        check("drop_prob", self.drop_prob)?;
        check("oal_drop", self.oal_drop)?;
        check("duplicate_prob", self.duplicate_prob)?;
        check("delay_prob", self.delay_prob)?;
        for (class, p) in &self.class_drop {
            check(&format!("class_drop[{}]", class.label()), *p)?;
        }
        for (from, to, p) in &self.link_drop {
            check(&format!("link_drop[{from}->{to}]"), *p)?;
        }
        for w in &self.stalls {
            if w.end_msg <= w.start_msg {
                return Err(NetError::InvalidFaultPlan(format!(
                    "stall window on {}: end_msg {} <= start_msg {} (window is empty)",
                    w.node, w.end_msg, w.start_msg
                )));
            }
        }
        for w in &self.node_crashes {
            if let Some(until) = w.until_interval {
                if until <= w.from_interval {
                    return Err(NetError::InvalidFaultPlan(format!(
                        "crash window on {}: until_interval {} <= from_interval {} \
                         (window is empty)",
                        w.node, until, w.from_interval
                    )));
                }
            }
        }
        for w in &self.master_crashes {
            if w.until_interval <= w.from_interval {
                return Err(NetError::InvalidFaultPlan(format!(
                    "master crash window: until_interval {} <= from_interval {} \
                     (master windows must be finite and non-empty)",
                    w.until_interval, w.from_interval
                )));
            }
        }
        for (i, w) in self.partitions.iter().enumerate() {
            if w.island.is_empty() {
                return Err(NetError::InvalidFaultPlan(format!(
                    "partition window {i}: island is empty (severs nothing)"
                )));
            }
            if let Some(heal) = w.heal_ns {
                if heal <= w.from_ns {
                    return Err(NetError::InvalidFaultPlan(format!(
                        "partition window {i}: heal_ns {} <= from_ns {} (window is empty)",
                        heal, w.from_ns
                    )));
                }
            }
        }
        for w in &self.slow {
            if !w.factor.is_finite() || w.factor <= 1.0 {
                return Err(NetError::InvalidFaultPlan(format!(
                    "slow window on {}: factor {} must be a finite multiplier exceeding 1",
                    w.node, w.factor
                )));
            }
            if let Some(until) = w.until_ns {
                if until <= w.from_ns {
                    return Err(NetError::InvalidFaultPlan(format!(
                        "slow window on {}: until_ns {} <= from_ns {} (window is empty)",
                        w.node, until, w.from_ns
                    )));
                }
            }
        }
        Ok(())
    }

    /// Check that every node the plan names exists in a cluster of `n_nodes` nodes,
    /// naming the offending field and node. Split from [`validate`](Self::validate)
    /// because only the cluster builder (and the fabric) know the topology.
    pub fn validate_bounds(&self, n_nodes: usize) -> Result<(), NetError> {
        let check = |field: &str, node: NodeId| -> Result<(), NetError> {
            if node.index() >= n_nodes {
                return Err(NetError::InvalidFaultPlan(format!(
                    "{field}: node {node} is out of range for a {n_nodes}-node cluster"
                )));
            }
            Ok(())
        };
        for (from, to, _) in &self.link_drop {
            check("link_drop", *from)?;
            check("link_drop", *to)?;
        }
        for w in &self.stalls {
            check("stall window", w.node)?;
        }
        for w in &self.node_crashes {
            check("crash window", w.node)?;
        }
        for (i, w) in self.partitions.iter().enumerate() {
            for node in &w.island {
                check(&format!("partition window {i} island"), *node)?;
            }
        }
        for w in &self.slow {
            check("slow window", w.node)?;
        }
        Ok(())
    }

    /// True if any partition window severs the directed link `from -> to` at virtual
    /// `now_ns`. Pure function of the plan and the clock — no injector state.
    pub fn severed(&self, from: NodeId, to: NodeId, now_ns: u64) -> bool {
        !self.partitions.is_empty()
            && from != to
            && self.partitions.iter().any(|w| w.severs(from, to, now_ns))
    }

    /// The earliest virtual nanosecond at which **every** partition window severing
    /// `from -> to` at `now_ns` has healed, or `None` if one of them never heals.
    /// (`Some(now_ns)` if the link is not severed at all.)
    pub fn heal_at(&self, from: NodeId, to: NodeId, now_ns: u64) -> Option<u64> {
        let mut heal = now_ns;
        for w in &self.partitions {
            if w.severs(from, to, now_ns) {
                heal = heal.max(w.heal_ns?);
            }
        }
        Some(heal)
    }

    /// The service-time multiplier in force for `node` at virtual `now_ns`: the
    /// maximum factor over all active slow windows, or `1.0` when none applies.
    /// Pure function of the plan and the clock — no injector state.
    pub fn slow_factor_at(&self, node: NodeId, now_ns: u64) -> f64 {
        self.slow
            .iter()
            .filter(|w| w.active(node, now_ns))
            .fold(1.0f64, |acc, w| acc.max(w.factor))
    }

    /// True if the plan schedules any slow window for `node` at all (fast gate for
    /// the runtime's per-access inflation check).
    pub fn slows(&self, node: NodeId) -> bool {
        self.slow.iter().any(|w| w.node == node)
    }

    /// True if worker node `node` is crashed while closing profiling interval
    /// `interval`. Pure function of the plan — no injector state involved.
    pub fn node_down_at(&self, node: NodeId, interval: u64) -> bool {
        self.node_crashes
            .iter()
            .any(|w| w.node == node && w.covers(interval))
    }

    /// True if the master daemon is crashed for OALs closing interval `interval`.
    pub fn master_down_at(&self, interval: u64) -> bool {
        self.master_crashes.iter().any(|w| w.covers(interval))
    }

    /// How many distinct crash windows the plan schedules for `node`.
    pub fn crash_count(&self, node: NodeId) -> u32 {
        self.node_crashes.iter().filter(|w| w.node == node).count() as u32
    }

    /// The interval from which `node` is quarantined, given that nodes crashing more
    /// than `threshold` times are expelled: the start of its `(threshold + 1)`-th
    /// crash window (in `from_interval` order), or `None` if it never crosses the
    /// threshold. Pure function of the plan, so master and workers agree on it
    /// without extra protocol traffic.
    pub fn quarantine_from(&self, node: NodeId, threshold: u32) -> Option<u64> {
        let mut starts: Vec<u64> = self
            .node_crashes
            .iter()
            .filter(|w| w.node == node)
            .map(|w| w.from_interval)
            .collect();
        if starts.len() <= threshold as usize {
            return None;
        }
        starts.sort_unstable();
        Some(starts[threshold as usize])
    }
}

/// The outcome the injector decreed for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// The message is lost (never delivered / the round trip times out once).
    pub dropped: bool,
    /// The message is delivered twice.
    pub duplicated: bool,
    /// Extra latency charged on top of the model cost.
    pub extra_delay_ns: u64,
}

impl FaultDecision {
    /// A decision injecting nothing.
    pub const CLEAN: FaultDecision = FaultDecision {
        dropped: false,
        duplicated: false,
        extra_delay_ns: 0,
    };

    /// True if the message passes through untouched.
    pub fn is_clean(&self) -> bool {
        *self == Self::CLEAN
    }
}

/// Counters of injected faults, snapshotted into [`crate::NetworkStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// One-way messages injected as lost.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Delay spikes injected.
    pub delayed: u64,
    /// Messages suppressed by a node stall window.
    pub stalled: u64,
    /// Synchronous round trips that hit a drop and paid a retransmission.
    pub retransmits: u64,
    /// OAL batches never sent because the owning node was inside a crash window.
    pub crash_suppressed: u64,
    /// One-way messages severed by an active partition window.
    pub partitioned: u64,
    /// OAL batches deferred across a partition (shipped after the heal, or recorded
    /// as lost if the partition never heals).
    pub oals_deferred: u64,
}

impl FaultStats {
    /// True if nothing was injected.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Total injected events of any kind.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.delayed
            + self.stalled
            + self.retransmits
            + self.crash_suppressed
            + self.partitioned
            + self.oals_deferred
    }

    /// Element-wise difference `self - earlier` (saturating; counters are monotonic).
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            dropped: self.dropped.saturating_sub(earlier.dropped),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            delayed: self.delayed.saturating_sub(earlier.delayed),
            stalled: self.stalled.saturating_sub(earlier.stalled),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            crash_suppressed: self.crash_suppressed.saturating_sub(earlier.crash_suppressed),
            partitioned: self.partitioned.saturating_sub(earlier.partitioned),
            oals_deferred: self.oals_deferred.saturating_sub(earlier.oals_deferred),
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.stalled += other.stalled;
        self.retransmits += other.retransmits;
        self.crash_suppressed += other.crash_suppressed;
        self.partitioned += other.partitioned;
        self.oals_deferred += other.oals_deferred;
    }
}

/// Deterministic fault oracle shared by the fabric and the lossy mailbox senders.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Effective per-class drop probability (base maxed with overrides).
    class_drop: [f64; NUM_MSG_CLASSES],
    /// Per-directed-link drop floor, keyed by `(from, to)`.
    link_drop: HashMap<(u16, u16), f64>,
    /// Per-(from, to, class) sequence numbers for sequence-keyed decisions.
    link_seq: Mutex<HashMap<(u16, u16, u8), u64>>,
    /// Per-node outbound message counters driving stall windows.
    node_seq: Mutex<HashMap<u16, u64>>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    stalled: AtomicU64,
    retransmits: AtomicU64,
    crash_suppressed: AtomicU64,
    partitioned: AtomicU64,
    oals_deferred: AtomicU64,
}

impl FaultInjector {
    /// Build an injector from a validated plan.
    pub fn new(plan: FaultPlan) -> Result<Self, NetError> {
        plan.validate()?;
        let mut class_drop = [plan.drop_prob; NUM_MSG_CLASSES];
        let oal = class_drop[MsgClass::OalBatch.index()].max(plan.oal_drop);
        class_drop[MsgClass::OalBatch.index()] = oal;
        for (class, p) in &plan.class_drop {
            let slot = &mut class_drop[class.index()];
            *slot = slot.max(*p);
        }
        let mut link_drop = HashMap::new();
        for (from, to, p) in &plan.link_drop {
            let slot = link_drop.entry((from.0, to.0)).or_insert(0.0f64);
            *slot = slot.max(*p);
        }
        Ok(FaultInjector {
            plan,
            class_drop,
            link_drop,
            link_seq: Mutex::new(HashMap::new()),
            node_seq: Mutex::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            crash_suppressed: AtomicU64::new(0),
            partitioned: AtomicU64::new(0),
            oals_deferred: AtomicU64::new(0),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if the plan injects nothing (fast path: skip all bookkeeping).
    pub fn is_zero(&self) -> bool {
        self.plan.is_zero()
    }

    /// True if worker node `node` is crashed while closing profiling interval
    /// `interval`. Pure delegation to the plan — derived, never drawn.
    #[inline]
    pub fn node_down_at(&self, node: NodeId, interval: u64) -> bool {
        !self.plan.node_crashes.is_empty() && self.plan.node_down_at(node, interval)
    }

    /// Record one OAL batch that was never sent because its node was crashed.
    pub fn note_crash_suppressed(&self) {
        self.crash_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// True if a partition window severs the directed link `from -> to` at virtual
    /// `now_ns`. Pure delegation to the plan — derived, never drawn.
    #[inline]
    pub fn severed(&self, from: NodeId, to: NodeId, now_ns: u64) -> bool {
        self.plan.severed(from, to, now_ns)
    }

    /// Record one one-way message severed by a partition.
    pub fn note_partitioned(&self) {
        self.partitioned.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one OAL batch deferred across a partition.
    pub fn note_oal_deferred(&self) {
        self.oals_deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` synchronous round-trip retransmissions (partition retry cycles).
    pub fn note_retransmits(&self, n: u64) {
        self.retransmits.fetch_add(n, Ordering::Relaxed);
    }

    /// Decide the fate of a one-way message, keyed by this link+class's sequence
    /// number. Deterministic for any fixed per-link send order.
    pub fn decide(&self, from: NodeId, to: NodeId, class: MsgClass) -> FaultDecision {
        if self.is_zero() {
            return FaultDecision::CLEAN;
        }
        let seq = {
            let mut m = self.link_seq.lock();
            let c = m.entry((from.0, to.0, class as u8)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.decide_inner(from, to, class, seq, false)
    }

    /// Decide the fate of a one-way message identified by a caller-supplied content
    /// key (see [`oal_fault_key`]). Bit-stable across runs regardless of scheduling.
    pub fn decide_keyed(&self, from: NodeId, to: NodeId, class: MsgClass, key: u64) -> FaultDecision {
        if self.is_zero() {
            return FaultDecision::CLEAN;
        }
        self.decide_inner(from, to, class, key, false)
    }

    /// Decide the fate of a synchronous round trip. A drop here means the requester
    /// times out once and retransmits (counted as a retransmit, not a loss — the
    /// protocol stays lock-step, it just pays for the retry).
    pub fn decide_sync(&self, from: NodeId, to: NodeId, class: MsgClass) -> FaultDecision {
        if self.is_zero() {
            return FaultDecision::CLEAN;
        }
        let seq = {
            let mut m = self.link_seq.lock();
            let c = m.entry((from.0, to.0, class as u8)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.decide_inner(from, to, class, seq, true)
    }

    fn decide_inner(
        &self,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
        key: u64,
        sync: bool,
    ) -> FaultDecision {
        // Stall windows fire on the sending node's outbound message counter and
        // trump every probabilistic decision.
        if !self.plan.stalls.is_empty() {
            let n = {
                let mut m = self.node_seq.lock();
                let c = m.entry(from.0).or_insert(0);
                let s = *c;
                *c += 1;
                s
            };
            let stalled = self
                .plan
                .stalls
                .iter()
                .any(|w| w.node == from && (w.start_msg..w.end_msg).contains(&n));
            if stalled {
                self.stalled.fetch_add(1, Ordering::Relaxed);
                return FaultDecision {
                    dropped: true,
                    duplicated: false,
                    extra_delay_ns: 0,
                };
            }
        }

        let mut p_drop = self.class_drop[class.index()];
        if let Some(link) = self.link_drop.get(&(from.0, to.0)) {
            p_drop = p_drop.max(*link);
        }

        let mut d = FaultDecision::CLEAN;
        if p_drop > 0.0 && self.roll(from, to, class, key, SALT_DROP) < p_drop {
            d.dropped = true;
            if sync {
                self.retransmits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !d.dropped
            && self.plan.duplicate_prob > 0.0
            && self.roll(from, to, class, key, SALT_DUP) < self.plan.duplicate_prob
        {
            d.duplicated = true;
            self.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        if self.plan.delay_prob > 0.0
            && self.roll(from, to, class, key, SALT_DELAY) < self.plan.delay_prob
        {
            d.extra_delay_ns = self.plan.delay_spike_ns;
            self.delayed.fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    /// Uniform draw in `[0, 1)` as a pure function of the decision coordinates.
    fn roll(&self, from: NodeId, to: NodeId, class: MsgClass, key: u64, salt: u64) -> f64 {
        let mut h = self.plan.seed ^ salt;
        h = splitmix64(h ^ ((from.0 as u64) << 32 | to.0 as u64));
        h = splitmix64(h ^ (class as u64));
        h = splitmix64(h ^ key);
        // 53 high bits -> f64 in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Snapshot of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            crash_suppressed: self.crash_suppressed.load(Ordering::Relaxed),
            partitioned: self.partitioned.load(Ordering::Relaxed),
            oals_deferred: self.oals_deferred.load(Ordering::Relaxed),
        }
    }

    /// Reset counters and sequence state (between benchmark repetitions).
    pub fn reset(&self) {
        self.link_seq.lock().clear();
        self.node_seq.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.delayed.store(0, Ordering::Relaxed);
        self.stalled.store(0, Ordering::Relaxed);
        self.retransmits.store(0, Ordering::Relaxed);
        self.crash_suppressed.store(0, Ordering::Relaxed);
        self.partitioned.store(0, Ordering::Relaxed);
        self.oals_deferred.store(0, Ordering::Relaxed);
    }
}

const SALT_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DUP: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_DELAY: u64 = 0x1656_67B1_9E37_79F9;

/// Content key identifying an OAL batch: the `(thread, interval)` pair it closes.
/// Using content instead of arrival order makes OAL fault decisions independent of
/// thread scheduling, so a faulty run is reproducible end to end.
pub fn oal_fault_key(thread: ThreadId, interval: u64) -> u64 {
    splitmix64(((thread.0 as u64) << 32) ^ interval)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            oal_drop: 0.5,
            duplicate_prob: 0.2,
            delay_prob: 0.1,
            delay_spike_ns: 500,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn zero_plan_is_clean_and_free() {
        let inj = FaultInjector::new(FaultPlan::default()).unwrap();
        assert!(inj.is_zero());
        for i in 0..100 {
            let d = inj.decide_keyed(NodeId(1), NodeId::MASTER, MsgClass::OalBatch, i);
            assert!(d.is_clean());
        }
        assert!(inj.stats().is_zero());
        // The zero fast path must not even advance sequence state.
        assert!(inj.link_seq.lock().is_empty());
    }

    #[test]
    fn keyed_decisions_are_reproducible_and_order_independent() {
        let a = FaultInjector::new(lossy_plan()).unwrap();
        let b = FaultInjector::new(lossy_plan()).unwrap();
        let keys: Vec<u64> = (0..200).map(|i| oal_fault_key(ThreadId(i as u32 % 8), i / 8)).collect();
        let fwd: Vec<_> = keys
            .iter()
            .map(|k| a.decide_keyed(NodeId(1), NodeId::MASTER, MsgClass::OalBatch, *k))
            .collect();
        let rev: Vec<_> = keys
            .iter()
            .rev()
            .map(|k| b.decide_keyed(NodeId(1), NodeId::MASTER, MsgClass::OalBatch, *k))
            .collect();
        let mut rev = rev;
        rev.reverse();
        assert_eq!(fwd, rev);
        assert!(fwd.iter().any(|d| d.dropped), "p=0.5 over 200 draws");
        assert!(fwd.iter().any(|d| !d.dropped));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let inj = FaultInjector::new(FaultPlan {
            oal_drop: 0.3,
            ..FaultPlan::default()
        })
        .unwrap();
        let n = 10_000u64;
        let dropped = (0..n)
            .filter(|i| {
                inj.decide_keyed(NodeId(2), NodeId::MASTER, MsgClass::OalBatch, *i)
                    .dropped
            })
            .count() as f64;
        let rate = dropped / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical drop rate {rate}");
        assert_eq!(inj.stats().dropped, dropped as u64);
    }

    #[test]
    fn class_and_link_overrides_take_the_max() {
        let inj = FaultInjector::new(FaultPlan {
            drop_prob: 0.1,
            class_drop: vec![(MsgClass::DiffUpdate, 0.9)],
            link_drop: vec![(NodeId(3), NodeId(0), 1.0)],
            ..FaultPlan::default()
        })
        .unwrap();
        // Link override at 1.0: everything on 3->0 drops, whatever the class.
        for i in 0..20 {
            assert!(inj.decide_keyed(NodeId(3), NodeId(0), MsgClass::ObjFetch, i).dropped);
        }
        // Class override at 0.9 dominates the 0.1 base on other links.
        let dropped = (0..1000)
            .filter(|i| inj.decide_keyed(NodeId(1), NodeId(2), MsgClass::DiffUpdate, *i).dropped)
            .count();
        assert!(dropped > 850, "expected ~900 drops, saw {dropped}");
    }

    #[test]
    fn stall_window_suppresses_outbound_traffic() {
        let inj = FaultInjector::new(FaultPlan {
            stalls: vec![StallWindow {
                node: NodeId(1),
                start_msg: 2,
                end_msg: 5,
            }],
            ..FaultPlan::default()
        })
        .unwrap();
        let fates: Vec<bool> = (0..8)
            .map(|_| inj.decide(NodeId(1), NodeId(0), MsgClass::OalBatch).dropped)
            .collect();
        assert_eq!(fates, vec![false, false, true, true, true, false, false, false]);
        assert_eq!(inj.stats().stalled, 3);
        // Another node is unaffected.
        assert!(!inj.decide(NodeId(2), NodeId(0), MsgClass::OalBatch).dropped);
    }

    #[test]
    fn sync_drops_count_as_retransmits() {
        let inj = FaultInjector::new(FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        })
        .unwrap();
        let d = inj.decide_sync(NodeId(0), NodeId(1), MsgClass::ObjFetch);
        assert!(d.dropped);
        let s = inj.stats();
        assert_eq!(s.retransmits, 1);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn duplicates_and_delays_fire() {
        let inj = FaultInjector::new(FaultPlan {
            duplicate_prob: 1.0,
            delay_prob: 1.0,
            delay_spike_ns: 777,
            ..FaultPlan::default()
        })
        .unwrap();
        let d = inj.decide_keyed(NodeId(1), NodeId(0), MsgClass::OalBatch, 9);
        assert!(d.duplicated);
        assert_eq!(d.extra_delay_ns, 777);
        assert!(!d.dropped);
        let s = inj.stats();
        assert_eq!((s.duplicated, s.delayed), (1, 1));
    }

    #[test]
    fn validation_rejects_bad_probabilities_and_empty_stalls() {
        assert!(matches!(
            FaultPlan { drop_prob: 1.5, ..FaultPlan::default() }.validate(),
            Err(NetError::InvalidFaultPlan(_))
        ));
        assert!(matches!(
            FaultPlan { oal_drop: -0.1, ..FaultPlan::default() }.validate(),
            Err(NetError::InvalidFaultPlan(_))
        ));
        assert!(FaultInjector::new(FaultPlan {
            stalls: vec![StallWindow { node: NodeId(0), start_msg: 5, end_msg: 5 }],
            ..FaultPlan::default()
        })
        .is_err());
    }

    #[test]
    fn fault_stats_since_and_merge() {
        let a = FaultStats {
            dropped: 5,
            duplicated: 2,
            delayed: 1,
            stalled: 0,
            retransmits: 3,
            crash_suppressed: 4,
            partitioned: 2,
            oals_deferred: 1,
        };
        let b = FaultStats {
            dropped: 2,
            duplicated: 1,
            delayed: 0,
            stalled: 0,
            retransmits: 1,
            crash_suppressed: 1,
            partitioned: 1,
            oals_deferred: 0,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            FaultStats {
                dropped: 3,
                duplicated: 1,
                delayed: 1,
                stalled: 0,
                retransmits: 2,
                crash_suppressed: 3,
                partitioned: 1,
                oals_deferred: 1,
            }
        );
        let mut r = b;
        r.merge(&d);
        assert_eq!(r, a);
        assert_eq!(a.total(), 18);
    }

    #[test]
    fn crash_windows_cover_their_intervals() {
        let plan = FaultPlan {
            node_crashes: vec![
                CrashWindow { node: NodeId(1), from_interval: 5, until_interval: Some(8) },
                CrashWindow { node: NodeId(2), from_interval: 3, until_interval: None },
            ],
            master_crashes: vec![MasterCrashWindow { from_interval: 10, until_interval: 12 }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_zero());
        plan.validate().unwrap();

        // Node 1: down for [5, 8), back up at 8.
        assert!(!plan.node_down_at(NodeId(1), 4));
        assert!(plan.node_down_at(NodeId(1), 5));
        assert!(plan.node_down_at(NodeId(1), 7));
        assert!(!plan.node_down_at(NodeId(1), 8));
        // Node 2: crash-stop forever from 3.
        assert!(!plan.node_down_at(NodeId(2), 2));
        assert!(plan.node_down_at(NodeId(2), 3));
        assert!(plan.node_down_at(NodeId(2), 1_000_000));
        // Other nodes untouched.
        assert!(!plan.node_down_at(NodeId(3), 6));
        // Master window.
        assert!(!plan.master_down_at(9));
        assert!(plan.master_down_at(10));
        assert!(plan.master_down_at(11));
        assert!(!plan.master_down_at(12));

        // Injector delegates and stays pure (no sequence state).
        let inj = FaultInjector::new(plan).unwrap();
        assert!(inj.node_down_at(NodeId(1), 6));
        assert!(!inj.node_down_at(NodeId(1), 8));
        assert!(inj.link_seq.lock().is_empty());
    }

    #[test]
    fn quarantine_threshold_counts_crash_windows_in_interval_order() {
        let w = |from: u64, until: u64| CrashWindow {
            node: NodeId(2),
            from_interval: from,
            until_interval: Some(until),
        };
        let plan = FaultPlan {
            // Deliberately out of order: quarantine must sort by from_interval.
            node_crashes: vec![w(20, 21), w(4, 5), w(11, 12)],
            ..FaultPlan::default()
        };
        assert_eq!(plan.crash_count(NodeId(2)), 3);
        assert_eq!(plan.crash_count(NodeId(1)), 0);
        // Tolerate 2 crashes -> expelled at the start of the third (from = 20).
        assert_eq!(plan.quarantine_from(NodeId(2), 2), Some(20));
        assert_eq!(plan.quarantine_from(NodeId(2), 0), Some(4));
        assert_eq!(plan.quarantine_from(NodeId(2), 3), None);
        assert_eq!(plan.quarantine_from(NodeId(1), 0), None);
    }

    #[test]
    fn validation_names_offending_crash_windows() {
        let bad_node = FaultPlan {
            node_crashes: vec![CrashWindow {
                node: NodeId(7),
                from_interval: 9,
                until_interval: Some(9),
            }],
            ..FaultPlan::default()
        };
        match bad_node.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("n7"), "message must name the node: {msg}");
                assert!(msg.contains('9'), "message must name the value: {msg}");
                assert!(msg.contains("until_interval"), "message must name the field: {msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let bad_master = FaultPlan {
            master_crashes: vec![MasterCrashWindow { from_interval: 4, until_interval: 2 }],
            ..FaultPlan::default()
        };
        match bad_master.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("master"), "{msg}");
                assert!(msg.contains("until_interval 2"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let bad_stall = FaultPlan {
            stalls: vec![StallWindow { node: NodeId(3), start_msg: 6, end_msg: 6 }],
            ..FaultPlan::default()
        };
        match bad_stall.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("n3"), "{msg}");
                assert!(msg.contains("end_msg 6"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }

    #[test]
    fn slow_windows_multiply_service_time_only_while_active() {
        let plan = FaultPlan {
            slow: vec![
                SlowWindow { node: NodeId(1), from_ns: 100, until_ns: Some(200), factor: 3.0 },
                SlowWindow { node: NodeId(1), from_ns: 150, until_ns: Some(300), factor: 2.0 },
                SlowWindow { node: NodeId(2), from_ns: 0, until_ns: None, factor: 4.0 },
            ],
            ..FaultPlan::default()
        };
        assert!(!plan.is_zero());
        plan.validate().unwrap();
        plan.validate_bounds(3).unwrap();
        assert!(plan.slows(NodeId(1)) && plan.slows(NodeId(2)) && !plan.slows(NodeId(0)));
        // Before, during (overlap takes the max), after.
        assert_eq!(plan.slow_factor_at(NodeId(1), 99), 1.0);
        assert_eq!(plan.slow_factor_at(NodeId(1), 100), 3.0);
        assert_eq!(plan.slow_factor_at(NodeId(1), 199), 3.0);
        assert_eq!(plan.slow_factor_at(NodeId(1), 200), 2.0);
        assert_eq!(plan.slow_factor_at(NodeId(1), 300), 1.0);
        // Permanent slowdown; other nodes untouched.
        assert_eq!(plan.slow_factor_at(NodeId(2), u64::MAX), 4.0);
        assert_eq!(plan.slow_factor_at(NodeId(0), 150), 1.0);
    }

    #[test]
    fn validation_names_offending_slow_windows() {
        let bad_factor = FaultPlan {
            slow: vec![SlowWindow { node: NodeId(4), from_ns: 0, until_ns: None, factor: 1.0 }],
            ..FaultPlan::default()
        };
        match bad_factor.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("n4"), "message must name the node: {msg}");
                assert!(msg.contains("factor 1"), "message must echo the value: {msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        for f in [f64::NAN, f64::INFINITY, 0.5, -2.0] {
            let p = FaultPlan {
                slow: vec![SlowWindow { node: NodeId(0), from_ns: 0, until_ns: None, factor: f }],
                ..FaultPlan::default()
            };
            assert!(p.validate().is_err(), "factor {f} must be rejected");
        }
        let empty_window = FaultPlan {
            slow: vec![SlowWindow { node: NodeId(2), from_ns: 9, until_ns: Some(9), factor: 2.0 }],
            ..FaultPlan::default()
        };
        match empty_window.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("until_ns 9"), "{msg}");
                assert!(msg.contains("from_ns 9"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let out_of_range = FaultPlan {
            slow: vec![SlowWindow { node: NodeId(9), from_ns: 0, until_ns: None, factor: 2.0 }],
            ..FaultPlan::default()
        };
        assert!(out_of_range.validate().is_ok(), "bounds need the topology");
        match out_of_range.validate_bounds(4) {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("slow window"), "{msg}");
                assert!(msg.contains("n9"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }

    #[test]
    fn partition_windows_sever_only_across_the_island_boundary() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                island: vec![NodeId(1), NodeId(2)],
                from_ns: 100,
                heal_ns: Some(200),
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_zero());
        // Before, during, after.
        assert!(!plan.severed(NodeId(0), NodeId(1), 99));
        assert!(plan.severed(NodeId(0), NodeId(1), 100));
        assert!(plan.severed(NodeId(1), NodeId(0), 199));
        assert!(!plan.severed(NodeId(0), NodeId(1), 200));
        // Both endpoints on the same side pass through.
        assert!(!plan.severed(NodeId(1), NodeId(2), 150));
        assert!(!plan.severed(NodeId(0), NodeId(3), 150));
        assert!(!plan.severed(NodeId(1), NodeId(1), 150));
        // Heal horizon: the earliest time the cut is guaranteed gone.
        assert_eq!(plan.heal_at(NodeId(0), NodeId(1), 150), Some(200));
        assert_eq!(plan.heal_at(NodeId(0), NodeId(3), 150), Some(150));
        let permanent = FaultPlan {
            partitions: vec![PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 0,
                heal_ns: None,
            }],
            ..FaultPlan::default()
        };
        assert!(permanent.severed(NodeId(0), NodeId(1), u64::MAX));
        assert_eq!(permanent.heal_at(NodeId(0), NodeId(1), 5), None);
    }

    #[test]
    fn validation_names_offending_partition_windows() {
        let empty_island = FaultPlan {
            partitions: vec![PartitionWindow { island: vec![], from_ns: 0, heal_ns: None }],
            ..FaultPlan::default()
        };
        match empty_island.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("partition window 0"), "{msg}");
                assert!(msg.contains("island is empty"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let empty_window = FaultPlan {
            partitions: vec![PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 50,
                heal_ns: Some(50),
            }],
            ..FaultPlan::default()
        };
        match empty_window.validate() {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("partition window 0"), "{msg}");
                assert!(msg.contains("heal_ns 50"), "{msg}");
                assert!(msg.contains("from_ns 50"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let out_of_range = FaultPlan {
            partitions: vec![PartitionWindow {
                island: vec![NodeId(9)],
                from_ns: 0,
                heal_ns: None,
            }],
            ..FaultPlan::default()
        };
        assert!(out_of_range.validate().is_ok(), "bounds need the topology");
        match out_of_range.validate_bounds(4) {
            Err(NetError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("partition window 0 island"), "{msg}");
                assert!(msg.contains("n9"), "{msg}");
                assert!(msg.contains("4-node"), "{msg}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        let in_range = FaultPlan {
            partitions: vec![PartitionWindow {
                island: vec![NodeId(3)],
                from_ns: 0,
                heal_ns: Some(10),
            }],
            node_crashes: vec![CrashWindow {
                node: NodeId(2),
                from_interval: 1,
                until_interval: None,
            }],
            ..FaultPlan::default()
        };
        assert!(in_range.validate_bounds(4).is_ok());
        assert!(in_range.validate_bounds(2).is_err());
    }
}
