//! Protocol message taxonomy.
//!
//! Table III of the paper splits traffic into "GOS message volume" (the coherence
//! protocol itself) and "OAL message volume" (profiling traffic: object access lists
//! shipped to the central coordinator). Each simulated message carries a [`MsgClass`]
//! so the [`crate::Fabric`] can keep the two ledgers separate.

use serde::{Deserialize, Serialize};

/// Number of distinct message classes (for fixed-size per-class counter arrays).
pub const NUM_MSG_CLASSES: usize = 15;

/// Classification of every message the simulated DJVM exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MsgClass {
    /// Request an object's latest copy from its home node (object fault).
    ObjFetch = 0,
    /// Reply carrying the object payload.
    ObjData = 1,
    /// Diff flushed to the home node at release time (HLRC).
    DiffUpdate = 2,
    /// Write notices propagated so caches invalidate at acquire time.
    WriteNotice = 3,
    /// Distributed lock acquire request.
    LockAcquire = 4,
    /// Lock grant (may piggyback write notices).
    LockGrant = 5,
    /// Lock release notification to the lock's manager.
    LockRelease = 6,
    /// Barrier arrival.
    BarrierEnter = 7,
    /// Barrier release broadcast (carries write notices).
    BarrierRelease = 8,
    /// Object Access List batch sent to the correlation-computing daemon.
    OalBatch = 9,
    /// Sampling-rate change notice broadcast by the coordinator.
    RateChange = 10,
    /// Thread migration context (the packed stack).
    MigrationCtx = 11,
    /// Sticky-set prefetch data accompanying a migration.
    Prefetch = 12,
    /// Re-registration handshake from a restarted node's threads: the reply carries
    /// the master's current epoch and class rate table so sampling resumes in step.
    Rejoin = 13,
    /// Pre-reduced sparse TCM partial shipped up the aggregation tree (node →
    /// parent → master) in place of raw per-thread OAL batches.
    TcmPartial = 14,
}

impl MsgClass {
    /// All classes, in `repr` order.
    pub const ALL: [MsgClass; NUM_MSG_CLASSES] = [
        MsgClass::ObjFetch,
        MsgClass::ObjData,
        MsgClass::DiffUpdate,
        MsgClass::WriteNotice,
        MsgClass::LockAcquire,
        MsgClass::LockGrant,
        MsgClass::LockRelease,
        MsgClass::BarrierEnter,
        MsgClass::BarrierRelease,
        MsgClass::OalBatch,
        MsgClass::RateChange,
        MsgClass::MigrationCtx,
        MsgClass::Prefetch,
        MsgClass::Rejoin,
        MsgClass::TcmPartial,
    ];

    /// Index into per-class counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Is this message part of the *profiling* traffic (the OAL ledger of Table III)
    /// rather than the base coherence protocol?
    #[inline]
    pub fn is_profiling(self) -> bool {
        matches!(
            self,
            MsgClass::OalBatch | MsgClass::RateChange | MsgClass::Rejoin | MsgClass::TcmPartial
        )
    }

    /// Is this message part of thread-migration traffic (context + prefetch)?
    #[inline]
    pub fn is_migration(self) -> bool {
        matches!(self, MsgClass::MigrationCtx | MsgClass::Prefetch)
    }

    /// Short label used by the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::ObjFetch => "obj-fetch",
            MsgClass::ObjData => "obj-data",
            MsgClass::DiffUpdate => "diff-update",
            MsgClass::WriteNotice => "write-notice",
            MsgClass::LockAcquire => "lock-acquire",
            MsgClass::LockGrant => "lock-grant",
            MsgClass::LockRelease => "lock-release",
            MsgClass::BarrierEnter => "barrier-enter",
            MsgClass::BarrierRelease => "barrier-release",
            MsgClass::OalBatch => "oal-batch",
            MsgClass::RateChange => "rate-change",
            MsgClass::MigrationCtx => "migration-ctx",
            MsgClass::Prefetch => "prefetch",
            MsgClass::Rejoin => "rejoin",
            MsgClass::TcmPartial => "tcm-partial",
        }
    }

    /// Fixed per-message header size in bytes (Ethernet + IP + TCP + protocol header),
    /// charged on top of the payload.
    #[inline]
    pub fn header_bytes(self) -> usize {
        78
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, c) in MsgClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "class {c:?} out of order");
        }
        assert_eq!(MsgClass::ALL.len(), NUM_MSG_CLASSES);
    }

    #[test]
    fn profiling_partition() {
        let profiling: Vec<_> = MsgClass::ALL.iter().filter(|c| c.is_profiling()).collect();
        assert_eq!(
            profiling,
            vec![
                &MsgClass::OalBatch,
                &MsgClass::RateChange,
                &MsgClass::Rejoin,
                &MsgClass::TcmPartial,
            ]
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = MsgClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_MSG_CLASSES);
    }
}
