//! Traffic ledgers.
//!
//! [`NetworkStats`] is a snapshot of everything the [`crate::Fabric`] accounted:
//! per-class message counts and byte volumes. Table III of the paper reports the
//! *GOS message volume* and the *OAL message volume* (and the latter as a percentage
//! of the former); both are projections of this ledger.

use serde::{Deserialize, Serialize};

use crate::fault::FaultStats;
use crate::message::{MsgClass, NUM_MSG_CLASSES};

/// Counters for one message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Number of messages sent.
    pub messages: u64,
    /// Total bytes (payload + per-message header).
    pub bytes: u64,
}

impl ClassStats {
    fn add(&mut self, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
    }
}

/// Immutable snapshot of fabric traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    per_class: [ClassStats; NUM_MSG_CLASSES],
    /// Faults injected while this traffic was accounted (all zero without a
    /// [`crate::fault::FaultPlan`]).
    pub faults: FaultStats,
}

impl NetworkStats {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `class` totaling `bytes` (payload + header).
    pub fn record(&mut self, class: MsgClass, bytes: u64) {
        self.per_class[class.index()].add(bytes);
    }

    /// Counters for one class.
    pub fn class(&self, class: MsgClass) -> ClassStats {
        self.per_class[class.index()]
    }

    /// Total bytes over all classes.
    pub fn total_bytes(&self) -> u64 {
        self.per_class.iter().map(|c| c.bytes).sum()
    }

    /// Total messages over all classes.
    pub fn total_messages(&self) -> u64 {
        self.per_class.iter().map(|c| c.messages).sum()
    }

    /// Bytes of the base coherence protocol — the "GOS message volume" of Table III.
    pub fn gos_bytes(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| !c.is_profiling() && !c.is_migration())
            .map(|c| self.class(*c).bytes)
            .sum()
    }

    /// Bytes of profiling traffic — the "OAL message volume" of Table III.
    pub fn oal_bytes(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| c.is_profiling())
            .map(|c| self.class(*c).bytes)
            .sum()
    }

    /// Bytes of migration traffic (context + sticky-set prefetch).
    pub fn migration_bytes(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| c.is_migration())
            .map(|c| self.class(*c).bytes)
            .sum()
    }

    /// OAL traffic as a fraction of GOS traffic (Table III's percentage column).
    /// Returns 0.0 when there is no GOS traffic.
    pub fn oal_over_gos(&self) -> f64 {
        let gos = self.gos_bytes();
        if gos == 0 {
            0.0
        } else {
            self.oal_bytes() as f64 / gos as f64
        }
    }

    /// Element-wise difference `self - earlier`; panics (debug) on counter regression.
    pub fn since(&self, earlier: &NetworkStats) -> NetworkStats {
        let mut out = NetworkStats::new();
        for c in MsgClass::ALL {
            let a = self.class(c);
            let b = earlier.class(c);
            debug_assert!(a.messages >= b.messages && a.bytes >= b.bytes);
            out.per_class[c.index()] = ClassStats {
                messages: a.messages - b.messages,
                bytes: a.bytes - b.bytes,
            };
        }
        out.faults = self.faults.since(&earlier.faults);
        out
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &NetworkStats) {
        for c in MsgClass::ALL {
            let o = other.class(c);
            self.per_class[c.index()].messages += o.messages;
            self.per_class[c.index()].bytes += o.bytes;
        }
        self.faults.merge(&other.faults);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_project() {
        let mut s = NetworkStats::new();
        s.record(MsgClass::ObjFetch, 100);
        s.record(MsgClass::ObjData, 4_196);
        s.record(MsgClass::OalBatch, 1_000);
        s.record(MsgClass::MigrationCtx, 2_000);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_bytes(), 7_296);
        assert_eq!(s.gos_bytes(), 4_296);
        assert_eq!(s.oal_bytes(), 1_000);
        assert_eq!(s.migration_bytes(), 2_000);
        let frac = s.oal_over_gos();
        assert!((frac - 1_000.0 / 4_296.0).abs() < 1e-12);
    }

    #[test]
    fn oal_over_gos_handles_empty() {
        let s = NetworkStats::new();
        assert_eq!(s.oal_over_gos(), 0.0);
    }

    #[test]
    fn since_and_merge_are_inverse() {
        let mut a = NetworkStats::new();
        a.record(MsgClass::DiffUpdate, 10);
        a.record(MsgClass::DiffUpdate, 20);
        let snapshot = a.clone();
        a.record(MsgClass::LockAcquire, 5);
        a.record(MsgClass::DiffUpdate, 30);
        let delta = a.since(&snapshot);
        assert_eq!(delta.class(MsgClass::DiffUpdate).messages, 1);
        assert_eq!(delta.class(MsgClass::DiffUpdate).bytes, 30);
        assert_eq!(delta.class(MsgClass::LockAcquire).messages, 1);
        let mut rebuilt = snapshot.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }
}
