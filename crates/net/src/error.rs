//! Typed errors of the network layer.
//!
//! The simulated interconnect historically `assert!`ed its way through misuse; a
//! production-scale runtime wants an empty cluster or a dead mailbox to surface as a
//! recoverable error instead of a panic. (`thiserror` is unavailable offline, so the
//! `Display`/`Error` impls are written by hand.)

use std::fmt;

use crate::ids::{NodeId, ThreadId};

/// Everything that can go wrong in the net layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A fabric was requested with zero nodes.
    EmptyFabric,
    /// A node id is outside the fabric.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Nodes in the fabric.
        n_nodes: usize,
    },
    /// A clock handle was requested for a thread outside the board.
    NoClock {
        /// The offending thread.
        thread: ThreadId,
        /// Clocks on the board.
        board_size: usize,
    },
    /// A message was posted to a mailbox whose receiver is gone.
    MailboxClosed {
        /// The mailbox owner the message was addressed to.
        destination: NodeId,
    },
    /// A message was posted to a bounded mailbox that is at capacity. The caller
    /// owns the backpressure decision: requeue, shed, or merge (see the runtime's
    /// shed policies) — the mailbox never drops silently.
    MailboxFull {
        /// The mailbox owner the message was addressed to.
        destination: NodeId,
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// A fault plan failed validation (e.g. probability outside `[0, 1]`).
    InvalidFaultPlan(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::EmptyFabric => write!(f, "fabric needs at least one node"),
            NetError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} out of range (fabric has {n_nodes} nodes)")
            }
            NetError::NoClock { thread, board_size } => {
                write!(f, "no clock for thread {thread} (board has {board_size} clocks)")
            }
            NetError::MailboxClosed { destination } => {
                write!(f, "mailbox of {destination} is closed (receiver dropped)")
            }
            NetError::MailboxFull { destination, capacity } => {
                write!(f, "mailbox of {destination} is full (capacity {capacity})")
            }
            NetError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = NetError::NodeOutOfRange {
            node: NodeId(7),
            n_nodes: 2,
        };
        assert!(e.to_string().contains("n7"));
        assert!(e.to_string().contains("2 nodes"));
        let e = NetError::NoClock {
            thread: ThreadId(9),
            board_size: 4,
        };
        assert!(e.to_string().contains("t9"));
        assert!(NetError::EmptyFabric.to_string().contains("at least one node"));
        let e = NetError::MailboxFull {
            destination: NodeId(3),
            capacity: 16,
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("capacity 16"));
    }
}
