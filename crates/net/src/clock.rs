//! Deterministic simulated time.
//!
//! Each application thread owns a [`ClockHandle`] — a monotonically increasing count of
//! simulated nanoseconds covering its CPU work (access checks, fault service, diffing,
//! profiling) and the network costs it waits on. Clocks of different threads are
//! reconciled only at synchronization points: a barrier sets every participant to the
//! maximum (plus the barrier's own cost), a lock hand-off transfers the holder's time
//! to the acquirer if the acquirer was "earlier". The maximum clock over all threads at
//! the end of a run is the simulated execution time reported in Tables II, III and V.
//!
//! All clocks live in one [`ClockBoard`] so any thread can read/advance any other
//! thread's clock at a synchronization point; entries are `AtomicU64` with
//! monotonic-max updates (see *Rust Atomics and Locks* ch. 2 on fetch-update loops).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ids::ThreadId;

/// Simulated nanoseconds.
pub type SimNanos = u64;

/// Shared registry of per-thread simulated clocks.
#[derive(Debug)]
pub struct ClockBoard {
    clocks: Vec<AtomicU64>,
}

impl ClockBoard {
    /// Create a board for `n_threads` clocks, all starting at zero.
    pub fn new(n_threads: usize) -> Arc<Self> {
        Arc::new(ClockBoard {
            clocks: (0..n_threads).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Number of registered clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True if the board has no clocks.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Obtain the handle for one thread's clock.
    pub fn handle(self: &Arc<Self>, thread: ThreadId) -> ClockHandle {
        assert!(
            thread.index() < self.clocks.len(),
            "thread {thread} has no clock (board size {})",
            self.clocks.len()
        );
        ClockHandle {
            board: Arc::clone(self),
            thread,
        }
    }

    /// Obtain the handle for one thread's clock, surfacing an out-of-range thread as
    /// a typed error instead of a panic.
    pub fn try_handle(self: &Arc<Self>, thread: ThreadId) -> Result<ClockHandle, crate::NetError> {
        if thread.index() >= self.clocks.len() {
            return Err(crate::NetError::NoClock {
                thread,
                board_size: self.clocks.len(),
            });
        }
        Ok(ClockHandle {
            board: Arc::clone(self),
            thread,
        })
    }

    /// Read one thread's current simulated time.
    #[inline]
    pub fn read(&self, thread: ThreadId) -> SimNanos {
        self.clocks[thread.index()].load(Ordering::Acquire)
    }

    /// Advance one thread's clock by `delta` nanoseconds, returning the new value.
    #[inline]
    pub fn advance(&self, thread: ThreadId, delta: SimNanos) -> SimNanos {
        self.clocks[thread.index()].fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Raise one thread's clock to at least `floor` (monotonic max), returning the
    /// resulting value. Used when a thread leaves a barrier or inherits a lock's
    /// release timestamp.
    pub fn raise_to(&self, thread: ThreadId, floor: SimNanos) -> SimNanos {
        let cell = &self.clocks[thread.index()];
        let mut cur = cell.load(Ordering::Acquire);
        while cur < floor {
            match cell.compare_exchange_weak(cur, floor, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return floor,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Maximum simulated time over a set of threads (e.g. barrier participants).
    pub fn max_over(&self, threads: impl IntoIterator<Item = ThreadId>) -> SimNanos {
        threads
            .into_iter()
            .map(|t| self.read(t))
            .max()
            .unwrap_or(0)
    }

    /// Maximum simulated time over all threads — the run's "execution time".
    pub fn global_max(&self) -> SimNanos {
        (0..self.clocks.len())
            .map(|i| self.clocks[i].load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Reset every clock to zero (between benchmark repetitions).
    pub fn reset(&self) {
        for c in &self.clocks {
            c.store(0, Ordering::Release);
        }
    }
}

/// A cheap, cloneable handle advancing one specific thread's simulated clock.
#[derive(Debug, Clone)]
pub struct ClockHandle {
    board: Arc<ClockBoard>,
    thread: ThreadId,
}

impl ClockHandle {
    /// The thread this handle belongs to.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The shared board (for synchronization-point reconciliation).
    #[inline]
    pub fn board(&self) -> &Arc<ClockBoard> {
        &self.board
    }

    /// Current simulated time of this thread.
    #[inline]
    pub fn now(&self) -> SimNanos {
        self.board.read(self.thread)
    }

    /// Spend `delta` simulated nanoseconds of CPU or network time.
    #[inline]
    pub fn spend(&self, delta: SimNanos) -> SimNanos {
        self.board.advance(self.thread, delta)
    }

    /// Raise this thread's clock to at least `floor`.
    #[inline]
    pub fn raise_to(&self, floor: SimNanos) -> SimNanos {
        self.board.raise_to(self.thread, floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_read() {
        let board = ClockBoard::new(2);
        let h0 = board.handle(ThreadId(0));
        assert_eq!(h0.now(), 0);
        assert_eq!(h0.spend(100), 100);
        assert_eq!(h0.spend(50), 150);
        assert_eq!(board.read(ThreadId(0)), 150);
        assert_eq!(board.read(ThreadId(1)), 0);
    }

    #[test]
    fn raise_to_is_monotonic_max() {
        let board = ClockBoard::new(1);
        let h = board.handle(ThreadId(0));
        h.spend(500);
        assert_eq!(h.raise_to(300), 500, "never lowers");
        assert_eq!(h.raise_to(900), 900);
        assert_eq!(h.now(), 900);
    }

    #[test]
    fn max_over_and_global_max() {
        let board = ClockBoard::new(3);
        board.advance(ThreadId(0), 10);
        board.advance(ThreadId(1), 99);
        board.advance(ThreadId(2), 7);
        assert_eq!(board.max_over([ThreadId(0), ThreadId(2)]), 10);
        assert_eq!(board.global_max(), 99);
        board.reset();
        assert_eq!(board.global_max(), 0);
    }

    #[test]
    fn concurrent_raise_to_converges_to_max() {
        let board = ClockBoard::new(1);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let b = Arc::clone(&board);
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u64 {
                    b.raise_to(ThreadId(0), i * 1000 + j);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(board.read(ThreadId(0)), 7999);
    }

    #[test]
    #[should_panic(expected = "has no clock")]
    fn handle_out_of_range_panics() {
        let board = ClockBoard::new(1);
        let _ = board.handle(ThreadId(5));
    }
}
