//! Deterministic cooperative task executor with virtual time.
//!
//! Replaces free-running OS-thread execution with *single-token* cooperative
//! scheduling: every simulated entity (application threads, the master daemon)
//! is a **task** carried by a parked OS thread, and at most one task executes
//! at any instant. At each yield point the scheduler hands the token to the
//! runnable task with the smallest virtual clock (plus an optional seeded
//! jitter), so a given `(seed, jitter)` pair fixes the entire interleaving —
//! a run is a pure function of its inputs and replays bit-identically:
//! journal, TCM and `MasterOutput` alike.
//!
//! Serialization is also what closes the LRC fetch-vs-flush race (DESIGN.md
//! §14): with one task running at a time, the write-notice distribution at
//! barriers is schedule-determined, not OS-determined. And because carrier
//! threads are parked except when holding the token, cluster size is bounded
//! by address space rather than cores — 10k+ simulated threads run on one box.
//!
//! ## Task lifecycle
//!
//! ```text
//! NotStarted --register_current--> Runnable --pick--> Running
//!     Running --yield_now--> Runnable
//!     Running --block_internal/block_external--> Blocked --unblock--> Runnable
//!     Running --finish--> Finished
//! ```
//!
//! Dispatch begins only after **all** `n_tasks` tasks have registered, so the
//! first pick is independent of OS spawn order. `Blocked` comes in two
//! flavors: *internal* (waiting on another task — a lock holder, barrier
//! parties) and *external* (waiting on a wakeup from outside the task set —
//! the master daemon's empty mailbox). If no task is runnable, none is
//! running, and at least one is blocked internally, the executor **poisons**
//! itself: every parked task panics with [`POISON_MSG`] (a deterministic
//! deadlock report instead of a wedge).
//!
//! ## Virtual time
//!
//! The executor holds no clock of its own: tasks report their simulated
//! nanoseconds (their `ClockBoard` cell) at every scheduling point, and the
//! scheduler orders by those reports. Manual mode (`new_paused`) adds
//! [`DetExecutor::tick`], [`DetExecutor::run_until_idle`] and
//! [`DetExecutor::fast_forward_to`] for step-by-step driving from a
//! controlling (non-task) thread.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::Thread;

use parking_lot::{Condvar, Mutex};

/// Panic payload of every task killed by executor poisoning (cooperative
/// deadlock, or explicit [`DetExecutor::poison`]). Carriers classify panics by
/// comparing against this message: a cascade kill is not the root cause.
pub const POISON_MSG: &str = "deterministic executor poisoned: cooperative task deadlock";

/// Why a task is blocked (drives the deadlock-vs-idle distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Waiting on another task (lock holder, barrier parties). If only such
    /// tasks remain, the task set has deadlocked.
    Internal,
    /// Waiting on a wakeup from outside the task set (e.g. the master daemon
    /// parked on an empty mailbox, woken by the controlling thread).
    External,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    NotStarted,
    Runnable,
    Running,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
struct TaskSlot {
    state: TaskState,
    /// Last reported virtual time (simulated ns).
    clock_ns: u64,
    /// Tie class on equal scheduling keys: lower runs first (default 1; the
    /// cluster gives the master daemon 0 so it services mail promptly even when
    /// cost models keep every clock at zero).
    priority: u8,
    /// Scheduling points passed — feeds the jitter hash.
    yields: u64,
    /// Invalidates stale heap entries (bumped on every re-key).
    generation: u64,
    /// Carrier thread handle, for unpark.
    carrier: Option<Thread>,
    /// Token: set by the dispatcher, consumed by the carrier.
    run_token: bool,
    /// A wakeup arrived while the task was not blocked; consume at next block.
    pending_wake: bool,
}

#[derive(Debug)]
struct ExecState {
    tasks: Vec<TaskSlot>,
    /// Lazy min-heap of `(key, priority, task, generation)`; entries whose
    /// generation is stale or whose task is no longer runnable are skipped on
    /// pop.
    heap: BinaryHeap<Reverse<(u64, u8, usize, u64)>>,
    registered: usize,
    running: Option<usize>,
    runnable: usize,
    blocked_internal: usize,
    finished: usize,
    /// Remaining dispatches before pausing; `u64::MAX` = free-run.
    budget: u64,
    started: bool,
    poisoned: bool,
}

/// Seeded deterministic cooperative executor. See the module docs.
#[derive(Debug)]
pub struct DetExecutor {
    seed: u64,
    jitter_ns: u64,
    state: Mutex<ExecState>,
    /// Signaled whenever the executor goes idle (nothing running, nothing
    /// dispatchable under the current budget) — manual mode waits here.
    idle: Condvar,
}

impl DetExecutor {
    /// Free-running executor over `n_tasks` tasks. `jitter_ns == 0` gives pure
    /// min-clock order (ties broken by task id); a nonzero jitter perturbs
    /// each scheduling key by `hash(seed, task, yield#) % jitter_ns`, so
    /// `seed` selects one reproducible interleaving out of many.
    pub fn new(n_tasks: usize, seed: u64, jitter_ns: u64) -> Arc<Self> {
        Self::with_budget(n_tasks, seed, jitter_ns, u64::MAX)
    }

    /// Paused executor: tasks register and park, but nothing runs until
    /// [`tick`](Self::tick) or [`run_until_idle`](Self::run_until_idle).
    pub fn new_paused(n_tasks: usize, seed: u64, jitter_ns: u64) -> Arc<Self> {
        Self::with_budget(n_tasks, seed, jitter_ns, 0)
    }

    fn with_budget(n_tasks: usize, seed: u64, jitter_ns: u64, budget: u64) -> Arc<Self> {
        let tasks = (0..n_tasks)
            .map(|_| TaskSlot {
                state: TaskState::NotStarted,
                clock_ns: 0,
                priority: 1,
                yields: 0,
                generation: 0,
                carrier: None,
                run_token: false,
                pending_wake: false,
            })
            .collect();
        Arc::new(DetExecutor {
            seed,
            jitter_ns,
            state: Mutex::new(ExecState {
                tasks,
                heap: BinaryHeap::new(),
                registered: 0,
                running: None,
                runnable: 0,
                blocked_internal: 0,
                finished: 0,
                budget,
                started: false,
                poisoned: false,
            }),
            idle: Condvar::new(),
        })
    }

    /// Number of tasks this executor schedules.
    pub fn n_tasks(&self) -> usize {
        self.state.lock().tasks.len()
    }

    /// Scheduling key: virtual clock plus seeded jitter. Computed when a task
    /// becomes runnable — sound because a parked task's clock cannot move.
    fn key(&self, task: usize, yields: u64, clock_ns: u64) -> u64 {
        if self.jitter_ns == 0 {
            return clock_ns;
        }
        let h = splitmix64(self.seed ^ ((task as u64) << 32) ^ yields);
        clock_ns.saturating_add(h % self.jitter_ns)
    }

    /// Set `task`'s tie class: on equal scheduling keys, lower `priority` runs
    /// first (default 1). Call before the run starts — re-keying is not applied
    /// to already-queued heap entries.
    pub fn set_priority(&self, task: usize, priority: u8) {
        let mut g = self.state.lock();
        assert!(task < g.tasks.len(), "task {task} out of range");
        g.tasks[task].priority = priority;
    }

    fn push_runnable(&self, g: &mut ExecState, task: usize) {
        let slot = &mut g.tasks[task];
        debug_assert_eq!(slot.state, TaskState::Runnable);
        slot.generation += 1;
        let entry = (
            self.key(task, slot.yields, slot.clock_ns),
            slot.priority,
            task,
            slot.generation,
        );
        g.heap.push(Reverse(entry));
    }

    /// Hand the token to the best runnable task, or detect deadlock/idle.
    /// Caller must hold the state lock and have `running == None`.
    fn dispatch(&self, g: &mut ExecState) {
        debug_assert!(g.running.is_none());
        if g.poisoned {
            self.wake_everything(g);
            return;
        }
        if !g.started {
            return;
        }
        loop {
            if g.runnable == 0 {
                // Nothing to run: a live internally-blocked task means the
                // task set has deadlocked on itself.
                if g.blocked_internal > 0 {
                    g.poisoned = true;
                    self.wake_everything(g);
                } else {
                    self.idle.notify_all();
                }
                return;
            }
            if g.budget == 0 {
                self.idle.notify_all();
                return;
            }
            let Some(Reverse((_, _, task, generation))) = g.heap.pop() else {
                debug_assert!(false, "runnable count positive but heap empty");
                return;
            };
            let slot = &mut g.tasks[task];
            if slot.state != TaskState::Runnable || slot.generation != generation {
                continue; // stale entry (re-keyed by fast_forward_to)
            }
            if g.budget != u64::MAX {
                g.budget -= 1;
            }
            slot.state = TaskState::Running;
            slot.run_token = true;
            g.running = Some(task);
            g.runnable -= 1;
            if let Some(t) = &slot.carrier {
                t.unpark();
            }
            return;
        }
    }

    fn wake_everything(&self, g: &mut ExecState) {
        for slot in &g.tasks {
            if let Some(t) = &slot.carrier {
                t.unpark();
            }
        }
        self.idle.notify_all();
    }

    /// Park the calling carrier until its task holds the token (or the
    /// executor is poisoned, in which case this panics with [`POISON_MSG`]).
    fn wait_for_token(&self, task: usize) {
        loop {
            {
                let mut g = self.state.lock();
                if g.poisoned {
                    drop(g);
                    panic!("{POISON_MSG}");
                }
                let slot = &mut g.tasks[task];
                if slot.run_token {
                    slot.run_token = false;
                    debug_assert_eq!(slot.state, TaskState::Running);
                    return;
                }
            }
            std::thread::park();
        }
    }

    /// Register the calling OS thread as the carrier of `task` and park until
    /// the scheduler first picks it. Dispatch begins only once **all** tasks
    /// have registered, so the initial pick is spawn-order independent.
    ///
    /// # Panics
    /// If `task` is out of range, already registered, or the executor is
    /// poisoned while waiting.
    pub fn register_current(&self, task: usize) {
        {
            let mut g = self.state.lock();
            assert!(task < g.tasks.len(), "task {task} out of range");
            assert_eq!(
                g.tasks[task].state,
                TaskState::NotStarted,
                "task {task} registered twice"
            );
            g.tasks[task].carrier = Some(std::thread::current());
            g.tasks[task].state = TaskState::Runnable;
            g.runnable += 1;
            self.push_runnable(&mut g, task);
            g.registered += 1;
            if g.registered == g.tasks.len() {
                g.started = true;
                if g.running.is_none() {
                    self.dispatch(&mut g);
                }
            }
        }
        self.wait_for_token(task);
    }

    /// Cooperative scheduling point: report the task's virtual clock, hand the
    /// token back, and park until re-picked. Called only by the running task.
    pub fn yield_now(&self, task: usize, now_ns: u64) {
        {
            let mut g = self.state.lock();
            if g.poisoned {
                drop(g);
                panic!("{POISON_MSG}");
            }
            debug_assert_eq!(g.running, Some(task));
            let slot = &mut g.tasks[task];
            slot.clock_ns = slot.clock_ns.max(now_ns);
            slot.yields += 1;
            slot.state = TaskState::Runnable;
            slot.pending_wake = false;
            g.running = None;
            g.runnable += 1;
            self.push_runnable(&mut g, task);
            self.dispatch(&mut g);
        }
        self.wait_for_token(task);
    }

    /// Block the running task waiting on **another task** (lock holder,
    /// barrier parties). Parks until [`unblock`](Self::unblock). If this
    /// leaves the task set with nothing runnable, the executor poisons.
    pub fn block_internal(&self, task: usize, now_ns: u64) {
        self.block(task, now_ns, Block::Internal);
    }

    /// Block the running task waiting on a wakeup **from outside the task
    /// set** (the controlling thread, typically). Never counts as deadlock.
    pub fn block_external(&self, task: usize, now_ns: u64) {
        self.block(task, now_ns, Block::External);
    }

    fn block(&self, task: usize, now_ns: u64, kind: Block) {
        {
            let mut g = self.state.lock();
            if g.poisoned {
                drop(g);
                panic!("{POISON_MSG}");
            }
            debug_assert_eq!(g.running, Some(task));
            let slot = &mut g.tasks[task];
            slot.clock_ns = slot.clock_ns.max(now_ns);
            slot.yields += 1;
            if slot.pending_wake {
                // A wakeup raced the block (sent from a non-task thread while
                // this task was running): degrade to a plain yield.
                slot.pending_wake = false;
                slot.state = TaskState::Runnable;
                g.running = None;
                g.runnable += 1;
                self.push_runnable(&mut g, task);
            } else {
                slot.state = TaskState::Blocked(kind);
                g.running = None;
                if kind == Block::Internal {
                    g.blocked_internal += 1;
                }
            }
            self.dispatch(&mut g);
        }
        self.wait_for_token(task);
    }

    /// Make a blocked task runnable again. Callable from any thread (a running
    /// task releasing a resource, or the controlling thread waking an
    /// externally-blocked task). Waking a running task records a pending
    /// wakeup consumed by its next `block_*`; waking a runnable or finished
    /// task is a no-op.
    pub fn unblock(&self, task: usize) {
        let mut g = self.state.lock();
        if g.poisoned || task >= g.tasks.len() {
            return;
        }
        match g.tasks[task].state {
            TaskState::Blocked(kind) => {
                g.tasks[task].state = TaskState::Runnable;
                g.runnable += 1;
                if kind == Block::Internal {
                    g.blocked_internal -= 1;
                }
                self.push_runnable(&mut g, task);
                if g.running.is_none() && g.started {
                    self.dispatch(&mut g);
                }
            }
            TaskState::Running => g.tasks[task].pending_wake = true,
            _ => {}
        }
    }

    /// Retire the calling task and hand the token onward. Safe to call after a
    /// caught panic (including a poison cascade) — it never panics itself.
    pub fn finish(&self, task: usize) {
        let mut g = self.state.lock();
        if task >= g.tasks.len() {
            return;
        }
        let prior = g.tasks[task].state;
        if prior == TaskState::Finished {
            return;
        }
        g.tasks[task].state = TaskState::Finished;
        g.tasks[task].run_token = false;
        g.finished += 1;
        match prior {
            TaskState::Running => g.running = None,
            TaskState::Runnable => g.runnable -= 1,
            TaskState::Blocked(Block::Internal) => g.blocked_internal -= 1,
            _ => {}
        }
        if !g.poisoned && g.running.is_none() && g.started {
            self.dispatch(&mut g);
        }
    }

    /// True while `task` is the currently-running task of a live executor —
    /// the gate cooperative sync primitives use to choose the executor path
    /// over their OS-thread (condvar) fallback.
    pub fn task_is_live(&self, task: usize) -> bool {
        let g = self.state.lock();
        task < g.tasks.len() && g.running == Some(task) && !g.poisoned
    }

    /// True once the executor has poisoned (deadlock or explicit abort).
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Poison the executor outright: every parked or future scheduling call
    /// panics with [`POISON_MSG`]. Used to abort cleanly when a carrier could
    /// not be spawned and registration would otherwise never complete.
    pub fn poison(&self) {
        let mut g = self.state.lock();
        g.poisoned = true;
        self.wake_everything(&mut g);
    }

    /// Earliest virtual clock over all unfinished tasks (0 if none) — the
    /// front of virtual time.
    pub fn time_front(&self) -> u64 {
        let g = self.state.lock();
        g.tasks
            .iter()
            .filter(|t| t.state != TaskState::Finished)
            .map(|t| t.clock_ns)
            .min()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------ manual mode

    /// Is the executor idle: nothing running and nothing dispatchable under
    /// the current budget?
    fn is_idle(g: &ExecState) -> bool {
        g.running.is_none() && (g.runnable == 0 || g.budget == 0 || !g.started)
    }

    /// Grant `steps` dispatches and block the calling (non-task) thread until
    /// the executor is idle again. Waits for all tasks to register first.
    /// Returns the number of unfinished tasks. Manual mode only (created via
    /// [`new_paused`](Self::new_paused)).
    pub fn tick(&self, steps: u64) -> usize {
        let mut g = self.state.lock();
        while !g.started {
            self.idle.wait(&mut g);
        }
        g.budget = g.budget.saturating_add(steps);
        if g.running.is_none() && g.started {
            self.dispatch(&mut g);
        }
        while !Self::is_idle(&g) {
            self.idle.wait(&mut g);
        }
        g.budget = 0;
        g.tasks.len() - g.finished
    }

    /// Run until no task is runnable (all blocked or finished), then pause
    /// again. Waits for all tasks to register first. Returns the number of
    /// unfinished tasks.
    pub fn run_until_idle(&self) -> usize {
        let mut g = self.state.lock();
        while !g.started {
            self.idle.wait(&mut g);
        }
        g.budget = u64::MAX;
        if g.running.is_none() && g.started {
            self.dispatch(&mut g);
        }
        while !(g.running.is_none() && g.runnable == 0) {
            self.idle.wait(&mut g);
        }
        g.budget = 0;
        g.tasks.len() - g.finished
    }

    /// Raise every unfinished task's virtual clock to at least `ns` (re-keying
    /// runnable tasks), compressing dead virtual time. The tasks' own clocks
    /// (e.g. a `ClockBoard`) must be raised by the caller; this adjusts only
    /// the scheduling view.
    pub fn fast_forward_to(&self, ns: u64) {
        let mut g = self.state.lock();
        let n = g.tasks.len();
        for task in 0..n {
            if g.tasks[task].state == TaskState::Finished {
                continue;
            }
            g.tasks[task].clock_ns = g.tasks[task].clock_ns.max(ns);
            if g.tasks[task].state == TaskState::Runnable {
                self.push_runnable(&mut g, task);
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Spawn `n` tasks that each append `(task, step)` to a shared log at every
    /// scheduling point, with per-task virtual clocks advancing by `pace[t]`.
    fn run_logged(n: usize, seed: u64, jitter: u64, steps: usize, pace: &[u64]) -> Vec<(usize, usize)> {
        let exec = DetExecutor::new(n, seed, jitter);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..n {
            let exec = Arc::clone(&exec);
            let log = Arc::clone(&log);
            let pace = pace[t];
            handles.push(std::thread::spawn(move || {
                exec.register_current(t);
                let mut clock = 0u64;
                for step in 0..steps {
                    log.lock().push((t, step));
                    clock += pace;
                    exec.yield_now(t, clock);
                }
                exec.finish(t);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let out = log.lock().clone();
        out
    }

    #[test]
    fn min_clock_order_is_deterministic_and_fair() {
        let a = run_logged(3, 1, 0, 4, &[10, 10, 10]);
        let b = run_logged(3, 99, 0, 4, &[10, 10, 10]);
        // jitter 0: seed is irrelevant, order is pure (clock, task id).
        assert_eq!(a, b);
        // Equal pace => strict round-robin by task id.
        let first_round: Vec<usize> = a[..3].iter().map(|(t, _)| *t).collect();
        assert_eq!(first_round, vec![0, 1, 2]);
    }

    #[test]
    fn slow_task_yields_to_fast_tasks() {
        let log = run_logged(2, 0, 0, 3, &[100, 1]);
        // Task 1 advances 1ns per step, task 0 100ns: after the first
        // alternation task 1 should run its remaining steps before task 0's
        // second step (clock 100 vs 2).
        let pos = |needle: (usize, usize)| log.iter().position(|&e| e == needle).unwrap();
        assert!(pos((1, 2)) < pos((0, 1)));
    }

    #[test]
    fn seeded_jitter_replays_identically_and_seeds_differ() {
        let a = run_logged(4, 7, 1_000, 6, &[10, 10, 10, 10]);
        let b = run_logged(4, 7, 1_000, 6, &[10, 10, 10, 10]);
        assert_eq!(a, b, "same seed must replay the same interleaving");
        let c = run_logged(4, 8, 1_000, 6, &[10, 10, 10, 10]);
        assert_ne!(a, c, "different seed should pick a different interleaving");
    }

    #[test]
    fn paused_tick_and_run_until_idle() {
        let exec = DetExecutor::new_paused(2, 0, 0);
        let count = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..2 {
            let exec = Arc::clone(&exec);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || {
                exec.register_current(t);
                for i in 0..3u64 {
                    count.fetch_add(1, Ordering::SeqCst);
                    exec.yield_now(t, (i + 1) * 10);
                }
                exec.finish(t);
            }));
        }
        // Paused: nothing runs until ticked.
        while exec.state.lock().registered < 2 {
            std::thread::yield_now();
        }
        assert_eq!(count.load(Ordering::SeqCst), 0);
        exec.tick(1);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        exec.tick(2);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        let unfinished = exec.run_until_idle();
        assert_eq!(count.load(Ordering::SeqCst), 6);
        assert_eq!(unfinished, 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fast_forward_reorders_scheduling() {
        let exec = DetExecutor::new_paused(2, 0, 0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..2usize {
            let exec = Arc::clone(&exec);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                exec.register_current(t);
                log.lock().push(t);
                // Task 0 reports a far-future clock, task 1 stays early.
                exec.yield_now(t, if t == 0 { 1_000_000 } else { 5 });
                log.lock().push(t);
                exec.finish(t);
            }));
        }
        exec.tick(2); // both run their first leg
        assert_eq!(log.lock().clone(), vec![0, 1]);
        // Fast-forward past task 0's clock: both now tie at 1_000_000 and the
        // tie breaks by id, so 0 runs before 1 despite its later clock.
        exec.fast_forward_to(1_000_000);
        assert!(exec.time_front() >= 1_000_000);
        exec.run_until_idle();
        assert_eq!(log.lock().clone(), vec![0, 1, 0, 1]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn internal_deadlock_poisons_with_known_payload() {
        let exec = DetExecutor::new(2, 0, 0);
        let mut handles = Vec::new();
        for t in 0..2usize {
            let exec = Arc::clone(&exec);
            handles.push(std::thread::spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    exec.register_current(t);
                    exec.block_internal(t, 10); // nobody will ever unblock us
                }))
            }));
        }
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert_eq!(msg, POISON_MSG);
        }
        assert!(exec.is_poisoned());
    }

    #[test]
    fn external_block_is_idle_not_deadlock() {
        let exec = DetExecutor::new(2, 0, 0);
        let woke = Arc::new(AtomicU64::new(0));
        let e0 = Arc::clone(&exec);
        let w0 = Arc::clone(&woke);
        let waiter = std::thread::spawn(move || {
            e0.register_current(0);
            e0.block_external(0, 0);
            w0.store(1, Ordering::SeqCst);
            e0.finish(0);
        });
        let e1 = Arc::clone(&exec);
        let worker = std::thread::spawn(move || {
            e1.register_current(1);
            e1.yield_now(1, 5);
            e1.finish(1);
        });
        worker.join().unwrap();
        assert!(!exec.is_poisoned());
        assert_eq!(woke.load(Ordering::SeqCst), 0);
        // Wake from outside the task set — the pending-wake path also covers
        // the race where the wake lands before the task actually blocks.
        exec.unblock(0);
        waiter.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pending_wake_prevents_lost_wakeup() {
        // Task 0 spins: block_external must return immediately if the wake
        // already arrived while it was running.
        let exec = DetExecutor::new(1, 0, 0);
        let e0 = Arc::clone(&exec);
        let t = std::thread::spawn(move || {
            e0.register_current(0);
            // Wake arrives while we are the running task...
            e0.unblock(0);
            // ...so this block consumes it and degrades to a yield.
            e0.block_external(0, 1);
            e0.finish(0);
        });
        t.join().unwrap(); // would hang forever without pending_wake
        assert!(!exec.is_poisoned());
    }
}
