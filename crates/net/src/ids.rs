//! Cluster-wide identifiers.
//!
//! Newtype wrappers keep node and thread indices from being confused with each other
//! or with raw `usize` arithmetic in the protocol code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one node (one "worker JVM" in the paper's Fig. 2) of the simulated
/// cluster. Node 0 additionally hosts the master-JVM roles (correlation analyzer,
/// barrier manager, global load balancer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node hosting master-JVM services.
    pub const MASTER: NodeId = NodeId(0);

    /// Raw index, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one application (Java) thread, globally unique across the cluster.
///
/// The thread correlation map (TCM) is indexed by pairs of `ThreadId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Raw index, for indexing the TCM and per-thread tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let n = NodeId(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "n3");
        assert_eq!(NodeId::MASTER, NodeId(0));
    }

    #[test]
    fn thread_id_ordering_matches_index() {
        let a = ThreadId(1);
        let b = ThreadId(9);
        assert!(a < b);
        assert_eq!(b.index(), 9);
        assert_eq!(b.to_string(), "t9");
    }
}
