//! The simulated interconnect.
//!
//! A [`Fabric`] joins `n_nodes` logical nodes. Sending a message does two things:
//!
//! 1. **Accounting** — the (class, bytes) pair is added to the global ledger and to
//!    per-link counters, so benchmarks can report exact traffic volumes (Table III).
//! 2. **Time charging** — the sender's simulated clock is advanced by the
//!    [`LatencyModel`] cost. For synchronous request/response pairs (an object fault
//!    round-trip, a lock acquire) use [`Fabric::charge_round_trip`], which charges both
//!    directions at once; the actual data movement happens through shared memory in the
//!    caller (the simulation is in-process).
//!
//! Local (same-node) "messages" are free and unaccounted, like intra-JVM accesses in
//! the real system.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::{ClockHandle, SimNanos};
use crate::ids::NodeId;
use crate::latency::LatencyModel;
use crate::message::MsgClass;
use crate::stats::NetworkStats;

/// Per-link (ordered node pair) traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages sent over the link.
    pub messages: u64,
    /// Bytes sent over the link.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct FabricLedger {
    global: NetworkStats,
    links: Vec<LinkStats>, // n_nodes * n_nodes, row = from
}

/// The simulated cluster interconnect: pure accounting plus a latency model.
#[derive(Debug)]
pub struct Fabric {
    n_nodes: usize,
    latency: LatencyModel,
    ledger: Mutex<FabricLedger>,
}

impl Fabric {
    /// Create a fabric joining `n_nodes` nodes under the given latency model.
    pub fn new(n_nodes: usize, latency: LatencyModel) -> Self {
        assert!(n_nodes > 0, "fabric needs at least one node");
        Fabric {
            n_nodes,
            latency,
            ledger: Mutex::new(FabricLedger {
                global: NetworkStats::new(),
                links: vec![LinkStats::default(); n_nodes * n_nodes],
            }),
        }
    }

    /// Number of nodes joined by this fabric.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    fn account(&self, from: NodeId, to: NodeId, class: MsgClass, total_bytes: u64) {
        let mut ledger = self.ledger.lock();
        ledger.global.record(class, total_bytes);
        let idx = from.index() * self.n_nodes + to.index();
        let link = &mut ledger.links[idx];
        link.messages += 1;
        link.bytes += total_bytes;
    }

    /// Send a one-way message of `payload_bytes` from `from` to `to`.
    ///
    /// Returns the simulated one-way cost charged to `clock` (zero if `from == to`).
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
        payload_bytes: usize,
        clock: &ClockHandle,
    ) -> SimNanos {
        if from == to {
            return 0;
        }
        self.assert_node(from);
        self.assert_node(to);
        let total = payload_bytes + class.header_bytes();
        self.account(from, to, class, total as u64);
        let cost = self.latency.one_way_ns(total);
        clock.spend(cost);
        cost
    }

    /// Charge a synchronous request/response round trip: a `req_class` message of
    /// `req_bytes` from `from` to `to`, answered by a `resp_class` message of
    /// `resp_bytes`. Both legs are accounted; the full round trip is charged to the
    /// requester's clock. Returns the total simulated cost (zero if `from == to`).
    #[allow(clippy::too_many_arguments)]
    pub fn charge_round_trip(
        &self,
        from: NodeId,
        to: NodeId,
        req_class: MsgClass,
        req_bytes: usize,
        resp_class: MsgClass,
        resp_bytes: usize,
        clock: &ClockHandle,
    ) -> SimNanos {
        if from == to {
            return 0;
        }
        self.assert_node(from);
        self.assert_node(to);
        let req_total = req_bytes + req_class.header_bytes();
        let resp_total = resp_bytes + resp_class.header_bytes();
        self.account(from, to, req_class, req_total as u64);
        self.account(to, from, resp_class, resp_total as u64);
        let cost = self.latency.round_trip_ns(req_total, resp_total);
        clock.spend(cost);
        cost
    }

    /// Account a message without charging any clock — used for asynchronous traffic
    /// whose latency is hidden (e.g. OAL batches piggybacked on lock/barrier messages,
    /// Section II.A of the paper).
    pub fn account_async(&self, from: NodeId, to: NodeId, class: MsgClass, payload_bytes: usize) {
        if from == to {
            return;
        }
        self.assert_node(from);
        self.assert_node(to);
        let total = payload_bytes + class.header_bytes();
        self.account(from, to, class, total as u64);
    }

    /// Snapshot of the global per-class ledger.
    pub fn stats(&self) -> NetworkStats {
        self.ledger.lock().global.clone()
    }

    /// Traffic counters of the directed link `from -> to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.assert_node(from);
        self.assert_node(to);
        self.ledger.lock().links[from.index() * self.n_nodes + to.index()]
    }

    /// Reset all counters (between benchmark repetitions).
    pub fn reset(&self) {
        let mut ledger = self.ledger.lock();
        ledger.global = NetworkStats::new();
        ledger.links.fill(LinkStats::default());
    }

    fn assert_node(&self, n: NodeId) {
        assert!(
            n.index() < self.n_nodes,
            "node {n} out of range (fabric has {} nodes)",
            self.n_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockBoard;
    use crate::ids::ThreadId;

    fn clock() -> ClockHandle {
        ClockBoard::new(1).handle(ThreadId(0))
    }

    #[test]
    fn send_accounts_and_charges() {
        let f = Fabric::new(2, LatencyModel {
            base_ns: 100,
            ns_per_byte: 1.0,
        });
        let c = clock();
        let cost = f.send(NodeId(0), NodeId(1), MsgClass::ObjFetch, 22, &c);
        let total = 22 + MsgClass::ObjFetch.header_bytes();
        assert_eq!(cost, 100 + total as u64);
        assert_eq!(c.now(), cost);
        let stats = f.stats();
        assert_eq!(stats.class(MsgClass::ObjFetch).messages, 1);
        assert_eq!(stats.class(MsgClass::ObjFetch).bytes, total as u64);
        assert_eq!(f.link(NodeId(0), NodeId(1)).messages, 1);
        assert_eq!(f.link(NodeId(1), NodeId(0)).messages, 0);
    }

    #[test]
    fn local_send_is_free() {
        let f = Fabric::new(2, LatencyModel::fast_ethernet());
        let c = clock();
        assert_eq!(f.send(NodeId(1), NodeId(1), MsgClass::ObjData, 4096, &c), 0);
        assert_eq!(c.now(), 0);
        assert_eq!(f.stats().total_messages(), 0);
    }

    #[test]
    fn round_trip_accounts_both_legs() {
        let f = Fabric::new(3, LatencyModel::free());
        let c = clock();
        f.charge_round_trip(
            NodeId(0),
            NodeId(2),
            MsgClass::ObjFetch,
            16,
            MsgClass::ObjData,
            1024,
            &c,
        );
        let s = f.stats();
        assert_eq!(s.class(MsgClass::ObjFetch).messages, 1);
        assert_eq!(s.class(MsgClass::ObjData).messages, 1);
        assert_eq!(f.link(NodeId(0), NodeId(2)).messages, 1);
        assert_eq!(f.link(NodeId(2), NodeId(0)).messages, 1);
    }

    #[test]
    fn async_accounting_does_not_touch_clock() {
        let f = Fabric::new(2, LatencyModel::fast_ethernet());
        f.account_async(NodeId(1), NodeId(0), MsgClass::OalBatch, 5_000);
        assert_eq!(f.stats().oal_bytes(), 5_000 + MsgClass::OalBatch.header_bytes() as u64);
    }

    #[test]
    fn reset_clears_everything() {
        let f = Fabric::new(2, LatencyModel::free());
        let c = clock();
        f.send(NodeId(0), NodeId(1), MsgClass::DiffUpdate, 10, &c);
        f.reset();
        assert_eq!(f.stats().total_bytes(), 0);
        assert_eq!(f.link(NodeId(0), NodeId(1)).bytes, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_node_panics() {
        let f = Fabric::new(2, LatencyModel::free());
        let c = clock();
        f.send(NodeId(0), NodeId(7), MsgClass::ObjFetch, 0, &c);
    }
}
