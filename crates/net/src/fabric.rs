//! The simulated interconnect.
//!
//! A [`Fabric`] joins `n_nodes` logical nodes. Sending a message does two things:
//!
//! 1. **Accounting** — the (class, bytes) pair is added to the global ledger and to
//!    per-link counters, so benchmarks can report exact traffic volumes (Table III).
//! 2. **Time charging** — the sender's simulated clock is advanced by the
//!    [`LatencyModel`] cost. For synchronous request/response pairs (an object fault
//!    round-trip, a lock acquire) use [`Fabric::charge_round_trip`], which charges both
//!    directions at once; the actual data movement happens through shared memory in the
//!    caller (the simulation is in-process).
//!
//! Local (same-node) "messages" are free and unaccounted, like intra-JVM accesses in
//! the real system.
//!
//! A fabric built with [`Fabric::with_faults`] additionally consults a
//! [`FaultInjector`] on every send: one-way messages may be dropped (still accounted —
//! the wire carried them — but the receiver never sees them), duplicated (accounted
//! and charged twice) or hit with a latency spike; synchronous round trips never lose
//! their reply — a drop there manifests as a timeout-plus-retransmission penalty, so
//! the lock-step protocol stays live under any drop rate.

use std::sync::Arc;

use jessy_obs::{EventKind, TraceSink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::{ClockHandle, SimNanos};
use crate::error::NetError;
use crate::fault::{FaultDecision, FaultInjector, FaultPlan};
use crate::ids::NodeId;
use crate::latency::LatencyModel;
use crate::message::MsgClass;
use crate::stats::NetworkStats;

/// Timeout+retransmit cycles a synchronous round trip spends inside a partition
/// window before backing off straight to the heal horizon. Bounds the virtual
/// time burned per severed round trip so protocol traffic can never wedge.
const MAX_PARTITION_RETRIES: u64 = 4;

/// Per-link (ordered node pair) traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages sent over the link.
    pub messages: u64,
    /// Bytes sent over the link.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct FabricLedger {
    global: NetworkStats,
    links: Vec<LinkStats>, // n_nodes * n_nodes, row = from
}

/// The simulated cluster interconnect: pure accounting plus a latency model.
pub struct Fabric {
    n_nodes: usize,
    latency: LatencyModel,
    ledger: Mutex<FabricLedger>,
    injector: Option<Arc<FaultInjector>>,
    /// Journal for send/drop/duplicate/delay events; `None` (the default) emits
    /// nothing and costs one never-taken branch on the send paths.
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("n_nodes", &self.n_nodes)
            .field("latency", &self.latency)
            .field("faulty", &self.injector.is_some())
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

impl Fabric {
    /// Create a fabric joining `n_nodes` nodes under the given latency model.
    pub fn new(n_nodes: usize, latency: LatencyModel) -> Result<Self, NetError> {
        if n_nodes == 0 {
            return Err(NetError::EmptyFabric);
        }
        Ok(Fabric {
            n_nodes,
            latency,
            ledger: Mutex::new(FabricLedger {
                global: NetworkStats::new(),
                links: vec![LinkStats::default(); n_nodes * n_nodes],
            }),
            injector: None,
            sink: None,
        })
    }

    /// Create a fabric that injects faults according to `plan`. A plan with all
    /// probabilities zero behaves bit-identically to [`Fabric::new`].
    pub fn with_faults(
        n_nodes: usize,
        latency: LatencyModel,
        plan: FaultPlan,
    ) -> Result<Self, NetError> {
        let mut fabric = Fabric::new(n_nodes, latency)?;
        fabric.injector = Some(Arc::new(FaultInjector::new(plan)?));
        Ok(fabric)
    }

    /// Number of nodes joined by this fabric.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The fault injector, if this fabric was built with one. Share it with
    /// [`crate::Mailbox::sender_with_faults`] so mailbox traffic obeys the same plan.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Install an event journal. Sends (and injected drops/duplicates/delays)
    /// are emitted stamped with the sending thread's simulated clock.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Journal the outcome of one accounted transmission (no-op without a sink).
    fn trace_send(
        &self,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
        total_bytes: usize,
        decision: FaultDecision,
        clock: &ClockHandle,
    ) {
        let Some(sink) = &self.sink else { return };
        let (t, src) = (clock.now(), clock.thread().0);
        sink.emit(
            t,
            src,
            EventKind::MessageSent {
                from: from.0,
                to: to.0,
                class: class.label().to_string(),
                bytes: total_bytes as u64,
            },
        );
        if decision.dropped {
            sink.emit(
                t,
                src,
                EventKind::MessageDropped {
                    from: from.0,
                    to: to.0,
                    class: class.label().to_string(),
                },
            );
        }
        if decision.duplicated {
            sink.emit(
                t,
                src,
                EventKind::MessageDuplicated {
                    from: from.0,
                    to: to.0,
                    class: class.label().to_string(),
                },
            );
        }
        if decision.extra_delay_ns > 0 {
            sink.emit(
                t,
                src,
                EventKind::MessageDelayed {
                    from: from.0,
                    to: to.0,
                    class: class.label().to_string(),
                    extra_ns: decision.extra_delay_ns,
                },
            );
        }
    }

    /// Journal one message severed by a partition window (no-op without a sink).
    fn trace_partitioned(&self, from: NodeId, to: NodeId, class: MsgClass, clock: &ClockHandle) {
        let Some(sink) = &self.sink else { return };
        sink.emit(
            clock.now(),
            clock.thread().0,
            EventKind::MessagePartitioned {
                from: from.0,
                to: to.0,
                class: class.label().to_string(),
            },
        );
    }

    fn account(&self, from: NodeId, to: NodeId, class: MsgClass, total_bytes: u64) {
        let mut ledger = self.ledger.lock();
        ledger.global.record(class, total_bytes);
        let idx = from.index() * self.n_nodes + to.index();
        let link = &mut ledger.links[idx];
        link.messages += 1;
        link.bytes += total_bytes;
    }

    /// Send a one-way message of `payload_bytes` from `from` to `to`.
    ///
    /// Returns the simulated one-way cost charged to `clock` (zero if `from == to`).
    /// Under a fault plan, a dropped message is still accounted and charged (the wire
    /// carried it; only the receiver misses it), a duplicate is accounted and charged
    /// twice, and a delay spike adds to the charge.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
        payload_bytes: usize,
        clock: &ClockHandle,
    ) -> SimNanos {
        if from == to {
            return 0;
        }
        self.assert_node(from);
        self.assert_node(to);
        let total = payload_bytes + class.header_bytes();
        self.account(from, to, class, total as u64);
        let mut cost = self.latency.one_way_ns(total);
        let mut decision = FaultDecision::CLEAN;
        if let Some(inj) = &self.injector {
            // A partition window trumps every probabilistic decision: the wire
            // carried the sender's transmission into the cut, so the send is
            // still accounted and charged, but the receiver never sees it.
            if inj.severed(from, to, clock.now()) {
                inj.note_partitioned();
                clock.spend(cost);
                self.trace_send(from, to, class, total, FaultDecision::CLEAN, clock);
                self.trace_partitioned(from, to, class, clock);
                return cost;
            }
            let d = inj.decide(from, to, class);
            if d.duplicated {
                self.account(from, to, class, total as u64);
                cost += self.latency.one_way_ns(total);
            }
            cost += d.extra_delay_ns;
            decision = d;
        }
        clock.spend(cost);
        self.trace_send(from, to, class, total, decision, clock);
        cost
    }

    /// Charge a synchronous request/response round trip: a `req_class` message of
    /// `req_bytes` from `from` to `to`, answered by a `resp_class` message of
    /// `resp_bytes`. Both legs are accounted; the full round trip is charged to the
    /// requester's clock. Returns the total simulated cost (zero if `from == to`).
    ///
    /// Under a fault plan a dropped request does not stall the protocol: the requester
    /// pays a timeout (the plan's delay spike) plus a second request transmission and
    /// the trip completes — counted in [`crate::fault::FaultStats::retransmits`].
    #[allow(clippy::too_many_arguments)]
    pub fn charge_round_trip(
        &self,
        from: NodeId,
        to: NodeId,
        req_class: MsgClass,
        req_bytes: usize,
        resp_class: MsgClass,
        resp_bytes: usize,
        clock: &ClockHandle,
    ) -> SimNanos {
        if from == to {
            return 0;
        }
        self.assert_node(from);
        self.assert_node(to);
        let req_total = req_bytes + req_class.header_bytes();
        let resp_total = resp_bytes + resp_class.header_bytes();
        self.account(from, to, req_class, req_total as u64);
        self.account(to, from, resp_class, resp_total as u64);
        let mut cost = self.latency.round_trip_ns(req_total, resp_total);
        let mut decision = FaultDecision::CLEAN;
        let mut prepaid = 0;
        if let Some(inj) = &self.injector {
            // Partition: the requester times out and retransmits; each cycle
            // burns a timeout spike plus a request leg of virtual time, which
            // can carry the clock across the heal. If the cut outlives the
            // retry budget the requester backs off straight to the heal
            // horizon (synchronous protocol traffic must complete — only
            // asynchronous OAL traffic is actually lost to a partition), so
            // the protocol degrades in latency, never wedges.
            let mut retries = 0u64;
            let retry_from = clock.now();
            while retries < MAX_PARTITION_RETRIES && inj.severed(from, to, clock.now()) {
                // Spent immediately (not folded into `cost`) so the next
                // severed() check sees virtual time advancing.
                self.account(from, to, req_class, req_total as u64);
                clock.spend(inj.plan().delay_spike_ns.max(1) + self.latency.one_way_ns(req_total));
                retries += 1;
            }
            if retries > 0 {
                inj.note_retransmits(retries);
                if inj.severed(from, to, clock.now()) {
                    inj.note_partitioned();
                    if let Some(heal) = inj.plan().heal_at(from, to, clock.now()) {
                        clock.raise_to(heal);
                    }
                }
                self.trace_partitioned(from, to, req_class, clock);
                prepaid = clock.now() - retry_from;
            }
            let d = inj.decide_sync(from, to, req_class);
            if d.dropped {
                // Timeout, then retransmit the request leg.
                self.account(from, to, req_class, req_total as u64);
                cost += inj.plan().delay_spike_ns + self.latency.one_way_ns(req_total);
            } else if d.duplicated {
                // Spurious duplicate request; the home dedupes, the wire still paid.
                self.account(from, to, req_class, req_total as u64);
            }
            cost += d.extra_delay_ns;
            decision = d;
        }
        clock.spend(cost);
        self.trace_send(from, to, req_class, req_total + resp_total, decision, clock);
        cost + prepaid
    }

    /// Account a message without charging any clock — used for asynchronous traffic
    /// whose latency is hidden (e.g. OAL batches piggybacked on lock/barrier messages,
    /// Section II.A of the paper). Fault decisions for such traffic are made at the
    /// delivery point (the mailbox), not here, so a message is never judged twice.
    pub fn account_async(&self, from: NodeId, to: NodeId, class: MsgClass, payload_bytes: usize) {
        if from == to {
            return;
        }
        self.assert_node(from);
        self.assert_node(to);
        let total = payload_bytes + class.header_bytes();
        self.account(from, to, class, total as u64);
    }

    /// Snapshot of the global per-class ledger, including injected-fault counters.
    pub fn stats(&self) -> NetworkStats {
        let mut s = self.ledger.lock().global.clone();
        if let Some(inj) = &self.injector {
            s.faults = inj.stats();
        }
        s
    }

    /// Traffic counters of the directed link `from -> to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.assert_node(from);
        self.assert_node(to);
        self.ledger.lock().links[from.index() * self.n_nodes + to.index()]
    }

    /// Reset all counters (between benchmark repetitions).
    pub fn reset(&self) {
        let mut ledger = self.ledger.lock();
        ledger.global = NetworkStats::new();
        ledger.links.fill(LinkStats::default());
        if let Some(inj) = &self.injector {
            inj.reset();
        }
    }

    fn assert_node(&self, n: NodeId) {
        assert!(
            n.index() < self.n_nodes,
            "node {n} out of range (fabric has {} nodes)",
            self.n_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockBoard;
    use crate::ids::ThreadId;

    fn clock() -> ClockHandle {
        ClockBoard::new(1).handle(ThreadId(0))
    }

    #[test]
    fn send_accounts_and_charges() {
        let f = Fabric::new(2, LatencyModel {
            base_ns: 100,
            ns_per_byte: 1.0,
        })
        .unwrap();
        let c = clock();
        let cost = f.send(NodeId(0), NodeId(1), MsgClass::ObjFetch, 22, &c);
        let total = 22 + MsgClass::ObjFetch.header_bytes();
        assert_eq!(cost, 100 + total as u64);
        assert_eq!(c.now(), cost);
        let stats = f.stats();
        assert_eq!(stats.class(MsgClass::ObjFetch).messages, 1);
        assert_eq!(stats.class(MsgClass::ObjFetch).bytes, total as u64);
        assert_eq!(f.link(NodeId(0), NodeId(1)).messages, 1);
        assert_eq!(f.link(NodeId(1), NodeId(0)).messages, 0);
    }

    #[test]
    fn local_send_is_free() {
        let f = Fabric::new(2, LatencyModel::fast_ethernet()).unwrap();
        let c = clock();
        assert_eq!(f.send(NodeId(1), NodeId(1), MsgClass::ObjData, 4096, &c), 0);
        assert_eq!(c.now(), 0);
        assert_eq!(f.stats().total_messages(), 0);
    }

    #[test]
    fn round_trip_accounts_both_legs() {
        let f = Fabric::new(3, LatencyModel::free()).unwrap();
        let c = clock();
        f.charge_round_trip(
            NodeId(0),
            NodeId(2),
            MsgClass::ObjFetch,
            16,
            MsgClass::ObjData,
            1024,
            &c,
        );
        let s = f.stats();
        assert_eq!(s.class(MsgClass::ObjFetch).messages, 1);
        assert_eq!(s.class(MsgClass::ObjData).messages, 1);
        assert_eq!(f.link(NodeId(0), NodeId(2)).messages, 1);
        assert_eq!(f.link(NodeId(2), NodeId(0)).messages, 1);
    }

    #[test]
    fn async_accounting_does_not_touch_clock() {
        let f = Fabric::new(2, LatencyModel::fast_ethernet()).unwrap();
        f.account_async(NodeId(1), NodeId(0), MsgClass::OalBatch, 5_000);
        assert_eq!(f.stats().oal_bytes(), 5_000 + MsgClass::OalBatch.header_bytes() as u64);
    }

    #[test]
    fn reset_clears_everything() {
        let f = Fabric::new(2, LatencyModel::free()).unwrap();
        let c = clock();
        f.send(NodeId(0), NodeId(1), MsgClass::DiffUpdate, 10, &c);
        f.reset();
        assert_eq!(f.stats().total_bytes(), 0);
        assert_eq!(f.link(NodeId(0), NodeId(1)).bytes, 0);
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        assert_eq!(
            Fabric::new(0, LatencyModel::free()).err(),
            Some(NetError::EmptyFabric)
        );
        assert!(Fabric::with_faults(0, LatencyModel::free(), FaultPlan::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_node_panics() {
        let f = Fabric::new(2, LatencyModel::free()).unwrap();
        let c = clock();
        f.send(NodeId(0), NodeId(7), MsgClass::ObjFetch, 0, &c);
    }

    #[test]
    fn zero_fault_plan_is_bit_identical() {
        let lat = LatencyModel::fast_ethernet();
        let plain = Fabric::new(2, lat).unwrap();
        let faulty = Fabric::with_faults(2, lat, FaultPlan::default()).unwrap();
        let (c1, c2) = (clock(), clock());
        for (f, c) in [(&plain, &c1), (&faulty, &c2)] {
            f.send(NodeId(0), NodeId(1), MsgClass::DiffUpdate, 321, c);
            f.charge_round_trip(NodeId(1), NodeId(0), MsgClass::ObjFetch, 16, MsgClass::ObjData, 4096, c);
        }
        assert_eq!(plain.stats(), faulty.stats());
        assert_eq!(c1.now(), c2.now());
        assert!(faulty.stats().faults.is_zero());
    }

    #[test]
    fn dropped_round_trip_pays_a_retransmission() {
        let lat = LatencyModel {
            base_ns: 100,
            ns_per_byte: 0.0,
        };
        let plan = FaultPlan {
            drop_prob: 1.0,
            delay_spike_ns: 10_000,
            ..FaultPlan::default()
        };
        let f = Fabric::with_faults(2, lat, plan).unwrap();
        let c = clock();
        let cost = f.charge_round_trip(
            NodeId(0),
            NodeId(1),
            MsgClass::LockAcquire,
            8,
            MsgClass::LockGrant,
            8,
            &c,
        );
        // Round trip (200) + timeout (10_000) + retransmitted request (100).
        assert_eq!(cost, 200 + 10_000 + 100);
        let s = f.stats();
        assert_eq!(s.class(MsgClass::LockAcquire).messages, 2, "request sent twice");
        assert_eq!(s.class(MsgClass::LockGrant).messages, 1);
        assert_eq!(s.faults.retransmits, 1);
    }

    #[test]
    fn duplicated_one_way_send_is_accounted_twice() {
        let lat = LatencyModel {
            base_ns: 50,
            ns_per_byte: 0.0,
        };
        let plan = FaultPlan {
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        };
        let f = Fabric::with_faults(2, lat, plan).unwrap();
        let c = clock();
        let cost = f.send(NodeId(0), NodeId(1), MsgClass::WriteNotice, 0, &c);
        assert_eq!(cost, 100, "both transmissions charged");
        assert_eq!(f.stats().class(MsgClass::WriteNotice).messages, 2);
        assert_eq!(f.stats().faults.duplicated, 1);
    }

    #[test]
    fn partitioned_one_way_send_is_charged_but_counted_severed() {
        let lat = LatencyModel {
            base_ns: 100,
            ns_per_byte: 0.0,
        };
        let plan = FaultPlan {
            partitions: vec![crate::fault::PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 0,
                heal_ns: None,
            }],
            ..FaultPlan::default()
        };
        let f = Fabric::with_faults(2, lat, plan).unwrap();
        let c = clock();
        let cost = f.send(NodeId(0), NodeId(1), MsgClass::WriteNotice, 0, &c);
        assert_eq!(cost, 100, "the sender's transmission is still charged");
        assert_eq!(f.stats().class(MsgClass::WriteNotice).messages, 1);
        assert_eq!(f.stats().faults.partitioned, 1);
        assert_eq!(f.stats().faults.dropped, 0, "partition trumps the drop roll");
    }

    #[test]
    fn partitioned_round_trip_retries_across_the_heal() {
        let lat = LatencyModel {
            base_ns: 100,
            ns_per_byte: 0.0,
        };
        // Heals after one retry cycle (timeout 10_000 + request leg 100).
        let plan = FaultPlan {
            delay_spike_ns: 10_000,
            partitions: vec![crate::fault::PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 0,
                heal_ns: Some(5_000),
            }],
            ..FaultPlan::default()
        };
        let f = Fabric::with_faults(2, lat, plan).unwrap();
        let c = clock();
        let cost = f.charge_round_trip(
            NodeId(0),
            NodeId(1),
            MsgClass::LockAcquire,
            8,
            MsgClass::LockGrant,
            8,
            &c,
        );
        // One retry cycle (10_100) carries the clock past the heal at 5_000,
        // then the round trip completes normally (200).
        assert_eq!(cost, 10_100 + 200);
        assert_eq!(c.now(), cost);
        let s = f.stats();
        assert_eq!(s.faults.retransmits, 1);
        assert_eq!(s.faults.partitioned, 0, "the trip completed after the heal");
        assert_eq!(s.class(MsgClass::LockAcquire).messages, 2, "request sent twice");
        assert_eq!(s.class(MsgClass::LockGrant).messages, 1);
    }

    #[test]
    fn permanently_partitioned_round_trip_backs_off_but_completes() {
        let lat = LatencyModel {
            base_ns: 100,
            ns_per_byte: 0.0,
        };
        let plan = FaultPlan {
            delay_spike_ns: 1_000,
            partitions: vec![crate::fault::PartitionWindow {
                island: vec![NodeId(1)],
                from_ns: 0,
                heal_ns: None,
            }],
            ..FaultPlan::default()
        };
        let f = Fabric::with_faults(2, lat, plan).unwrap();
        let c = clock();
        let cost = f.charge_round_trip(
            NodeId(0),
            NodeId(1),
            MsgClass::ObjFetch,
            16,
            MsgClass::ObjData,
            1024,
            &c,
        );
        // Retry budget exhausted (4 cycles of 1_100), then the trip completes
        // anyway: synchronous protocol traffic may not wedge.
        assert_eq!(cost, 4 * 1_100 + 200);
        let s = f.stats();
        assert_eq!(s.faults.retransmits, 4);
        assert_eq!(s.faults.partitioned, 1);
    }

    #[test]
    fn reset_clears_fault_counters_too() {
        let f = Fabric::with_faults(
            2,
            LatencyModel::free(),
            FaultPlan {
                drop_prob: 1.0,
                ..FaultPlan::default()
            },
        )
        .unwrap();
        let c = clock();
        f.send(NodeId(0), NodeId(1), MsgClass::DiffUpdate, 10, &c);
        assert_eq!(f.stats().faults.dropped, 1);
        f.reset();
        assert!(f.stats().faults.is_zero());
    }
}
