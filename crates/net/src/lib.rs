//! # jessy-net — simulated cluster interconnect
//!
//! This crate is the lowest substrate of the `jessy` reproduction of
//! *"Adaptive Sampling-Based Profiling Techniques for Optimizing the Distributed JVM
//! Runtime"* (IPDPS 2010). The paper ran on the HKU Gideon 300 cluster over Fast
//! Ethernet; we have no cluster, so every protocol message is **accounted** instead of
//! transmitted: the [`Fabric`] records per-class message counts and byte volumes
//! (reproducing the "GOS message volume" vs "OAL message volume" columns of Table III)
//! and charges a configurable [`LatencyModel`] onto per-thread **simulated clocks**
//! ([`clock`]), from which deterministic "execution times" are derived.
//!
//! Nothing in here knows about objects or profiling; higher crates (`jessy-gos`,
//! `jessy-core`, `jessy-runtime`) drive it.


#![warn(missing_docs)]
pub mod clock;
pub mod error;
pub mod executor;
pub mod fabric;
pub mod fault;
pub mod ids;
pub mod latency;
pub mod mailbox;
pub mod message;
pub mod stats;

pub use clock::{ClockBoard, ClockHandle, SimNanos};
pub use error::NetError;
pub use executor::{DetExecutor, POISON_MSG};
pub use fabric::Fabric;
pub use fault::{
    oal_fault_key, CrashWindow, FaultDecision, FaultInjector, FaultPlan, FaultStats,
    MasterCrashWindow, PartitionWindow, SlowWindow, StallWindow,
};
pub use ids::{NodeId, ThreadId};
pub use latency::LatencyModel;
pub use mailbox::{Envelope, Mailbox};
pub use message::MsgClass;
pub use stats::{ClassStats, NetworkStats};
