//! Asynchronous typed mailboxes.
//!
//! OAL batches flow from worker nodes to the master's correlation-computing daemon
//! asynchronously (the paper piggybacks them on lock/barrier requests). A
//! [`Mailbox<T>`] is an unbounded MPSC channel plus the identity of its owner; byte
//! accounting is done by the sender against the [`crate::Fabric`] separately, because
//! only the caller knows the serialized size of `T`.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::ids::NodeId;

/// A message together with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub body: T,
}

/// An unbounded typed mailbox owned by one node (usually the master).
#[derive(Debug)]
pub struct Mailbox<T> {
    owner: NodeId,
    tx: Sender<Envelope<T>>,
    rx: Receiver<Envelope<T>>,
}

impl<T> Mailbox<T> {
    /// Create a mailbox owned by `owner`.
    pub fn new(owner: NodeId) -> Self {
        let (tx, rx) = unbounded();
        Mailbox { owner, tx, rx }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// A cheap cloneable sender for remote nodes.
    pub fn sender(&self) -> MailboxSender<T> {
        MailboxSender {
            owner: self.owner,
            tx: self.tx.clone(),
        }
    }

    /// Drain every currently queued envelope.
    pub fn drain(&self) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        while let Ok(env) = self.rx.try_recv() {
            out.push(env);
        }
        out
    }

    /// Number of queued envelopes.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no envelopes are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// Sending half of a [`Mailbox`].
#[derive(Debug, Clone)]
pub struct MailboxSender<T> {
    owner: NodeId,
    tx: Sender<Envelope<T>>,
}

impl<T> MailboxSender<T> {
    /// The destination (owner) node of the mailbox.
    pub fn destination(&self) -> NodeId {
        self.owner
    }

    /// Post a message. Returns `false` if the mailbox was dropped.
    pub fn post(&self, from: NodeId, body: T) -> bool {
        self.tx.send(Envelope { from, body }).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_preserves_order() {
        let mb: Mailbox<u32> = Mailbox::new(NodeId::MASTER);
        let s = mb.sender();
        assert!(s.post(NodeId(1), 10));
        assert!(s.post(NodeId(2), 20));
        assert_eq!(mb.len(), 2);
        let drained = mb.drain();
        assert_eq!(
            drained,
            vec![
                Envelope { from: NodeId(1), body: 10 },
                Envelope { from: NodeId(2), body: 20 }
            ]
        );
        assert!(mb.is_empty());
    }

    #[test]
    fn post_after_drop_reports_failure() {
        let mb: Mailbox<u8> = Mailbox::new(NodeId(0));
        let s = mb.sender();
        drop(mb);
        assert!(!s.post(NodeId(1), 1));
    }

    #[test]
    fn senders_work_across_threads() {
        let mb: Mailbox<usize> = Mailbox::new(NodeId(0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = mb.sender();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        s.post(NodeId(i as u16), i * 100 + j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.drain().len(), 400);
    }
}
