//! Asynchronous typed mailboxes.
//!
//! OAL batches flow from worker nodes to the master's correlation-computing daemon
//! asynchronously (the paper piggybacks them on lock/barrier requests). A
//! [`Mailbox<T>`] is an unbounded MPSC channel plus the identity of its owner; byte
//! accounting is done by the sender against the [`crate::Fabric`] separately, because
//! only the caller knows the serialized size of `T`.
//!
//! A sender obtained through [`Mailbox::sender_with_faults`] consults a shared
//! [`FaultInjector`] on every post: a dropped message silently vanishes (the post still
//! "succeeds" — the sender has no way to know), a duplicated one is enqueued twice.
//! This is where OAL loss happens under a chaos plan; the fabric only accounts bytes.
//!
//! # Bounded mailboxes
//!
//! [`Mailbox::bounded`] caps the queue: a post that finds `capacity` envelopes
//! already queued fails with [`NetError::MailboxFull`] instead of growing the queue
//! without limit. The *caller* owns the backpressure decision (requeue, merge, shed —
//! see the runtime's shed policies); the mailbox itself never drops silently. The
//! unbounded [`Mailbox::new`] remains the legacy default. Under the deterministic
//! cooperative executor the occupancy check is exact; with free-running OS threads it
//! is best-effort (check and enqueue are not one atomic step), which is fine — the
//! bound protects memory, not a protocol invariant.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::NetError;
use crate::fault::{FaultDecision, FaultInjector};
use crate::ids::NodeId;
use crate::message::MsgClass;

/// A message together with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub body: T,
}

/// A typed mailbox owned by one node (usually the master); unbounded by default,
/// optionally capacity-capped (see [`Mailbox::bounded`]).
#[derive(Debug)]
pub struct Mailbox<T> {
    owner: NodeId,
    capacity: Option<usize>,
    tx: Sender<Envelope<T>>,
    rx: Receiver<Envelope<T>>,
}

impl<T> Mailbox<T> {
    /// Create an unbounded mailbox owned by `owner` (the legacy default).
    pub fn new(owner: NodeId) -> Self {
        let (tx, rx) = unbounded();
        Mailbox { owner, capacity: None, tx, rx }
    }

    /// Create a mailbox that holds at most `capacity` envelopes: a post finding the
    /// queue at capacity fails with [`NetError::MailboxFull`] so the sender can apply
    /// explicit backpressure instead of wedging memory under a load spike.
    pub fn bounded(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity mailbox could never accept mail");
        let (tx, rx) = unbounded();
        Mailbox { owner, capacity: Some(capacity), tx, rx }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// A cheap cloneable sender for remote nodes.
    pub fn sender(&self) -> MailboxSender<T> {
        MailboxSender {
            owner: self.owner,
            capacity: self.capacity,
            tx: self.tx.clone(),
            faults: None,
        }
    }

    /// A sender whose posts are subject to fault injection: messages of `class` may be
    /// dropped or duplicated according to the injector's plan. Share the fabric's
    /// injector (see [`crate::Fabric::injector`]) so all traffic obeys one plan.
    pub fn sender_with_faults(
        &self,
        injector: Arc<FaultInjector>,
        class: MsgClass,
    ) -> MailboxSender<T> {
        MailboxSender {
            owner: self.owner,
            capacity: self.capacity,
            tx: self.tx.clone(),
            faults: Some((injector, class)),
        }
    }

    /// Drain every currently queued envelope.
    pub fn drain(&self) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        while let Ok(env) = self.rx.try_recv() {
            out.push(env);
        }
        out
    }

    /// Number of queued envelopes.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no envelopes are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// Sending half of a [`Mailbox`].
#[derive(Debug, Clone)]
pub struct MailboxSender<T> {
    owner: NodeId,
    capacity: Option<usize>,
    tx: Sender<Envelope<T>>,
    faults: Option<(Arc<FaultInjector>, MsgClass)>,
}

impl<T> MailboxSender<T> {
    /// The destination (owner) node of the mailbox.
    pub fn destination(&self) -> NodeId {
        self.owner
    }

    /// The destination mailbox's capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Would a post right now hit the capacity gate? Always `false` for an
    /// unbounded mailbox. Lets producers apply backpressure *before* handing a
    /// message over (a failed post consumes the message).
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|cap| self.tx.len() >= cap)
    }

    /// Capacity gate: `Err(MailboxFull)` when the queue already holds `capacity`
    /// envelopes. Checked once per post, *after* a drop decision (a dropped message
    /// never occupies a slot) and before any enqueue; a duplicated delivery may
    /// overshoot the bound by one envelope, which is harmless — the bound protects
    /// memory, not an exact protocol invariant.
    fn check_capacity(&self) -> Result<(), NetError> {
        if let Some(cap) = self.capacity {
            if self.tx.len() >= cap {
                return Err(NetError::MailboxFull {
                    destination: self.owner,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    fn send_one(&self, from: NodeId, body: T) -> Result<(), NetError> {
        self.tx
            .send(Envelope { from, body })
            .map_err(|_| NetError::MailboxClosed {
                destination: self.owner,
            })
    }
}

impl<T: Clone> MailboxSender<T> {
    /// Post a message. Returns `false` if the mailbox was dropped.
    pub fn post(&self, from: NodeId, body: T) -> bool {
        self.try_post(from, body).is_ok()
    }

    /// Post a message, surfacing a closed mailbox as a typed error. Fault decisions
    /// (if this is a lossy sender) are keyed by the link's message sequence.
    pub fn try_post(&self, from: NodeId, body: T) -> Result<(), NetError> {
        match &self.faults {
            Some((inj, class)) => {
                let d = inj.decide(from, self.owner, *class);
                self.deliver(from, d, body)
            }
            None => {
                self.check_capacity()?;
                self.send_one(from, body)
            }
        }
    }

    /// Post a message whose fault decision is keyed by caller-supplied content (see
    /// [`crate::fault::oal_fault_key`]), making loss reproducible across runs
    /// regardless of thread scheduling. Without an injector this is a plain post.
    pub fn try_post_keyed(&self, from: NodeId, key: u64, body: T) -> Result<(), NetError> {
        match &self.faults {
            Some((inj, class)) => {
                let d = inj.decide_keyed(from, self.owner, *class, key);
                self.deliver(from, d, body)
            }
            None => {
                self.check_capacity()?;
                self.send_one(from, body)
            }
        }
    }

    fn deliver(&self, from: NodeId, d: FaultDecision, body: T) -> Result<(), NetError> {
        if d.dropped {
            // The sender cannot observe the loss; from its side the post succeeded.
            return Ok(());
        }
        self.check_capacity()?;
        if d.duplicated {
            self.send_one(from, body.clone())?;
        }
        self.send_one(from, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn post_and_drain_preserves_order() {
        let mb: Mailbox<u32> = Mailbox::new(NodeId::MASTER);
        let s = mb.sender();
        assert!(s.post(NodeId(1), 10));
        assert!(s.post(NodeId(2), 20));
        assert_eq!(mb.len(), 2);
        let drained = mb.drain();
        assert_eq!(
            drained,
            vec![
                Envelope { from: NodeId(1), body: 10 },
                Envelope { from: NodeId(2), body: 20 }
            ]
        );
        assert!(mb.is_empty());
    }

    #[test]
    fn post_after_drop_reports_failure() {
        let mb: Mailbox<u8> = Mailbox::new(NodeId(0));
        let s = mb.sender();
        drop(mb);
        assert!(!s.post(NodeId(1), 1));
        assert_eq!(
            s.try_post(NodeId(1), 1),
            Err(NetError::MailboxClosed { destination: NodeId(0) })
        );
    }

    #[test]
    fn senders_work_across_threads() {
        let mb: Mailbox<usize> = Mailbox::new(NodeId(0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = mb.sender();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        s.post(NodeId(i as u16), i * 100 + j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.drain().len(), 400);
    }

    #[test]
    fn lossy_sender_drops_and_duplicates() {
        let inj = Arc::new(
            FaultInjector::new(FaultPlan {
                oal_drop: 0.5,
                ..FaultPlan::default()
            })
            .unwrap(),
        );
        let mb: Mailbox<u64> = Mailbox::new(NodeId::MASTER);
        let s = mb.sender_with_faults(Arc::clone(&inj), MsgClass::OalBatch);
        for k in 0..200u64 {
            s.try_post_keyed(NodeId(1), k, k).unwrap();
        }
        let got = mb.drain().len() as u64;
        assert_eq!(got, 200 - inj.stats().dropped);
        assert!(got > 50 && got < 150, "~half should survive, got {got}");

        let dup = Arc::new(
            FaultInjector::new(FaultPlan {
                duplicate_prob: 1.0,
                ..FaultPlan::default()
            })
            .unwrap(),
        );
        let s = mb.sender_with_faults(dup, MsgClass::OalBatch);
        s.try_post_keyed(NodeId(1), 7, 7).unwrap();
        assert_eq!(mb.drain().len(), 2, "duplicate enqueued twice");
    }

    #[test]
    fn bounded_mailbox_rejects_posts_at_capacity() {
        let mb: Mailbox<u32> = Mailbox::bounded(NodeId::MASTER, 2);
        assert_eq!(mb.capacity(), Some(2));
        let s = mb.sender();
        assert_eq!(s.capacity(), Some(2));
        s.try_post(NodeId(1), 1).unwrap();
        s.try_post(NodeId(1), 2).unwrap();
        assert_eq!(
            s.try_post(NodeId(1), 3),
            Err(NetError::MailboxFull { destination: NodeId::MASTER, capacity: 2 })
        );
        assert_eq!(mb.len(), 2, "the rejected envelope was never enqueued");
        // Draining frees capacity; the sender can resume.
        assert_eq!(mb.drain().len(), 2);
        s.try_post(NodeId(1), 3).unwrap();
        assert_eq!(mb.drain(), vec![Envelope { from: NodeId(1), body: 3 }]);
    }

    #[test]
    fn bounded_lossy_sender_gates_keyed_posts_but_not_drops() {
        // Every message dropped by the plan: the queue never fills, so capacity 1
        // never trips (a dropped message occupies no slot).
        let inj = Arc::new(
            FaultInjector::new(FaultPlan {
                oal_drop: 1.0,
                ..FaultPlan::default()
            })
            .unwrap(),
        );
        let mb: Mailbox<u64> = Mailbox::bounded(NodeId::MASTER, 1);
        let s = mb.sender_with_faults(inj, MsgClass::OalBatch);
        for k in 0..10u64 {
            s.try_post_keyed(NodeId(1), k, k).unwrap();
        }
        assert!(mb.is_empty());

        // Clean plan: the second surviving post hits the bound.
        let inj = Arc::new(FaultInjector::new(FaultPlan::default()).unwrap());
        let mb: Mailbox<u64> = Mailbox::bounded(NodeId::MASTER, 1);
        let s = mb.sender_with_faults(inj, MsgClass::OalBatch);
        s.try_post_keyed(NodeId(1), 0, 0).unwrap();
        assert_eq!(
            s.try_post_keyed(NodeId(1), 1, 1),
            Err(NetError::MailboxFull { destination: NodeId::MASTER, capacity: 1 })
        );
        // The same keyed post succeeds once the queue drains: keyed decisions are
        // derived, not drawn, so a retry re-derives the same verdict.
        mb.drain();
        s.try_post_keyed(NodeId(1), 1, 1).unwrap();
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn unbounded_mailbox_reports_no_capacity() {
        let mb: Mailbox<u8> = Mailbox::new(NodeId(0));
        assert_eq!(mb.capacity(), None);
        assert_eq!(mb.sender().capacity(), None);
    }

    #[test]
    fn zero_plan_lossy_sender_is_transparent() {
        let inj = Arc::new(FaultInjector::new(FaultPlan::default()).unwrap());
        let mb: Mailbox<u64> = Mailbox::new(NodeId::MASTER);
        let s = mb.sender_with_faults(inj, MsgClass::OalBatch);
        for k in 0..50u64 {
            s.try_post_keyed(NodeId(1), k, k).unwrap();
        }
        assert_eq!(mb.len(), 50);
    }
}
