//! Network cost model.
//!
//! The paper's testbed used Fast Ethernet (100 Mbit/s) between Pentium-4 nodes. We
//! model a message's one-way cost as `base + bytes / bandwidth`, which is the standard
//! LogP-style alpha-beta model and is what home-based LRC papers (e.g. HLRC, OSDI'96)
//! use to reason about protocol traffic.

use serde::{Deserialize, Serialize};

/// Alpha-beta latency model: `cost(bytes) = base_ns + bytes * ns_per_byte`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-message one-way software + wire latency, in nanoseconds.
    pub base_ns: u64,
    /// Transfer cost per byte, in nanoseconds (1e9 / bytes-per-second).
    pub ns_per_byte: f64,
}

impl LatencyModel {
    /// Fast Ethernet as on the HKU Gideon 300 cluster: ~75 us one-way base latency
    /// (kernel TCP stack of the era) and 12.5 MB/s peak bandwidth (80 ns/byte).
    pub fn fast_ethernet() -> Self {
        LatencyModel {
            base_ns: 75_000,
            ns_per_byte: 80.0,
        }
    }

    /// Gigabit-class network (for sensitivity/ablation runs): 20 us base, 125 MB/s.
    pub fn gigabit() -> Self {
        LatencyModel {
            base_ns: 20_000,
            ns_per_byte: 8.0,
        }
    }

    /// A zero-cost network; useful in unit tests that only check accounting.
    pub fn free() -> Self {
        LatencyModel {
            base_ns: 0,
            ns_per_byte: 0.0,
        }
    }

    /// One-way cost of a message of `bytes` payload+header, in nanoseconds.
    #[inline]
    pub fn one_way_ns(&self, bytes: usize) -> u64 {
        self.base_ns + (bytes as f64 * self.ns_per_byte) as u64
    }

    /// Round-trip cost of a request of `req_bytes` answered by `resp_bytes`.
    #[inline]
    pub fn round_trip_ns(&self, req_bytes: usize, resp_bytes: usize) -> u64 {
        self.one_way_ns(req_bytes) + self.one_way_ns(resp_bytes)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::fast_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_is_affine_in_bytes() {
        let m = LatencyModel {
            base_ns: 100,
            ns_per_byte: 2.0,
        };
        assert_eq!(m.one_way_ns(0), 100);
        assert_eq!(m.one_way_ns(10), 120);
        assert_eq!(m.one_way_ns(1000), 2100);
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let m = LatencyModel::free();
        assert_eq!(m.round_trip_ns(100, 4096), 0);
        let m = LatencyModel {
            base_ns: 50,
            ns_per_byte: 1.0,
        };
        assert_eq!(m.round_trip_ns(10, 20), 50 + 10 + 50 + 20);
    }

    #[test]
    fn fast_ethernet_orders_of_magnitude() {
        let m = LatencyModel::fast_ethernet();
        // A 4 KB page-sized transfer should cost a few hundred microseconds.
        let ns = m.round_trip_ns(78, 4096 + 78);
        assert!(ns > 150_000 && ns < 1_000_000, "got {ns}");
    }
}
