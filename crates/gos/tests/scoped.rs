//! Scope-consistency (ScC) mode tests: per-lock notice histories.

use jessy_gos::protocol::ConsistencyModel;
use jessy_gos::{CostModel, Gos, GosConfig, ThreadSpace};
use jessy_net::{ClockBoard, ClockHandle, LatencyModel, NodeId, ThreadId};

fn gos(n: usize, consistency: ConsistencyModel) -> (Gos, Vec<ClockHandle>, Vec<ThreadSpace>) {
    let g = Gos::new(GosConfig {
        n_nodes: n,
        n_threads: n,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency,
        faults: None,
    });
    let board = ClockBoard::new(n);
    let clocks = (0..n).map(|i| board.handle(ThreadId(i as u32))).collect();
    let spaces = (0..n).map(|i| ThreadSpace::new(ThreadId(i as u32))).collect();
    (g, clocks, spaces)
}

#[test]
fn scoped_acquire_sees_only_its_locks_writes() {
    let (g, c, mut s) = gos(3, ConsistencyModel::Scoped);
    let class = g.classes().register_scalar("X", 1);
    let a = g.alloc_scalar(NodeId(0), class, &c[0], None);
    let b = g.alloc_scalar(NodeId(0), class, &c[0], None);
    let lock_a = g.register_lock();
    let lock_b = g.register_lock();

    // Thread 2 caches both objects.
    g.read(&mut s[2], NodeId(2), a.id, &c[2], |_| {});
    g.read(&mut s[2], NodeId(2), b.id, &c[2], |_| {});

    // Thread 1 writes `a` under lock A and `b` under lock B.
    g.lock_acquire(&mut s[1], lock_a, NodeId(1), &c[1]);
    g.write(&mut s[1], NodeId(1), a.id, &c[1], |d| d[0] = 1.0);
    g.lock_release(&mut s[1], lock_a, NodeId(1), &c[1]);
    g.lock_acquire(&mut s[1], lock_b, NodeId(1), &c[1]);
    g.write(&mut s[1], NodeId(1), b.id, &c[1], |d| d[0] = 2.0);
    g.lock_release(&mut s[1], lock_b, NodeId(1), &c[1]);

    // Thread 2 acquires only lock A: sees a's update, b's cache stays (legally) stale.
    let applied = g.lock_acquire(&mut s[2], lock_a, NodeId(2), &c[2]);
    assert_eq!(applied, 1, "only lock A's notice applies");
    g.lock_release(&mut s[2], lock_a, NodeId(2), &c[2]);
    let (va, out_a) = g.read(&mut s[2], NodeId(2), a.id, &c[2], |d| d[0]);
    assert_eq!(va, 1.0);
    assert!(out_a.real_fault, "a was invalidated by lock A's scope");
    let (vb, out_b) = g.read(&mut s[2], NodeId(2), b.id, &c[2], |d| d[0]);
    assert_eq!(vb, 0.0, "b's write is outside the acquired scope");
    assert!(!out_b.faulted());

    // Acquiring lock B then delivers b.
    g.lock_acquire(&mut s[2], lock_b, NodeId(2), &c[2]);
    g.lock_release(&mut s[2], lock_b, NodeId(2), &c[2]);
    let (vb, _) = g.read(&mut s[2], NodeId(2), b.id, &c[2], |d| d[0]);
    assert_eq!(vb, 2.0);
}

#[test]
fn global_mode_applies_everything_on_any_acquire() {
    // The same scenario under GlobalHlrc: acquiring lock A invalidates BOTH caches.
    let (g, c, mut s) = gos(3, ConsistencyModel::GlobalHlrc);
    let class = g.classes().register_scalar("X", 1);
    let a = g.alloc_scalar(NodeId(0), class, &c[0], None);
    let b = g.alloc_scalar(NodeId(0), class, &c[0], None);
    let lock_a = g.register_lock();
    let lock_b = g.register_lock();

    g.read(&mut s[2], NodeId(2), a.id, &c[2], |_| {});
    g.read(&mut s[2], NodeId(2), b.id, &c[2], |_| {});

    g.lock_acquire(&mut s[1], lock_a, NodeId(1), &c[1]);
    g.write(&mut s[1], NodeId(1), a.id, &c[1], |d| d[0] = 1.0);
    g.lock_release(&mut s[1], lock_a, NodeId(1), &c[1]);
    g.lock_acquire(&mut s[1], lock_b, NodeId(1), &c[1]);
    g.write(&mut s[1], NodeId(1), b.id, &c[1], |d| d[0] = 2.0);
    g.lock_release(&mut s[1], lock_b, NodeId(1), &c[1]);

    let applied = g.lock_acquire(&mut s[2], lock_a, NodeId(2), &c[2]);
    assert_eq!(applied, 2, "global history: both notices apply");
    g.lock_release(&mut s[2], lock_a, NodeId(2), &c[2]);
    let (vb, out_b) = g.read(&mut s[2], NodeId(2), b.id, &c[2], |d| d[0]);
    assert_eq!(vb, 2.0);
    assert!(out_b.real_fault, "conservatively invalidated");
}

#[test]
fn scoped_barriers_remain_global() {
    let (g, c, mut spaces) = gos(2, ConsistencyModel::Scoped);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);
    let (s0_half, s1_half) = spaces.split_at_mut(1);
    let (s0, s1) = (&mut s0_half[0], &mut s1_half[0]);
    g.read(s1, NodeId(1), obj.id, &c[1], |_| {});

    // A write outside any lock, flushed by a barrier, must still reach everyone.
    g.write(s0, NodeId(0), obj.id, &c[0], |d| d[0] = 7.0);
    std::thread::scope(|s| {
        let g0 = &g;
        let c0 = c[0].clone();
        let c1 = c[1].clone();
        let s1 = &mut *s1;
        s.spawn(move || {
            g0.barrier_wait(s0, NodeId(0), 2, &c0);
        });
        s.spawn(move || {
            g0.barrier_wait(s1, NodeId(1), 2, &c1);
        });
    });
    let (v, out) = g.read(&mut spaces[1], NodeId(1), obj.id, &c[1], |d| d[0]);
    assert_eq!(v, 7.0);
    assert!(out.real_fault, "barrier notices are global even in scoped mode");
}

#[test]
fn scoped_mode_applies_fewer_notices_under_disjoint_locks() {
    // N workers each with a private lock and object: under ScC nobody ever applies a
    // foreign notice; under global HLRC every acquire drags in everyone's history.
    let run = |consistency| {
        let (g, c, mut s) = gos(4, consistency);
        let class = g.classes().register_scalar("X", 1);
        let objs: Vec<_> = (0..4)
            .map(|i| g.alloc_scalar(NodeId(i as u16), class, &c[0], None).id)
            .collect();
        let locks: Vec<_> = (0..4).map(|_| g.register_lock()).collect();
        // Warm caches: everyone reads everything once.
        for (t, clock) in c.iter().enumerate() {
            for &o in &objs {
                g.read(&mut s[t], NodeId(t as u16), o, clock, |_| {});
            }
        }
        for round in 0..5 {
            let _ = round;
            for t in 0..4usize {
                let node = NodeId(t as u16);
                g.lock_acquire(&mut s[t], locks[t], node, &c[t]);
                g.write(&mut s[t], node, objs[t], &c[t], |d| d[0] += 1.0);
                g.lock_release(&mut s[t], locks[t], node, &c[t]);
            }
        }
        g.proto_counters().notices_applied
    };
    let scoped = run(ConsistencyModel::Scoped);
    let global = run(ConsistencyModel::GlobalHlrc);
    // Under ScC each thread only ever processes its own lock's history (its own
    // notice from the previous round: 4 threads × 4 re-acquisitions). Under the
    // global history every acquire drags in everyone's pending notices.
    assert_eq!(scoped, 16, "own-lock notices only: got {scoped}");
    assert!(
        global > 2 * scoped,
        "global history processes foreign notices too: {global} vs {scoped}"
    );
}
