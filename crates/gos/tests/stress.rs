//! Concurrency stress tests for the protocol engine: many real threads hammering
//! shared objects through locks and barriers, checking coherence and clock sanity.
//!
//! Each spawned OS thread owns its logical thread's `ThreadSpace` outright — the
//! single-writer discipline the runtime enforces via `ClusterShared::spaces`.

use std::sync::Arc;

use jessy_gos::{CostModel, Gos, GosConfig, ThreadSpace};
use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};

fn cluster(n_nodes: usize, n_threads: usize) -> (Arc<Gos>, Arc<ClockBoard>) {
    let g = Gos::new(GosConfig {
        n_nodes,
        n_threads,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    (Arc::new(g), ClockBoard::new(n_threads))
}

#[test]
fn lock_protected_counter_is_exact_across_nodes() {
    let (g, board) = cluster(4, 8);
    let class = g.classes().register_scalar("Counter", 1);
    let init_clock = board.handle(ThreadId(0));
    let obj = g.alloc_scalar(NodeId(0), class, &init_clock, None).id;
    let lock = g.register_lock();

    const PER_THREAD: usize = 200;
    let handles: Vec<_> = (0..8u32)
        .map(|t| {
            let g = Arc::clone(&g);
            let clock = board.handle(ThreadId(t));
            std::thread::spawn(move || {
                let node = NodeId((t % 4) as u16);
                let mut space = ThreadSpace::new(ThreadId(t));
                for _ in 0..PER_THREAD {
                    g.lock_acquire(&mut space, lock, node, &clock);
                    g.write(&mut space, node, obj, &clock, |d| d[0] += 1.0);
                    g.lock_release(&mut space, lock, node, &clock);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Reader must observe every increment after a final acquire.
    let clock = board.handle(ThreadId(0));
    let mut space = ThreadSpace::new(ThreadId(0));
    g.lock_acquire(&mut space, lock, NodeId(1), &clock);
    let (v, _) = g.read(&mut space, NodeId(1), obj, &clock, |d| d[0]);
    g.lock_release(&mut space, lock, NodeId(1), &clock);
    assert_eq!(v, (8 * PER_THREAD) as f64, "increments lost under contention");
}

#[test]
fn barrier_phased_writers_never_lose_updates() {
    // Classic ping-pong: each phase, every thread adds its id to the next thread's
    // object. After R phases, object sums are exact.
    const THREADS: usize = 6;
    const ROUNDS: usize = 50;
    let (g, board) = cluster(3, THREADS);
    let class = g.classes().register_scalar("Slot", 1);
    let init_clock = board.handle(ThreadId(0));
    let objs: Vec<_> = (0..THREADS)
        .map(|i| {
            g.alloc_scalar(NodeId((i % 3) as u16), class, &init_clock, None)
                .id
        })
        .collect();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let g = Arc::clone(&g);
            let clock = board.handle(ThreadId(t as u32));
            let objs = objs.clone();
            std::thread::spawn(move || {
                let node = NodeId((t % 3) as u16);
                let mut space = ThreadSpace::new(ThreadId(t as u32));
                for round in 0..ROUNDS {
                    // Each object has exactly one writer per phase.
                    let target = objs[(t + round) % THREADS];
                    g.write(&mut space, node, target, &clock, |d| d[0] += (t + 1) as f64);
                    g.barrier_wait(&mut space, node, THREADS, &clock);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every object was written once per phase by a rotating writer: the total across
    // objects is ROUNDS * sum(t+1).
    let total: f64 = objs
        .iter()
        .map(|&o| g.object(o).snapshot_home()[0])
        .sum();
    assert_eq!(total, (ROUNDS * (1 + 2 + 3 + 4 + 5 + 6)) as f64);
}

#[test]
fn clocks_are_monotone_through_sync_storms() {
    let (g, board) = cluster(2, 4);
    let class = g.classes().register_scalar("X", 1);
    let init_clock = board.handle(ThreadId(0));
    let obj = g.alloc_scalar(NodeId(0), class, &init_clock, None).id;
    let lock = g.register_lock();

    let handles: Vec<_> = (0..4u32)
        .map(|t| {
            let g = Arc::clone(&g);
            let clock = board.handle(ThreadId(t));
            std::thread::spawn(move || {
                let node = NodeId((t % 2) as u16);
                let mut space = ThreadSpace::new(ThreadId(t));
                let mut last = 0u64;
                for i in 0..100 {
                    if i % 3 == 0 {
                        g.lock_acquire(&mut space, lock, node, &clock);
                        g.write(&mut space, node, obj, &clock, |d| d[0] += 1.0);
                        g.lock_release(&mut space, lock, node, &clock);
                    } else {
                        g.read(&mut space, node, obj, &clock, |_| {});
                    }
                    clock.spend(10);
                    g.barrier_wait(&mut space, node, 4, &clock);
                    let now = clock.now();
                    assert!(now >= last, "clock went backwards: {now} < {last}");
                    last = now;
                }
                last
            })
        })
        .collect();
    let finals: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All clocks equal after the final barrier.
    assert!(finals.windows(2).all(|w| w[0] == w[1]), "{finals:?}");
}

#[test]
fn resampling_walk_races_with_access_safely() {
    // One thread flips sampled tags over the whole class while others access: no
    // panics, and the final tags match the last decision.
    let (g, board) = cluster(2, 4);
    let class = g.classes().register_scalar("X", 1);
    let init_clock = board.handle(ThreadId(0));
    let objs: Vec<_> = (0..500)
        .map(|i| {
            g.alloc_scalar(NodeId((i % 2) as u16), class, &init_clock, None)
                .id
        })
        .collect();

    let flipper = {
        let g = Arc::clone(&g);
        std::thread::spawn(move || {
            for round in 0..50 {
                g.for_each_object_of_class(class, |core| {
                    core.set_sampled(round % 2 == 0);
                });
            }
        })
    };
    let readers: Vec<_> = (1..4u32)
        .map(|t| {
            let g = Arc::clone(&g);
            let clock = board.handle(ThreadId(t));
            let objs = objs.clone();
            std::thread::spawn(move || {
                let mut space = ThreadSpace::new(ThreadId(t));
                for &o in &objs {
                    g.read(&mut space, NodeId((t % 2) as u16), o, &clock, |_| {});
                }
            })
        })
        .collect();
    flipper.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    // Last flip round was 49 (odd) → everything unsampled.
    let mut sampled = 0;
    g.for_each_object_of_class(class, |core| {
        if core.is_sampled() {
            sampled += 1;
        }
    });
    assert_eq!(sampled, 0);
}

#[test]
fn interleaved_prefetch_and_invalidation() {
    let (g, board) = cluster(2, 2);
    let class = g.classes().register_scalar("X", 2);
    let c0 = board.handle(ThreadId(0));
    let c1 = board.handle(ThreadId(1));
    let mut s1 = ThreadSpace::new(ThreadId(1));
    let objs: Vec<_> = (0..50)
        .map(|_| g.alloc_scalar(NodeId(0), class, &c0, None).id)
        .collect();

    // Thread 1 prefetches everything to node 1; thread 0 concurrently writes and
    // flushes. Afterwards, applying notices and re-reading yields the latest values.
    let writer = {
        let g = Arc::clone(&g);
        let objs = objs.clone();
        std::thread::spawn(move || {
            let mut s0 = ThreadSpace::new(ThreadId(0));
            for &o in &objs {
                g.write(&mut s0, NodeId(0), o, &c0, |d| d[0] = 7.0);
            }
            g.flush_thread(&mut s0, NodeId(0), &c0);
        })
    };
    g.prefetch_into(&mut s1, NodeId(1), objs.iter().copied(), &c1);
    writer.join().unwrap();
    g.apply_notices(&mut s1, NodeId(1), &c1);
    for &o in &objs {
        let (v, _) = g.read(&mut s1, NodeId(1), o, &c1, |d| d[0]);
        assert_eq!(v, 7.0, "stale value survived prefetch/invalidate race on {o}");
    }
}
