//! Integration tests for the HLRC protocol engine (per-thread heaps).
//!
//! Unless stated otherwise, each test uses one thread per node: thread `i`'s clock
//! identifies it, it runs on node `i`, and it owns the single-writer heap `s[i]`.

use std::sync::Arc;

use jessy_gos::{AccessState, CostModel, Gos, GosConfig, ThreadSpace};
use jessy_net::{ClockBoard, ClockHandle, LatencyModel, MsgClass, NodeId, ThreadId};

fn gos(n: usize) -> (Gos, Vec<ClockHandle>, Vec<ThreadSpace>) {
    let g = Gos::new(GosConfig {
        n_nodes: n,
        n_threads: n,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    let board = ClockBoard::new(n);
    let clocks = (0..n).map(|i| board.handle(ThreadId(i as u32))).collect();
    let spaces = (0..n).map(|i| ThreadSpace::new(ThreadId(i as u32))).collect();
    (g, clocks, spaces)
}

#[test]
fn home_access_never_faults() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("Point", 2);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], Some(&[1.0, 2.0]));
    let (sum, out) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |d| d[0] + d[1]);
    assert_eq!(sum, 3.0);
    assert!(!out.faulted());
    assert_eq!(out.payload_bytes, 16);
    assert_eq!(g.net_stats().total_messages(), 0);
}

#[test]
fn remote_read_faults_once_then_hits() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("Point", 2);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], Some(&[5.0, 0.0]));

    let (v, out1) = g.read(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0]);
    assert_eq!(v, 5.0);
    assert!(out1.real_fault);
    assert_eq!(out1.fetched_bytes, 16);

    let (_, out2) = g.read(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0]);
    assert!(!out2.faulted(), "second access in the interval must hit");

    let stats = g.net_stats();
    assert_eq!(stats.class(MsgClass::ObjFetch).messages, 1);
    assert_eq!(stats.class(MsgClass::ObjData).messages, 1);
}

#[test]
fn caches_are_per_thread_even_on_one_node() {
    // Two threads on the same node each fault their own copy — the thread-local heap
    // of Section II.A, which is what makes per-thread OALs possible.
    let g = Gos::new(GosConfig {
        n_nodes: 2,
        n_threads: 2,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    let board = ClockBoard::new(2);
    let c0 = board.handle(ThreadId(0));
    let c1 = board.handle(ThreadId(1));
    let mut s0 = ThreadSpace::new(ThreadId(0));
    let mut s1 = ThreadSpace::new(ThreadId(1));
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(1), class, &c0, None);

    // Both threads run on node 0; each takes its own fault.
    let (_, out0) = g.read(&mut s0, NodeId(0), obj.id, &c0, |_| {});
    let (_, out1) = g.read(&mut s1, NodeId(0), obj.id, &c1, |_| {});
    assert!(out0.real_fault && out1.real_fault);
    assert_eq!(g.net_stats().class(MsgClass::ObjFetch).messages, 2);
}

#[test]
fn write_propagates_via_diff_and_notice() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_array("double[]", 1);
    let obj = g.alloc_array(NodeId(0), class, 8, &c[0], None);

    // Thread 1 (node 1) caches the object, then writes two words.
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| {
        d[3] = 3.0;
        d[7] = 7.0;
    });
    // Home copy unchanged until release.
    assert_eq!(obj.snapshot_home()[3], 0.0);

    let flushed = g.flush_thread(&mut s[1], NodeId(1), &c[1]);
    assert_eq!(flushed, 1);
    assert_eq!(obj.snapshot_home()[3], 3.0);
    assert_eq!(obj.snapshot_home()[7], 7.0);
    assert_eq!(obj.version(), 1);

    // Diff wire size: 2 runs (each 1 word) = 2*8 header + 2*8 data + 8 obj header.
    let diff_bytes = g.net_stats().class(MsgClass::DiffUpdate).bytes;
    assert_eq!(
        diff_bytes,
        (2 * 8 + 2 * 8 + 8 + MsgClass::DiffUpdate.header_bytes()) as u64
    );

    // Thread 0 (the home node) sees the latest value directly.
    g.apply_notices(&mut s[0], NodeId(0), &c[0]);
    let (v, _) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |d| d[7]);
    assert_eq!(v, 7.0);
}

#[test]
fn stale_cache_is_invalidated_by_notice_and_refetched() {
    let (g, c, mut s) = gos(3);
    let class = g.classes().register_array("double[]", 1);
    let obj = g.alloc_array(NodeId(0), class, 4, &c[0], Some(&[1.0, 1.0, 1.0, 1.0]));

    // Thread 2 caches the old value.
    let (v, _) = g.read(&mut s[2], NodeId(2), obj.id, &c[2], |d| d[0]);
    assert_eq!(v, 1.0);

    // Thread 1 writes and releases.
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 9.0);
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);

    // Before applying notices, thread 2 still reads its (legally) stale cache.
    let (v, out) = g.read(&mut s[2], NodeId(2), obj.id, &c[2], |d| d[0]);
    assert_eq!(v, 1.0);
    assert!(!out.faulted());

    // Acquire semantics: apply notices, cache invalidated, next read refetches.
    g.apply_notices(&mut s[2], NodeId(2), &c[2]);
    assert_eq!(s[2].access_state(obj.id), Some(AccessState::Invalid));
    let (v, out) = g.read(&mut s[2], NodeId(2), obj.id, &c[2], |d| d[0]);
    assert_eq!(v, 9.0);
    assert!(out.real_fault);
}

#[test]
fn own_notices_do_not_invalidate_own_fresh_cache() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);

    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 2.0);
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);
    g.apply_notices(&mut s[1], NodeId(1), &c[1]);
    let (_, out) = g.read(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0]);
    assert!(
        !out.faulted(),
        "writer's own up-to-date cache must survive its own notice"
    );
}

#[test]
fn false_invalid_traps_once_and_cancels() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], Some(&[4.0]));

    // Arm in thread 0's heap (home-resident entry).
    g.read(&mut s[0], NodeId(0), obj.id, &c[0], |_| {});
    assert_eq!(s[0].arm_traps([obj.id]), 1);
    assert_eq!(s[0].access_state(obj.id), Some(AccessState::FalseInvalid));

    let (v, out) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |d| d[0]);
    assert_eq!(v, 4.0);
    assert!(out.false_invalid);
    assert!(!out.real_fault, "false-invalid at home must not fetch anything");
    assert_eq!(g.net_stats().total_messages(), 0);

    let (_, out) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |_| {});
    assert!(!out.faulted(), "trap cancelled after one access");

    // Arm on a valid cache copy of thread 1.
    g.read(&mut s[1], NodeId(1), obj.id, &c[1], |_| {});
    assert_eq!(s[1].arm_traps([obj.id]), 1);
    let (_, out) = g.read(&mut s[1], NodeId(1), obj.id, &c[1], |_| {});
    assert!(out.false_invalid && !out.real_fault);
}

#[test]
fn false_invalid_is_not_armed_on_untouched_objects() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);
    // Thread 1 never touched the object: no entry, nothing armed.
    assert_eq!(s[1].arm_traps([obj.id]), 0);
}

#[test]
fn lock_transfers_simulated_time_and_notices() {
    let (g, c, mut s) = gos(2);
    let (c0, c1) = (&c[0], &c[1]);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, c0, None);
    let lock = g.register_lock();

    // Thread 1 caches the initial value before anyone writes.
    let (v, _) = g.read(&mut s[1], NodeId(1), obj.id, c1, |d| d[0]);
    assert_eq!(v, 0.0);

    // Thread 0 at node 0: lock, write, unlock at sim time 1000.
    g.lock_acquire(&mut s[0], lock, NodeId(0), c0);
    g.write(&mut s[0], NodeId(0), obj.id, c0, |d| d[0] = 1.0);
    c0.spend(1000);
    g.lock_release(&mut s[0], lock, NodeId(0), c0);

    // Thread 1 at node 1: sees the release time and the write notice.
    let (v, _) = g.read(&mut s[1], NodeId(1), obj.id, c1, |d| d[0]);
    assert_eq!(v, 0.0, "not yet acquired: cached old value is legal");
    let applied = g.lock_acquire(&mut s[1], lock, NodeId(1), c1);
    assert!(applied >= 1, "write notice must arrive with the lock");
    assert!(c1.now() >= 1000, "acquirer inherits releaser's sim time");
    let (v, out) = g.read(&mut s[1], NodeId(1), obj.id, c1, |d| d[0]);
    assert_eq!(v, 1.0);
    assert!(out.real_fault);
    g.lock_release(&mut s[1], lock, NodeId(1), c1);
}

#[test]
fn barrier_synchronizes_clocks_and_data() {
    let g = Arc::new(Gos::new(GosConfig {
        n_nodes: 4,
        n_threads: 4,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    }));
    let board = ClockBoard::new(4);
    let class = g.classes().register_array("double[]", 1);
    // Each node homes one object; all initialized to the node index.
    let objs: Vec<_> = (0..4)
        .map(|i| {
            let c = board.handle(ThreadId(i as u32));
            g.alloc_array(NodeId(i as u16), class, 2, &c, Some(&[i as f64, 0.0]))
                .id
        })
        .collect();

    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let g = Arc::clone(&g);
            let c = board.handle(ThreadId(i));
            let objs = objs.clone();
            std::thread::spawn(move || {
                let node = NodeId(i as u16);
                let mut space = ThreadSpace::new(ThreadId(i));
                // Phase 1: everyone increments its own object.
                g.write(&mut space, node, objs[i as usize], &c, |d| d[0] += 10.0);
                c.spend((i as u64 + 1) * 100);
                g.barrier_wait(&mut space, node, 4, &c);
                // Phase 2: read the next node's object; must see its phase-1 write.
                let next = objs[(i as usize + 1) % 4];
                let (v, _) = g.read(&mut space, node, next, &c, |d| d[0]);
                g.barrier_wait(&mut space, node, 4, &c);
                (v, c.now())
            })
        })
        .collect();

    let results: Vec<(f64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, (v, _)) in results.iter().enumerate() {
        assert_eq!(*v, ((i + 1) % 4) as f64 + 10.0, "thread {i} read a stale value");
    }
    // All clocks equal after the final barrier.
    let times: Vec<u64> = results.iter().map(|r| r.1).collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
    assert!(times[0] >= 400, "release time is the max arrival");
}

#[test]
fn concurrent_disjoint_writers_merge_at_home() {
    // Two threads write disjoint halves of the same array within one interval; both
    // diffs must merge at the home (the multiple-writer property of LRC).
    let (g, c, mut s) = gos(3);
    let class = g.classes().register_array("double[]", 1);
    let obj = g.alloc_array(NodeId(0), class, 8, &c[0], None);

    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| {
        for w in &mut d[0..4] {
            *w = 1.0;
        }
    });
    g.write(&mut s[2], NodeId(2), obj.id, &c[2], |d| {
        for w in &mut d[4..8] {
            *w = 2.0;
        }
    });
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);
    g.flush_thread(&mut s[2], NodeId(2), &c[2]);

    assert_eq!(
        obj.snapshot_home(),
        vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0],
        "disjoint diffs must both land"
    );
    assert_eq!(obj.version(), 2);
}

#[test]
fn dirty_cache_hit_by_notice_is_force_flushed() {
    let (g, c, mut s) = gos(3);
    let class = g.classes().register_array("double[]", 1);
    let obj = g.alloc_array(NodeId(0), class, 4, &c[0], None);

    // Thread 2 writes word 3 (unflushed); thread 1 writes word 0 and flushes.
    g.write(&mut s[2], NodeId(2), obj.id, &c[2], |d| d[3] = 3.0);
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 1.0);
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);

    // Thread 2 acquires: the notice invalidates its dirty copy, force-flushing first.
    g.apply_notices(&mut s[2], NodeId(2), &c[2]);
    let home = obj.snapshot_home();
    assert_eq!(home[0], 1.0, "thread 1's write");
    assert_eq!(home[3], 3.0, "thread 2's write must not be lost");
}

#[test]
fn migration_drops_the_thread_local_heap() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);

    // Thread 1 caches and dirties the object, then migrates: the pending write must
    // be flushed, the cache dropped, and the next access re-faults.
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 5.0);
    g.drop_thread_cache(&mut s[1], NodeId(1), &c[1]);
    assert_eq!(obj.snapshot_home()[0], 5.0, "flush-before-drop");
    assert_eq!(s[1].access_state(obj.id), None);
    let (_, out) = g.read(&mut s[1], NodeId(0), obj.id, &c[1], |_| {});
    assert!(!out.real_fault, "obj is homed at the new node: direct access");
}

#[test]
fn prefetch_installs_valid_copies() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 2);
    let objs: Vec<_> = (0..4)
        .map(|_| g.alloc_scalar(NodeId(0), class, &c[0], None).id)
        .collect();
    let bytes = g.prefetch_into(&mut s[1], NodeId(1), objs.iter().copied(), &c[1]);
    assert_eq!(bytes, 4 * (16 + 16), "payload + object header each");
    for &o in &objs {
        assert_eq!(s[1].access_state(o), Some(AccessState::Valid));
    }
    // Prefetching again moves nothing.
    assert_eq!(g.prefetch_into(&mut s[1], NodeId(1), objs.iter().copied(), &c[1]), 0);
    let stats = g.net_stats();
    assert_eq!(stats.class(MsgClass::Prefetch).messages, 1, "batched per home");
}

#[test]
fn counters_track_protocol_events() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);
    g.read(&mut s[1], NodeId(1), obj.id, &c[1], |_| {});
    s[1].arm_traps([obj.id]);
    g.read(&mut s[1], NodeId(1), obj.id, &c[1], |_| {});
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 1.0);
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);
    g.apply_notices(&mut s[0], NodeId(0), &c[0]);

    let pc = g.proto_counters();
    assert_eq!(pc.real_faults, 1);
    assert_eq!(pc.false_invalid_faults, 1);
    assert_eq!(pc.accesses, 3);
    assert_eq!(pc.diffs_flushed, 1);
    assert!(pc.notices_applied >= 1);
}

#[test]
fn simulated_costs_accumulate_on_the_clock() {
    let g = Gos::new(GosConfig {
        n_nodes: 2,
        n_threads: 2,
        latency: LatencyModel::fast_ethernet(),
        costs: CostModel::pentium4_2ghz(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    let board = ClockBoard::new(2);
    let c0 = board.handle(ThreadId(0));
    let c1 = board.handle(ThreadId(1));
    let mut s1 = ThreadSpace::new(ThreadId(1));
    let class = g.classes().register_array("double[]", 1);
    let obj = g.alloc_array(NodeId(0), class, 512, &c0, None);
    let alloc_time = c0.now();
    assert!(alloc_time > 0);

    // Remote fault: pays check + service + a 4 KB round trip.
    g.read(&mut s1, NodeId(1), obj.id, &c1, |_| {});
    let fault_time = c1.now();
    assert!(fault_time > 300_000, "4 KB over Fast Ethernet: got {fault_time}");

    // Hit: pays only the check.
    g.read(&mut s1, NodeId(1), obj.id, &c1, |_| {});
    assert_eq!(c1.now() - fault_time, 2);
}

#[test]
fn home_migration_redirects_faults_and_repairs_residents() {
    let (g, c, mut s) = gos(3);
    let class = g.classes().register_scalar("X", 2);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], Some(&[5.0, 0.0]));

    // Thread 0 (node 0) uses it as home-resident; thread 2 caches it.
    g.read(&mut s[0], NodeId(0), obj.id, &c[0], |_| {});
    g.read(&mut s[2], NodeId(2), obj.id, &c[2], |_| {});

    // Relocate the home to node 1.
    assert!(g.migrate_home(obj.id, NodeId(1), &c[1]));
    assert!(!g.migrate_home(obj.id, NodeId(1), &c[1]), "no-op when already there");
    assert_eq!(obj.home(), NodeId(1));
    assert_eq!(g.proto_counters().home_migrations, 1);

    // Thread 2 applies notices → its cache revalidates against the new home.
    g.apply_notices(&mut s[2], NodeId(2), &c[2]);
    let before = g.net_stats().class(MsgClass::ObjFetch).messages;
    let (v, out) = g.read(&mut s[2], NodeId(2), obj.id, &c[2], |d| d[0]);
    assert_eq!(v, 5.0);
    assert!(out.real_fault);
    assert_eq!(out.home, NodeId(1), "fault served by the new home");
    assert_eq!(g.net_stats().class(MsgClass::ObjFetch).messages, before + 1);

    // Thread 0's stale home-resident entry is repaired at its next acquire.
    g.apply_notices(&mut s[0], NodeId(0), &c[0]);
    let (v, out) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |d| d[0]);
    assert_eq!(v, 5.0);
    assert!(out.real_fault, "old home now faults like any remote node");

    // Thread 1 (the new home) accesses directly.
    let (_, out) = g.read(&mut s[1], NodeId(1), obj.id, &c[1], |_| {});
    assert!(out.first_touch && !out.real_fault);
}

#[test]
fn home_migration_preserves_writes_in_flight() {
    let (g, c, mut s) = gos(2);
    let class = g.classes().register_scalar("X", 1);
    let obj = g.alloc_scalar(NodeId(0), class, &c[0], None);

    // Thread 1 writes a cached copy; before it flushes, the home migrates to node 1.
    g.write(&mut s[1], NodeId(1), obj.id, &c[1], |d| d[0] = 9.0);
    g.migrate_home(obj.id, NodeId(1), &c[0]);
    g.flush_thread(&mut s[1], NodeId(1), &c[1]);
    assert_eq!(obj.snapshot_home()[0], 9.0, "diff landed on the migrated home");
    // After applying notices, a fresh reader sees the write.
    g.apply_notices(&mut s[0], NodeId(0), &c[0]);
    let (v, _) = g.read(&mut s[0], NodeId(0), obj.id, &c[0], |d| d[0]);
    assert_eq!(v, 9.0);
}

#[test]
fn connectivity_prefetch_rides_on_faults() {
    // A chain head → a → b → c homed at node 0; with prefetch_depth 2, faulting the
    // head from node 1 also installs a and b (same home), but not c.
    let g = Gos::new(GosConfig {
        n_nodes: 2,
        n_threads: 2,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 2,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    let board = ClockBoard::new(2);
    let c0 = board.handle(ThreadId(0));
    let c1 = board.handle(ThreadId(1));
    let mut s1 = ThreadSpace::new(ThreadId(1));
    let class = g.classes().register_scalar("Node", 2);
    let ids: Vec<_> = (0..4)
        .map(|_| g.alloc_scalar(NodeId(0), class, &c0, None).id)
        .collect();
    for w in ids.windows(2) {
        g.object(w[0]).add_ref(w[1]);
    }

    let (_, out) = g.read(&mut s1, NodeId(1), ids[0], &c1, |_| {});
    assert!(out.real_fault);
    assert_eq!(g.proto_counters().objects_prefetched, 2);
    // a and b are now valid without further faults; c still faults.
    for &o in &ids[1..3] {
        let (_, out) = g.read(&mut s1, NodeId(1), o, &c1, |_| {});
        assert!(!out.real_fault, "{o} should have been prefetched");
    }
    let (_, out) = g.read(&mut s1, NodeId(1), ids[3], &c1, |_| {});
    assert!(out.real_fault, "depth-3 neighbour is beyond the prefetch horizon");
    assert!(g.net_stats().class(MsgClass::Prefetch).bytes > 0);
}

#[test]
fn connectivity_prefetch_skips_cross_home_neighbours() {
    let g = Gos::new(GosConfig {
        n_nodes: 3,
        n_threads: 3,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 3,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    let board = ClockBoard::new(3);
    let c0 = board.handle(ThreadId(0));
    let c2 = board.handle(ThreadId(2));
    let mut s2 = ThreadSpace::new(ThreadId(2));
    let class = g.classes().register_scalar("Node", 1);
    let head = g.alloc_scalar(NodeId(0), class, &c0, None).id;
    let other_home = g.alloc_scalar(NodeId(1), class, &c0, None).id;
    g.object(head).add_ref(other_home);

    let (_, out) = g.read(&mut s2, NodeId(2), head, &c2, |_| {});
    assert!(out.real_fault);
    assert_eq!(
        g.proto_counters().objects_prefetched,
        0,
        "a neighbour homed elsewhere is not on this reply path"
    );
    let (_, out) = g.read(&mut s2, NodeId(2), other_home, &c2, |_| {});
    assert!(out.real_fault, "cross-home neighbour still faults normally");
}

#[test]
#[should_panic(expected = "zero-length")]
fn zero_length_arrays_are_rejected() {
    let (g, c, _s) = gos(1);
    let class = g.classes().register_array("double[]", 1);
    let _ = g.alloc_array(NodeId(0), class, 0, &c[0], None);
}

#[test]
#[should_panic(expected = "use alloc_array")]
fn scalar_alloc_of_array_class_is_rejected() {
    let (g, c, _s) = gos(1);
    let class = g.classes().register_array("double[]", 1);
    let _ = g.alloc_scalar(NodeId(0), class, &c[0], None);
}

#[test]
#[should_panic(expected = "use alloc_scalar")]
fn array_alloc_of_scalar_class_is_rejected() {
    let (g, c, _s) = gos(1);
    let class = g.classes().register_scalar("X", 1);
    let _ = g.alloc_array(NodeId(0), class, 4, &c[0], None);
}

#[test]
fn lock_managers_are_distributed_round_robin() {
    let (g, c, mut s) = gos(3);
    // Locks 0,1,2,3 → managers 0,1,2,0. Verify via traffic: acquiring lock 1 from
    // node 0 produces a round trip to node 1.
    let _l0 = g.register_lock();
    let l1 = g.register_lock();
    g.lock_acquire(&mut s[0], l1, NodeId(0), &c[0]);
    g.lock_release(&mut s[0], l1, NodeId(0), &c[0]);
    assert_eq!(g.link_stats(NodeId(0), NodeId(1)).messages, 2, "acquire + release");
    assert_eq!(g.link_stats(NodeId(1), NodeId(0)).messages, 1, "grant");
}

#[test]
fn init_payload_length_is_checked() {
    let (g, c, _s) = gos(1);
    let class = g.classes().register_scalar("X", 2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        g.alloc_scalar(NodeId(0), class, &c[0], Some(&[1.0])) // needs 2 words
    }));
    assert!(result.is_err(), "mismatched init must panic");
}
