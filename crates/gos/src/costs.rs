//! CPU cost model for simulated time.
//!
//! The paper's overhead tables (II, III, V) report *execution-time increases* caused by
//! profiling work: inlined object state checks, GOS fault-service routines, access-log
//! appends, twin/diff work, resampling walks, stack-frame extraction and comparison.
//! Our substrate is a simulator, so each such event charges a configurable number of
//! simulated nanoseconds to the acting thread's clock. The defaults below are sized for
//! the paper's 2 GHz Pentium 4 era (a handful of cycles for an inlined check, hundreds
//! for a service-routine entry) so the *ratios* in the regenerated tables land in the
//! paper's ballpark.

use serde::{Deserialize, Serialize};

/// Per-event simulated CPU costs, in nanoseconds (fractional values are accumulated
/// exactly by multiplying with event counts before truncation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Inlined 2-bit object state check on every access bytecode (always paid).
    pub access_check_ns: u64,
    /// Entering the GOS fault-service routine (real or false-invalid fault).
    pub fault_service_ns: u64,
    /// Appending one entry to the thread's object access list (OAL).
    pub log_append_ns: u64,
    /// Allocating one object (header init, sequence-number assignment).
    pub alloc_ns: u64,
    /// Creating a twin, per 8-byte word.
    pub twin_ns_per_word: f64,
    /// Computing a diff against the twin, per word.
    pub diff_ns_per_word: f64,
    /// Applying a diff at the home node, per changed word.
    pub apply_ns_per_word: f64,
    /// Applying one write notice (cache invalidation check).
    pub notice_apply_ns: u64,
    /// Visiting one object during a resampling walk after a rate change.
    pub resample_ns_per_obj: u64,
    /// Checking/acquiring a lock locally (uncontended fast path).
    pub lock_local_ns: u64,
    /// Per-thread fixed cost of participating in a barrier (besides network).
    pub barrier_local_ns: u64,
    /// One unit of application compute (workloads charge `k * compute_unit_ns`).
    pub compute_unit_ns: u64,
    /// Fixed cost of taking one stack sample (timer trap + walk setup).
    pub stack_sample_entry_ns: u64,
    /// Extracting one stack-frame slot during stack sampling (Section III.B).
    pub frame_extract_slot_ns: u64,
    /// Comparing one slot by probing during stack sampling.
    pub frame_probe_slot_ns: u64,
    /// Capturing a frame in raw form (lazy extraction fast path), per frame.
    pub frame_raw_capture_ns: u64,
    /// Sticky-set resolution: visiting one object-graph edge.
    pub resolve_edge_ns: u64,
}

impl CostModel {
    /// Defaults tuned to the paper's 2 GHz Pentium 4 testbed.
    pub fn pentium4_2ghz() -> Self {
        CostModel {
            access_check_ns: 2,
            fault_service_ns: 400,
            log_append_ns: 50,
            alloc_ns: 90,
            twin_ns_per_word: 0.8,
            diff_ns_per_word: 1.1,
            apply_ns_per_word: 1.1,
            notice_apply_ns: 25,
            resample_ns_per_obj: 14,
            lock_local_ns: 120,
            barrier_local_ns: 600,
            compute_unit_ns: 18,
            stack_sample_entry_ns: 4_000,
            frame_extract_slot_ns: 95,
            frame_probe_slot_ns: 22,
            frame_raw_capture_ns: 70,
            resolve_edge_ns: 55,
        }
    }

    /// A zero-cost model for tests that only check protocol behaviour.
    pub fn free() -> Self {
        CostModel {
            access_check_ns: 0,
            fault_service_ns: 0,
            log_append_ns: 0,
            alloc_ns: 0,
            twin_ns_per_word: 0.0,
            diff_ns_per_word: 0.0,
            apply_ns_per_word: 0.0,
            notice_apply_ns: 0,
            resample_ns_per_obj: 0,
            lock_local_ns: 0,
            barrier_local_ns: 0,
            compute_unit_ns: 0,
            stack_sample_entry_ns: 0,
            frame_extract_slot_ns: 0,
            frame_probe_slot_ns: 0,
            frame_raw_capture_ns: 0,
            resolve_edge_ns: 0,
        }
    }

    /// Cost of creating a twin of `words` 8-byte words.
    #[inline]
    pub fn twin_ns(&self, words: usize) -> u64 {
        (self.twin_ns_per_word * words as f64) as u64
    }

    /// Cost of diffing `words` words against a twin.
    #[inline]
    pub fn diff_ns(&self, words: usize) -> u64 {
        (self.diff_ns_per_word * words as f64) as u64
    }

    /// Cost of applying a diff with `changed` changed words at the home.
    #[inline]
    pub fn apply_ns(&self, changed: usize) -> u64 {
        (self.apply_ns_per_word * changed as f64) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::pentium4_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.access_check_ns < c.log_append_ns);
        assert!(c.log_append_ns < c.fault_service_ns);
        assert!(c.twin_ns(1000) > 0);
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.twin_ns(4096), 0);
        assert_eq!(c.diff_ns(4096), 0);
        assert_eq!(c.apply_ns(4096), 0);
        assert_eq!(c.access_check_ns, 0);
    }

    #[test]
    fn word_costs_scale_linearly() {
        let c = CostModel::pentium4_2ghz();
        assert_eq!(c.twin_ns(2000), 2 * c.twin_ns(1000));
        assert_eq!(c.diff_ns(0), 0);
    }
}
