//! Per-thread heaps: cache copies and access-state entries.
//!
//! JESSICA2 replicates shared objects "as cache copies in the local heap of the
//! current thread" (Section II.A) — so the coherence and tracking unit is the
//! *thread*, not the node. Each thread keeps, per object it has ever touched, an
//! [`AccessEntry`]: the 2-bit access state (the inlined-check target), the separately
//! stored real state, the cache payload and twin, and the version of the home copy the
//! cache was faulted from. Entries are created lazily on first access — including for
//! objects homed at the thread's own node, where the entry carries no payload (the
//! home copy lives in [`crate::object::ObjectCore`]) but still provides the state bits
//! the profiler's false-invalid arming needs (Section II.A).
//!
//! Per-thread caching is also what gives the profiler its *per-thread* at-most-once
//! fault property: each thread's first access to an object in an interval faults (real
//! or false-invalid) in its own heap, regardless of what other threads on the node did.

use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

use jessy_net::ThreadId;

use crate::object::{AccessState, ObjectId, RealState};

/// One thread's view of one object.
#[derive(Debug)]
pub struct AccessEntry {
    /// The 2-bit header state checked on every access.
    pub state: AccessState,
    /// The real consistency status (false-invalid cancels back to this).
    pub real: RealState,
    /// Cache payload; `None` when the object is homed at the thread's node.
    pub data: Option<Vec<f64>>,
    /// Twin created before the first write of the current interval.
    pub twin: Option<Vec<f64>>,
    /// Version of the home copy this cache was last synchronized with.
    pub cached_version: u64,
    /// Written since the last release flush.
    pub dirty: bool,
}

impl AccessEntry {
    /// Entry for an object homed at the thread's current node.
    pub fn home_resident() -> Self {
        AccessEntry {
            state: AccessState::Home,
            real: RealState::HomeResident,
            data: None,
            twin: None,
            cached_version: 0,
            dirty: false,
        }
    }

    /// Entry for a remote object not yet faulted in.
    pub fn absent() -> Self {
        AccessEntry {
            state: AccessState::Invalid,
            real: RealState::CacheInvalid,
            data: None,
            twin: None,
            cached_version: 0,
            dirty: false,
        }
    }

    /// Cancel a false-invalid trap back to the real state (Section II.A).
    pub fn cancel_false_invalid(&mut self) {
        if self.state == AccessState::FalseInvalid {
            self.state = self.real.to_access_state();
        }
    }
}

/// One thread's lazily grown table of access entries, indexed by [`ObjectId`].
#[derive(Debug)]
pub struct ThreadSpace {
    thread: ThreadId,
    entries: RwLock<Vec<Option<Arc<Mutex<AccessEntry>>>>>,
}

impl ThreadSpace {
    /// Empty space for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        ThreadSpace {
            thread,
            entries: RwLock::new(Vec::new()),
        }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The entry for `obj`, if this thread has ever touched it.
    pub fn entry(&self, obj: ObjectId) -> Option<Arc<Mutex<AccessEntry>>> {
        self.entries.read().get(obj.index()).cloned().flatten()
    }

    /// The entry for `obj`, creating it with `init` if absent.
    pub fn entry_or_insert(
        &self,
        obj: ObjectId,
        init: impl FnOnce() -> AccessEntry,
    ) -> Arc<Mutex<AccessEntry>> {
        if let Some(e) = self.entry(obj) {
            return e;
        }
        let mut entries = self.entries.write();
        if entries.len() <= obj.index() {
            entries.resize_with(obj.index() + 1, || None);
        }
        entries[obj.index()]
            .get_or_insert_with(|| Arc::new(Mutex::new(init())))
            .clone()
    }

    /// Visit every populated entry (notice application, diagnostics).
    pub fn for_each_entry(&self, mut f: impl FnMut(ObjectId, &Arc<Mutex<AccessEntry>>)) {
        let entries = self.entries.read();
        for (i, slot) in entries.iter().enumerate() {
            if let Some(e) = slot {
                f(ObjectId(i as u32), e);
            }
        }
    }

    /// Drop every entry — the thread landed on a new node (migration) and starts with
    /// a fresh local heap.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Number of populated entries.
    pub fn populated(&self) -> usize {
        self.entries.read().iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_entry_creation() {
        let ts = ThreadSpace::new(ThreadId(0));
        assert!(ts.entry(ObjectId(3)).is_none());
        let e = ts.entry_or_insert(ObjectId(3), AccessEntry::absent);
        assert_eq!(e.lock().state, AccessState::Invalid);
        assert!(ts.entry(ObjectId(3)).is_some());
        assert_eq!(ts.populated(), 1);
        // Second call returns the same entry, not a fresh one.
        e.lock().cached_version = 42;
        let e2 = ts.entry_or_insert(ObjectId(3), AccessEntry::absent);
        assert_eq!(e2.lock().cached_version, 42);
    }

    #[test]
    fn home_resident_entry_shape() {
        let e = AccessEntry::home_resident();
        assert_eq!(e.state, AccessState::Home);
        assert_eq!(e.real, RealState::HomeResident);
        assert!(e.data.is_none() && e.twin.is_none() && !e.dirty);
    }

    #[test]
    fn cancel_false_invalid_restores_real() {
        let mut e = AccessEntry::home_resident();
        e.state = AccessState::FalseInvalid;
        e.cancel_false_invalid();
        assert_eq!(e.state, AccessState::Home);

        let mut e = AccessEntry::absent();
        e.real = RealState::CacheValid;
        e.state = AccessState::FalseInvalid;
        e.cancel_false_invalid();
        assert_eq!(e.state, AccessState::Valid);

        // No-op when not false-invalid.
        let mut e = AccessEntry::absent();
        e.cancel_false_invalid();
        assert_eq!(e.state, AccessState::Invalid);
    }

    #[test]
    fn for_each_entry_visits_only_populated() {
        let ts = ThreadSpace::new(ThreadId(1));
        ts.entry_or_insert(ObjectId(0), AccessEntry::absent);
        ts.entry_or_insert(ObjectId(5), AccessEntry::absent);
        let mut seen = Vec::new();
        ts.for_each_entry(|id, _| seen.push(id));
        assert_eq!(seen, vec![ObjectId(0), ObjectId(5)]);
    }

    #[test]
    fn clear_empties_the_space() {
        let ts = ThreadSpace::new(ThreadId(0));
        ts.entry_or_insert(ObjectId(1), AccessEntry::absent);
        ts.entry_or_insert(ObjectId(2), AccessEntry::home_resident);
        assert_eq!(ts.populated(), 2);
        ts.clear();
        assert_eq!(ts.populated(), 0);
        assert!(ts.entry(ObjectId(1)).is_none());
    }

    #[test]
    fn concurrent_entry_or_insert_returns_one_entry() {
        use std::sync::Arc as StdArc;
        let ts = StdArc::new(ThreadSpace::new(ThreadId(0)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ts = StdArc::clone(&ts);
                std::thread::spawn(move || {
                    let e = ts.entry_or_insert(ObjectId(9), AccessEntry::absent);
                    StdArc::as_ptr(&e) as usize
                })
            })
            .collect();
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "all threads must see one entry");
        assert_eq!(ts.populated(), 1);
    }
}
