//! Per-thread heaps: the single-writer access arena.
//!
//! JESSICA2 replicates shared objects "as cache copies in the local heap of the
//! current thread" (Section II.A) — so the coherence and tracking unit is the
//! *thread*, not the node. The paper's whole premise is that the per-access check is
//! a couple of inlined instructions (a 2-bit header state test); everything rare —
//! faults, false-invalid traps, diffs — happens in the service routine.
//!
//! This module realizes that discipline as a **single-writer arena**: a
//! [`ThreadSpace`] is a flat dense table of packed 64-bit entry headers, indexed by
//! [`ObjectId`], that only the owning thread ever touches (the GOS takes it by
//! `&mut`, so the compiler enforces the invariant). The fast path is one bounds
//! check plus bit tests on one word — no `RwLock`, no `Arc` clone, no per-entry
//! `Mutex` (the seed layout, retained in [`reference`], paid all three per access).
//!
//! ## Packed entry word
//!
//! ```text
//!   63            32 31..4        3      2      1..0
//!  +----------------+------------+------+------+------+
//!  |  armed_epoch   | slot+1     | twin | dirty| state|
//!  +----------------+------------+------+------+------+
//! ```
//!
//! * `state` (2 bits) — the real consistency state: absent / home-resident /
//!   valid cache / invalid cache. The paper's *false-invalid* value is not stored
//!   here: it is derived (see below), which is what makes arming O(1) per object.
//! * `dirty` — written since the last release flush.
//! * `twin` — a twin snapshot exists for the current interval.
//! * `slot+1` (28 bits) — index into the side slab holding the cache payload, twin
//!   and version pair; 0 means no slot (home-resident and never-faulted entries
//!   carry no payload).
//! * `armed_epoch` (32 bits) — epoch-lazy false-invalid arming: the trap is live
//!   iff `armed_epoch != 0 && interval_epoch >= armed_epoch`. Arming at interval
//!   open is a no-op — the profiler stamps `epoch + 1` at access time and the
//!   space's epoch counter advances at the boundary, so nobody walks an accessed
//!   set to flip states back and forth.
//!
//! ## Version-based invalidation
//!
//! Write-notice application no longer reaches into other threads' heaps. Each side
//! slot carries the `cached_version` the copy was faulted at and the highest
//! `visible` version the owning thread has *acquired* for the object; the notice
//! walk (run by the owner at lock/barrier acquire) just advances `visible`. The
//! access check treats a valid copy with `cached_version < visible` as invalid —
//! the payload and twin buffers stay allocated for the refetch to reuse.
//! `visible` deliberately tracks acquired notices, not the home copy's live
//! version: invalidating against the live version would break lazy release
//! consistency (a copy must stay usable until the thread synchronizes).
//!
//! Per-thread caching is also what gives the profiler its *per-thread* at-most-once
//! fault property: each thread's first access to an object in an interval faults
//! (real or false-invalid) in its own arena, regardless of what other threads on
//! the node did.

use jessy_net::ThreadId;

use crate::object::{AccessState, ObjectId};

pub mod reference;

const STATE_MASK: u64 = 0b11;
/// Never touched by this thread.
pub(crate) const ST_ABSENT: u64 = 0;
/// The object is homed at this thread's node; no payload slot.
pub(crate) const ST_HOME: u64 = 1;
/// A cache copy that may be usable (subject to the version check).
pub(crate) const ST_VALID: u64 = 2;
/// An invalid (or never-faulted) cache copy.
pub(crate) const ST_INVALID: u64 = 3;

const DIRTY_BIT: u64 = 1 << 2;
const TWIN_BIT: u64 = 1 << 3;
const SLOT_SHIFT: u32 = 4;
const SLOT_BITS: u32 = 28;
const SLOT_MASK: u64 = ((1u64 << SLOT_BITS) - 1) << SLOT_SHIFT;
const EPOCH_SHIFT: u32 = 32;

#[inline(always)]
fn w_state(w: u64) -> u64 {
    w & STATE_MASK
}

#[inline(always)]
fn w_slot(w: u64) -> Option<usize> {
    let s = (w & SLOT_MASK) >> SLOT_SHIFT;
    (s != 0).then(|| s as usize - 1)
}

#[inline(always)]
fn w_armed_epoch(w: u64) -> u32 {
    (w >> EPOCH_SHIFT) as u32
}

/// Payload side of a cache entry: versions, data and twin. Buffers are retained
/// across invalidation, [`ThreadSpace::clear`] and slot reuse so steady-state
/// faulting is allocation-free.
#[derive(Debug, Default)]
struct SideEntry {
    /// Version of the home copy this cache was last synchronized with.
    cached_version: u64,
    /// Highest home version the owning thread has acquired a notice for.
    visible: u64,
    /// Cache payload.
    data: Vec<f64>,
    /// Twin snapshot taken before the first write of the current interval.
    twin: Vec<f64>,
}

/// One thread's access arena: packed entry headers plus payload side slabs.
///
/// Only the owning thread mutates a `ThreadSpace` — the GOS access path takes it by
/// `&mut`, so there is no per-access locking and no cross-thread mutation. Other
/// threads communicate exclusively through the notice board and the home copies.
#[derive(Debug)]
pub struct ThreadSpace {
    thread: ThreadId,
    /// Interval epoch; starts at 1 and bumps at every interval open.
    epoch: u32,
    /// Packed entry words, dense by [`ObjectId`].
    words: Vec<u64>,
    side: Vec<SideEntry>,
    free_slots: Vec<u32>,
    /// Objects with the dirty bit set, in first-write order (the flush worklist).
    dirty: Vec<ObjectId>,
    populated: usize,
}

impl ThreadSpace {
    /// Empty space for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        ThreadSpace {
            thread,
            epoch: 1,
            words: Vec::new(),
            side: Vec::new(),
            free_slots: Vec::new(),
            dirty: Vec::new(),
            populated: 0,
        }
    }

    /// The owning thread.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The current interval epoch (diagnostics; starts at 1).
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Open the next interval: traps armed for it (via
    /// [`ThreadSpace::arm_next_interval`] during the previous interval) go live.
    /// O(1) — this is the epoch-lazy replacement for walking the accessed set.
    #[inline]
    pub fn begin_interval(&mut self) {
        self.epoch += 1;
    }

    /// Number of populated entries (O(1): maintained on insert/clear).
    #[inline]
    pub fn populated(&self) -> usize {
        self.populated
    }

    #[inline(always)]
    fn word(&self, obj: ObjectId) -> u64 {
        self.words.get(obj.index()).copied().unwrap_or(0)
    }

    #[inline(always)]
    fn word_mut(&mut self, obj: ObjectId) -> &mut u64 {
        &mut self.words[obj.index()]
    }

    /// Is a valid copy stale (a notice for a newer home version was acquired)?
    #[inline(always)]
    fn word_is_stale(&self, w: u64) -> bool {
        match w_slot(w) {
            Some(s) => {
                let e = &self.side[s];
                e.cached_version < e.visible
            }
            None => false,
        }
    }

    /// Is the false-invalid trap live for this word at the current epoch?
    #[inline(always)]
    fn word_is_armed(&self, w: u64) -> bool {
        let ae = w_armed_epoch(w);
        ae != 0 && self.epoch >= ae
    }

    /// The raw state bits of `obj` with staleness folded in: a `ST_VALID` entry
    /// whose acquired `visible` version passed its `cached_version` reads as
    /// `ST_INVALID` (version-based invalidation). Returns `ST_ABSENT` for objects
    /// never touched.
    #[inline(always)]
    pub(crate) fn effective_state(&self, obj: ObjectId) -> u64 {
        let w = self.word(obj);
        let st = w_state(w);
        if st == ST_VALID && self.word_is_stale(w) {
            ST_INVALID
        } else {
            st
        }
    }

    /// The access state of `obj` as the inlined check would see it: the effective
    /// state, with a live armed trap on a usable copy reading as
    /// [`AccessState::FalseInvalid`]. `None` if this thread never touched `obj`.
    pub fn access_state(&self, obj: ObjectId) -> Option<AccessState> {
        let w = self.word(obj);
        match w_state(w) {
            ST_ABSENT => None,
            ST_HOME => Some(if self.word_is_armed(w) {
                AccessState::FalseInvalid
            } else {
                AccessState::Home
            }),
            ST_VALID if self.word_is_stale(w) => Some(AccessState::Invalid),
            ST_VALID => Some(if self.word_is_armed(w) {
                AccessState::FalseInvalid
            } else {
                AccessState::Valid
            }),
            _ => Some(AccessState::Invalid),
        }
    }

    // ------------------------------------------------------------------ arming

    /// Arm false-invalid traps on `objs` for the *current* interval (footprint
    /// probes and Nonstop re-arming, Section III.A.2). Only entries holding usable
    /// data are armed — an invalid cache takes a real (loggable) fault anyway.
    /// Returns how many traps were armed.
    pub fn arm_traps(&mut self, objs: impl IntoIterator<Item = ObjectId>) -> usize {
        let epoch = self.epoch;
        let mut armed = 0;
        for obj in objs {
            if self.arm_at(obj, epoch) {
                armed += 1;
            }
        }
        armed
    }

    /// Arm false-invalid traps, for the *current* interval, on every populated
    /// entry satisfying `pred` (the rate-change re-sync: a coordinator
    /// resampling walk retags shared headers but cannot reach this arena, so
    /// re-sampled objects whose armed chain died while unsampled would
    /// otherwise never trap again). Returns `(visited, armed)`: populated
    /// entries walked (the caller charges walk cost per entry) and traps
    /// actually armed.
    pub fn arm_matching(&mut self, mut pred: impl FnMut(ObjectId) -> bool) -> (usize, usize) {
        let epoch = self.epoch;
        let mut visited = 0;
        let mut armed = 0;
        for i in 0..self.words.len() {
            if self.words[i] == 0 {
                continue;
            }
            visited += 1;
            let obj = ObjectId(i as u32);
            if pred(obj) && self.arm_at(obj, epoch) {
                armed += 1;
            }
        }
        (visited, armed)
    }

    /// Arm a false-invalid trap on `obj` that goes live at the *next* interval open
    /// (the per-interval re-arming of Section II.A, fused into access logging —
    /// no accessed-set walk at the interval boundary). Returns whether a trap was
    /// armed.
    #[inline]
    pub fn arm_next_interval(&mut self, obj: ObjectId) -> bool {
        self.arm_at(obj, self.epoch + 1)
    }

    fn arm_at(&mut self, obj: ObjectId, epoch: u32) -> bool {
        match self.effective_state(obj) {
            ST_HOME | ST_VALID => {
                let w = self.word_mut(obj);
                *w = (*w & !(u64::from(u32::MAX) << EPOCH_SHIFT))
                    | (u64::from(epoch) << EPOCH_SHIFT);
                true
            }
            _ => false,
        }
    }

    /// Clear the armed trap (it fired, or a real fault superseded it).
    #[inline(always)]
    pub(crate) fn disarm(&mut self, obj: ObjectId) {
        *self.word_mut(obj) &= !(u64::from(u32::MAX) << EPOCH_SHIFT);
    }

    // ------------------------------------------------------------------ fast-path internals

    /// The packed word for `obj` (0 = absent / out of range).
    #[inline(always)]
    pub(crate) fn peek(&self, obj: ObjectId) -> u64 {
        self.word(obj)
    }

    /// Is the word's trap live at the current epoch? (Companion to [`Self::peek`].)
    #[inline(always)]
    pub(crate) fn peek_armed(&self, w: u64) -> bool {
        self.word_is_armed(w)
    }

    /// Is the word a stale valid copy? (Companion to [`Self::peek`].)
    #[inline(always)]
    pub(crate) fn peek_stale(&self, w: u64) -> bool {
        w_state(w) == ST_VALID && self.word_is_stale(w)
    }

    /// First touch: create the entry as home-resident (`home == true`) or as a
    /// never-faulted invalid cache.
    pub(crate) fn insert(&mut self, obj: ObjectId, home: bool) {
        if self.words.len() <= obj.index() {
            self.words.resize(obj.index() + 1, 0);
        }
        debug_assert_eq!(w_state(self.words[obj.index()]), ST_ABSENT);
        self.words[obj.index()] = if home { ST_HOME } else { ST_INVALID };
        self.populated += 1;
    }

    /// Demote a stale valid copy to invalid (its acquired `visible` version passed
    /// the cached one). Payload and twin buffers stay for the refetch to reuse.
    pub(crate) fn demote_stale(&mut self, obj: ObjectId) {
        let w = self.word_mut(obj);
        debug_assert_eq!(w_state(*w), ST_VALID);
        debug_assert!(*w & DIRTY_BIT == 0, "stale copy with unflushed writes");
        *w = (*w & !(STATE_MASK | TWIN_BIT)) | ST_INVALID;
    }

    /// Install a fetched/prefetched copy: ensures a side slot, copies the payload,
    /// records the version and makes the entry a valid cache. Clears any lingering
    /// armed trap (the seed equivalent — overwriting the state word — did the
    /// same). Dirty/twin bits are preserved (always clear on the fault path).
    pub(crate) fn install_copy(&mut self, obj: ObjectId, data: &[f64], version: u64) {
        if self.words.len() <= obj.index() {
            self.words.resize(obj.index() + 1, 0);
        }
        let w = self.words[obj.index()];
        if w_state(w) == ST_ABSENT {
            self.populated += 1;
        }
        let slot = match w_slot(w) {
            Some(s) => s,
            None => {
                let s = self.alloc_slot();
                // Fresh (or recycled-from-another-object) slot: reset the
                // visibility watermark; the fetched version covers every notice
                // this thread has acquired for the object.
                self.side[s].visible = 0;
                s
            }
        };
        let e = &mut self.side[slot];
        e.data.clear();
        e.data.extend_from_slice(data);
        e.cached_version = version;
        let keep = w & (DIRTY_BIT | TWIN_BIT);
        self.words[obj.index()] =
            ST_VALID | keep | (((slot as u64) + 1) << SLOT_SHIFT);
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                assert!(
                    self.side.len() < (1 << SLOT_BITS) - 1,
                    "side slab full (2^28 cache copies per thread)"
                );
                self.side.push(SideEntry::default());
                self.side.len() - 1
            }
        }
    }

    #[inline(always)]
    fn slot_of(&self, obj: ObjectId) -> usize {
        w_slot(self.word(obj)).expect("cache entry without side slot")
    }

    /// The cache payload length in words (valid cache entries only).
    #[inline(always)]
    pub(crate) fn data_len(&self, obj: ObjectId) -> usize {
        self.side[self.slot_of(obj)].data.len()
    }

    /// Mutable cache payload (valid cache entries only).
    #[inline(always)]
    pub(crate) fn data_mut(&mut self, obj: ObjectId) -> &mut [f64] {
        let slot = self.slot_of(obj);
        &mut self.side[slot].data
    }

    /// Does the word carry the dirty bit?
    #[inline(always)]
    pub(crate) fn dirty_bit(&self, w: u64) -> bool {
        w & DIRTY_BIT != 0
    }

    /// Does the word carry the twin bit?
    #[inline(always)]
    pub(crate) fn twin_bit(&self, w: u64) -> bool {
        w & TWIN_BIT != 0
    }

    /// Set the dirty bit and enqueue `obj` on the flush worklist.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, obj: ObjectId) {
        *self.word_mut(obj) |= DIRTY_BIT;
        self.dirty.push(obj);
    }

    #[inline]
    pub(crate) fn clear_dirty_bit(&mut self, obj: ObjectId) {
        *self.word_mut(obj) &= !DIRTY_BIT;
    }

    /// Snapshot the payload into the twin buffer (first write of the interval).
    pub(crate) fn make_twin(&mut self, obj: ObjectId) {
        let slot = self.slot_of(obj);
        let e = &mut self.side[slot];
        e.twin.clear();
        e.twin.extend_from_slice(&e.data);
        *self.word_mut(obj) |= TWIN_BIT;
    }

    /// Drop the twin (flush consumed it); the buffer is retained for reuse.
    #[inline]
    pub(crate) fn drop_twin(&mut self, obj: ObjectId) {
        *self.word_mut(obj) &= !TWIN_BIT;
    }

    /// Run `f` over `(twin, data)` of a dirty valid copy (the release-time diff).
    pub(crate) fn with_twin_and_data<R>(
        &mut self,
        obj: ObjectId,
        f: impl FnOnce(&[f64], &[f64]) -> R,
    ) -> R {
        let e = &self.side[self.slot_of(obj)];
        f(&e.twin, &e.data)
    }

    /// The version the cache copy was last synchronized with.
    #[inline(always)]
    pub(crate) fn cached_version(&self, obj: ObjectId) -> u64 {
        self.side[self.slot_of(obj)].cached_version
    }

    /// Record that the flush synchronized the copy with home version `v`.
    #[inline]
    pub(crate) fn set_cached_version(&mut self, obj: ObjectId, v: u64) {
        let slot = self.slot_of(obj);
        self.side[slot].cached_version = v;
    }

    /// Advance the acquired-visibility watermark (notice application). The copy
    /// reads as invalid once `visible` passes `cached_version` — no state flip, no
    /// payload drop.
    #[inline]
    pub(crate) fn note_visible(&mut self, obj: ObjectId, v: u64) {
        let slot = self.slot_of(obj);
        let e = &mut self.side[slot];
        e.visible = e.visible.max(v);
    }

    /// Home-migration repair: the object's home moved away from under a
    /// home-resident entry, which becomes an ordinary cold cache entry (the next
    /// access faults from the new home). Any pending dirty bit is dropped — home
    /// writes mutated the (now migrated) home copy in place, so no data is lost.
    pub(crate) fn reset_to_cold(&mut self, obj: ObjectId) {
        let w = self.word(obj);
        if let Some(s) = w_slot(w) {
            self.free_slots.push(s as u32);
        }
        *self.word_mut(obj) = ST_INVALID;
    }

    /// Every object this thread has an access entry for (home-resident, cached
    /// or invalid), in object-id order. This is the thread's de-facto working
    /// set — the sticky-set resolver roots its walk here so a migrating thread
    /// carries *its own* objects, not whatever a shared container enumerates
    /// first.
    pub fn touched_objects(&self) -> Vec<ObjectId> {
        (0..self.words.len())
            .filter(|&i| self.words[i] != 0)
            .map(|i| ObjectId(i as u32))
            .collect()
    }

    /// Home-migration repair, the inbound side: the object's home migrated *onto*
    /// this node after first touch, so a fault on the (invalid) entry is served
    /// from the now-local home copy and the entry rebinds to home-resident for
    /// good. The side slot is recycled; an invalid copy cannot carry unflushed
    /// writes.
    pub(crate) fn promote_home(&mut self, obj: ObjectId) {
        let w = self.word(obj);
        debug_assert_eq!(w_state(w), ST_INVALID);
        debug_assert!(w & DIRTY_BIT == 0, "invalid copy with unflushed writes");
        if let Some(s) = w_slot(w) {
            self.free_slots.push(s as u32);
        }
        *self.word_mut(obj) = ST_HOME;
    }

    /// Take the flush worklist (callers return it via
    /// [`ThreadSpace::recycle_dirty`] so the buffer is reused).
    pub(crate) fn take_dirty(&mut self) -> Vec<ObjectId> {
        std::mem::take(&mut self.dirty)
    }

    /// Is the flush worklist empty?
    #[inline]
    pub(crate) fn dirty_is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Return the (drained) worklist buffer so its capacity is reused.
    pub(crate) fn recycle_dirty(&mut self, mut buf: Vec<ObjectId>) {
        buf.clear();
        debug_assert!(self.dirty.is_empty());
        self.dirty = buf;
    }

    // ------------------------------------------------------------------ migration

    /// Forget every entry — the thread landed on a new node (migration) and starts
    /// with a fresh view of the heap. The arena allocation is recycled: the word
    /// table keeps its length (zeroed), side slots go on the free list and their
    /// payload/twin buffers keep their capacity, so a migrated thread does not
    /// re-grow its arena from nothing.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.free_slots.clear();
        self.free_slots
            .extend((0..self.side.len() as u32).rev());
        for e in &mut self.side {
            e.cached_version = 0;
            e.visible = 0;
        }
        self.dirty.clear();
        self.populated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ThreadSpace {
        ThreadSpace::new(ThreadId(0))
    }

    #[test]
    fn lazy_entry_creation_and_populated_count() {
        let mut ts = space();
        assert!(ts.access_state(ObjectId(3)).is_none());
        assert_eq!(ts.populated(), 0);
        ts.insert(ObjectId(3), false);
        assert_eq!(ts.access_state(ObjectId(3)), Some(AccessState::Invalid));
        assert_eq!(ts.populated(), 1);
        ts.insert(ObjectId(0), true);
        assert_eq!(ts.access_state(ObjectId(0)), Some(AccessState::Home));
        assert_eq!(ts.populated(), 2, "count maintained, not scanned");
    }

    #[test]
    fn install_makes_a_valid_copy_with_version() {
        let mut ts = space();
        ts.insert(ObjectId(1), false);
        ts.install_copy(ObjectId(1), &[1.0, 2.0], 7);
        assert_eq!(ts.access_state(ObjectId(1)), Some(AccessState::Valid));
        assert_eq!(ts.cached_version(ObjectId(1)), 7);
        assert_eq!(ts.data_mut(ObjectId(1)), &mut [1.0, 2.0][..]);
    }

    #[test]
    fn version_based_invalidation_is_lazy() {
        let mut ts = space();
        ts.insert(ObjectId(1), false);
        ts.install_copy(ObjectId(1), &[1.0], 3);
        // A notice for an older-or-equal version leaves the copy usable.
        ts.note_visible(ObjectId(1), 3);
        assert_eq!(ts.access_state(ObjectId(1)), Some(AccessState::Valid));
        // A newer acquired version makes it read as invalid, without dropping data.
        ts.note_visible(ObjectId(1), 4);
        assert_eq!(ts.access_state(ObjectId(1)), Some(AccessState::Invalid));
        assert_eq!(ts.effective_state(ObjectId(1)), ST_INVALID);
        // Refetch reuses the entry and goes valid again.
        ts.demote_stale(ObjectId(1));
        ts.install_copy(ObjectId(1), &[2.0], 4);
        assert_eq!(ts.access_state(ObjectId(1)), Some(AccessState::Valid));
    }

    #[test]
    fn epoch_lazy_arming_fires_only_from_its_epoch() {
        let mut ts = space();
        ts.insert(ObjectId(2), true);
        assert!(ts.arm_next_interval(ObjectId(2)));
        // Not live in the interval that armed it…
        assert_eq!(ts.access_state(ObjectId(2)), Some(AccessState::Home));
        ts.begin_interval();
        // …live from the next one, and it stays live until disarmed.
        assert_eq!(ts.access_state(ObjectId(2)), Some(AccessState::FalseInvalid));
        ts.begin_interval();
        assert_eq!(ts.access_state(ObjectId(2)), Some(AccessState::FalseInvalid));
        ts.disarm(ObjectId(2));
        assert_eq!(ts.access_state(ObjectId(2)), Some(AccessState::Home));
    }

    #[test]
    fn arm_traps_is_immediate_and_skips_unusable_entries() {
        let mut ts = space();
        ts.insert(ObjectId(0), true);
        ts.insert(ObjectId(1), false); // invalid: not armable
        ts.insert(ObjectId(2), false);
        ts.install_copy(ObjectId(2), &[0.0], 1);
        ts.note_visible(ObjectId(2), 2); // stale: not armable
        ts.insert(ObjectId(3), false);
        ts.install_copy(ObjectId(3), &[0.0], 1);
        let armed = ts.arm_traps([ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(9)]);
        assert_eq!(armed, 2, "home + fresh valid only");
        assert_eq!(ts.access_state(ObjectId(0)), Some(AccessState::FalseInvalid));
        assert_eq!(ts.access_state(ObjectId(3)), Some(AccessState::FalseInvalid));
        assert_eq!(ts.access_state(ObjectId(2)), Some(AccessState::Invalid));
    }

    #[test]
    fn clear_recycles_the_arena_allocation() {
        let mut ts = space();
        for i in 0..64 {
            ts.insert(ObjectId(i), false);
            ts.install_copy(ObjectId(i), &[0.0; 8], 1);
        }
        assert_eq!(ts.populated(), 64);
        let words_cap = ts.words.capacity();
        let side_len = ts.side.len();
        ts.clear();
        assert_eq!(ts.populated(), 0);
        assert!(ts.access_state(ObjectId(5)).is_none());
        assert!(ts.words.capacity() >= words_cap, "word table kept");
        assert_eq!(ts.side.len(), side_len, "side slabs kept for reuse");
        assert_eq!(ts.free_slots.len(), side_len);
        // Re-populating reuses slots instead of growing the slab.
        ts.insert(ObjectId(7), false);
        ts.install_copy(ObjectId(7), &[1.0], 2);
        assert_eq!(ts.side.len(), side_len, "no new slab entry allocated");
        assert_eq!(ts.data_mut(ObjectId(7)), &mut [1.0][..]);
    }

    #[test]
    fn dirty_and_twin_bits_round_trip() {
        let mut ts = space();
        ts.insert(ObjectId(4), false);
        ts.install_copy(ObjectId(4), &[1.0, 2.0], 1);
        let w = ts.peek(ObjectId(4));
        assert!(!ts.dirty_bit(w) && !ts.twin_bit(w));
        ts.make_twin(ObjectId(4));
        ts.mark_dirty(ObjectId(4));
        ts.data_mut(ObjectId(4))[0] = 9.0;
        let w = ts.peek(ObjectId(4));
        assert!(ts.dirty_bit(w) && ts.twin_bit(w));
        ts.with_twin_and_data(ObjectId(4), |twin, data| {
            assert_eq!(twin, &[1.0, 2.0]);
            assert_eq!(data, &[9.0, 2.0]);
        });
        let dirty = ts.take_dirty();
        assert_eq!(dirty, vec![ObjectId(4)]);
        ts.clear_dirty_bit(ObjectId(4));
        ts.drop_twin(ObjectId(4));
        ts.recycle_dirty(dirty);
        let w = ts.peek(ObjectId(4));
        assert!(!ts.dirty_bit(w) && !ts.twin_bit(w));
    }
}
