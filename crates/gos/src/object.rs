//! Objects and their headers.
//!
//! The paper stores, in every object header: a 2-bit access state (including the
//! profiler-armed *false-invalid* value), the *real* state in a separate field, a
//! half-word per-class **sequence number** (Section II.B.1), and a **sampled** tag.
//! [`ObjectCore`] is our equivalent of the home copy plus the globally-visible header
//! bits; per-node cache state lives in [`crate::heap`].
//!
//! Payloads are vectors of `f64` words: every workload object (SOR row, Barnes-Hut
//! body, water molecule) is a fixed layout of doubles, which keeps twin/diff word-level
//! like the real system while staying allocation-friendly.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};

use jessy_net::NodeId;

use crate::class::ClassId;

/// Bytes of an object header as charged on the wire (id + class + length + state).
pub const OBJ_HEADER_BYTES: usize = 16;

/// Globally unique object identifier (dense index into the global object table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Raw index into the global object table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The 2-bit access state stored in the object header of a node's copy.
///
/// `FalseInvalid` is the profiler-armed state of Section II.A: the copy is actually
/// usable (its real status is kept separately) but the next access must trap into the
/// GOS service routine so the access can be logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessState {
    /// The copy is the home copy; access always succeeds.
    Home,
    /// A valid cache copy.
    Valid,
    /// An invalid (or absent) cache copy; access faults to the home node.
    Invalid,
    /// Profiler-armed fake invalid state; access traps for logging only.
    FalseInvalid,
}

/// The *real* consistency status, stored separately so [`AccessState::FalseInvalid`]
/// can be cancelled back to it (Section II.A: "maintain object consistency according
/// to its real state").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RealState {
    /// This node is the object's home.
    HomeResident,
    /// Valid cache copy present.
    CacheValid,
    /// Cache copy stale or absent.
    CacheInvalid,
}

impl RealState {
    /// The access state corresponding to this real state (used when cancelling a
    /// false-invalid trap).
    #[inline]
    pub fn to_access_state(self) -> AccessState {
        match self {
            RealState::HomeResident => AccessState::Home,
            RealState::CacheValid => AccessState::Valid,
            RealState::CacheInvalid => AccessState::Invalid,
        }
    }
}

/// The globally shared part of an object: identity, header bits and the home copy.
#[derive(Debug)]
pub struct ObjectCore {
    /// Global id.
    pub id: ObjectId,
    /// The object's class.
    pub class: ClassId,
    home: AtomicU16,
    /// Payload length in 8-byte words. For arrays this is the element count times the
    /// per-element word width; for scalars it is the class's fixed size.
    pub len_words: u32,
    /// Per-instance (scalar) or per-element (array) size in 8-byte words, denormalized
    /// from the class descriptor so the access fast path never touches the class
    /// registry (whose lookup clones a `ClassInfo`, including its name `String`).
    pub unit_words: u32,
    /// Sequence number of the object (scalar classes) or of the first array element
    /// (array classes); later elements are `elem_seq0 + index` (Section II.B.3).
    pub elem_seq0: u64,
    /// Whether this is an array instance (per-element sampling applies).
    pub is_array: bool,
    sampled: AtomicBool,
    version: AtomicU64,
    home_data: Mutex<Vec<f64>>,
    refs: Mutex<Vec<ObjectId>>,
}

impl ObjectCore {
    /// Create a home copy with a zeroed payload.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: ObjectId,
        class: ClassId,
        home: NodeId,
        len_words: u32,
        unit_words: u32,
        elem_seq0: u64,
        is_array: bool,
        sampled: bool,
    ) -> Self {
        ObjectCore {
            id,
            class,
            home: AtomicU16::new(home.0),
            len_words,
            unit_words: unit_words.max(1),
            elem_seq0,
            is_array,
            sampled: AtomicBool::new(sampled),
            version: AtomicU64::new(0),
            home_data: Mutex::new(vec![0.0; len_words as usize]),
            refs: Mutex::new(Vec::new()),
        }
    }

    /// The object's outgoing reference fields — the connectivity graph that sticky-set
    /// resolution (Section III.A.3) and connectivity-based prefetching traverse.
    /// Reference fields are maintained by the application alongside the data payload
    /// (a Java object's pointer fields vs. its primitive fields).
    pub fn refs(&self) -> Vec<ObjectId> {
        self.refs.lock().clone()
    }

    /// Append an outgoing reference.
    pub fn add_ref(&self, target: ObjectId) {
        self.refs.lock().push(target);
    }

    /// Replace the outgoing reference list.
    pub fn set_refs(&self, targets: Vec<ObjectId>) {
        *self.refs.lock() = targets;
    }

    /// The object's current home node. Homes start at the allocating node and can be
    /// relocated by [`ObjectCore::set_home`] (the home-migration optimization the
    /// paper's experiments run with).
    #[inline]
    pub fn home(&self) -> NodeId {
        NodeId(self.home.load(Ordering::Acquire))
    }

    /// Relocate the home (home migration; the caller accounts the transfer and posts
    /// the invalidating write notice).
    #[inline]
    pub fn set_home(&self, home: NodeId) {
        self.home.store(home.0, Ordering::Release);
    }

    /// Payload size in bytes (what an object fault moves, excluding headers).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.len_words as usize * 8
    }

    /// Element count: `len_words / unit_words` for arrays, 1 for scalars.
    #[inline]
    pub fn len_elems(&self) -> u32 {
        if self.is_array {
            self.len_words / self.unit_words
        } else {
            1
        }
    }

    /// Is the object currently tagged as sampled?
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.sampled.load(Ordering::Relaxed)
    }

    /// (Re)tag the object as sampled/unsampled — used at allocation and during
    /// resampling walks after a rate change (Section II.B.2).
    #[inline]
    pub fn set_sampled(&self, sampled: bool) {
        self.sampled.store(sampled, Ordering::Relaxed);
    }

    /// Current home-copy version (bumped on every applied write interval).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Bump the home version, returning the new value.
    #[inline]
    pub fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Run `f` over the home copy's payload (shared lock discipline: always acquire the
    /// per-node cache-entry lock *before* this one).
    pub fn with_home_data<R>(&self, f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
        f(&mut self.home_data.lock())
    }

    /// Clone the home payload (an object fault's data transfer).
    pub fn snapshot_home(&self) -> Vec<f64> {
        self.home_data.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ObjectCore {
        ObjectCore::new(ObjectId(7), ClassId(1), NodeId(2), 4, 4, 100, false, true)
    }

    #[test]
    fn header_fields_and_sizes() {
        let o = core();
        assert_eq!(o.payload_bytes(), 32);
        assert!(o.is_sampled());
        o.set_sampled(false);
        assert!(!o.is_sampled());
        assert_eq!(o.id.to_string(), "o7");
    }

    #[test]
    fn version_bumps_monotonically() {
        let o = core();
        assert_eq!(o.version(), 0);
        assert_eq!(o.bump_version(), 1);
        assert_eq!(o.bump_version(), 2);
        assert_eq!(o.version(), 2);
    }

    #[test]
    fn home_data_roundtrip() {
        let o = core();
        o.with_home_data(|d| d[2] = 3.5);
        assert_eq!(o.snapshot_home(), vec![0.0, 0.0, 3.5, 0.0]);
    }

    #[test]
    fn reference_fields_form_a_graph() {
        let o = core();
        assert!(o.refs().is_empty());
        o.add_ref(ObjectId(1));
        o.add_ref(ObjectId(2));
        assert_eq!(o.refs(), vec![ObjectId(1), ObjectId(2)]);
        o.set_refs(vec![ObjectId(9)]);
        assert_eq!(o.refs(), vec![ObjectId(9)]);
    }

    #[test]
    fn false_invalid_cancels_to_real_state() {
        assert_eq!(RealState::HomeResident.to_access_state(), AccessState::Home);
        assert_eq!(RealState::CacheValid.to_access_state(), AccessState::Valid);
        assert_eq!(RealState::CacheInvalid.to_access_state(), AccessState::Invalid);
    }
}
