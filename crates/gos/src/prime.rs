//! Prime-number sampling gaps.
//!
//! Section II.B.1: *"Each class has a nominal sampling gap typically in powers of 2 and
//! we will find a prime number nearest to the nominal to be the real sampling gap. For
//! example, 31, 67 and 127 would be chosen as the real sampling gaps for nominal
//! sampling gaps of 32, 64 and 128 respectively. Using prime numbers is necessary ...
//! to avoid non-uniform sampling due to potential cyclic allocation behaviors."*
//!
//! The paper's three examples pin down the tie-breaking rule: 64 is equidistant from 61
//! and 67 and the paper picks 67, while 32 picks 31 — i.e. for each distance `d` the
//! candidate `n + d` is tried before `n - d`.

/// Deterministic primality test for `u64` (trial division; gaps are small, ≤ ~2²⁰).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    if n.is_multiple_of(3) {
        return n == 3;
    }
    let mut i = 5u64;
    while i * i <= n {
        if n.is_multiple_of(i) || n.is_multiple_of(i + 2) {
            return false;
        }
        i += 6;
    }
    true
}

/// The *real* sampling gap for a nominal gap: the nearest prime, trying upward first on
/// ties (matching the paper's 32→31, 64→67, 128→127 examples).
///
/// Nominal gaps of 0 or 1 mean *full sampling* and are returned unchanged as 1.
///
/// ```
/// use jessy_gos::prime::nearest_prime;
/// assert_eq!(nearest_prime(32), 31);
/// assert_eq!(nearest_prime(64), 67); // equidistant: the paper picks upward
/// assert_eq!(nearest_prime(128), 127);
/// ```
pub fn nearest_prime(nominal: u64) -> u64 {
    if nominal <= 1 {
        return 1;
    }
    if nominal == 2 {
        return 2;
    }
    for d in 0.. {
        if is_prime(nominal + d) {
            return nominal + d;
        }
        if nominal > d && is_prime(nominal - d) {
            return nominal - d;
        }
    }
    unreachable!("primes are unbounded")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(nearest_prime(32), 31);
        assert_eq!(nearest_prime(64), 67);
        assert_eq!(nearest_prime(128), 127);
    }

    #[test]
    fn small_and_degenerate_gaps() {
        assert_eq!(nearest_prime(0), 1, "full sampling stays full");
        assert_eq!(nearest_prime(1), 1);
        assert_eq!(nearest_prime(2), 2);
        assert_eq!(nearest_prime(3), 3);
        assert_eq!(nearest_prime(4), 5, "upward tie-break: |4-5| = |4-3|");
        assert_eq!(nearest_prime(8), 7);
        assert_eq!(nearest_prime(16), 17);
    }

    #[test]
    fn power_of_two_ladder_is_strictly_increasing() {
        // The adaptive controller halves/doubles nominal gaps along the power-of-two
        // ladder; the real (prime) gaps must stay strictly ordered for the rate ladder
        // to be meaningful.
        let reals: Vec<u64> = (0..=20).map(|k| nearest_prime(1 << k)).collect();
        for w in reals.windows(2) {
            assert!(w[0] < w[1], "ladder not increasing: {reals:?}");
        }
    }

    #[test]
    fn is_prime_basics() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
        assert!(is_prime(1_048_573)); // prime near 2^20
        assert!(!is_prime(1_048_575));
    }

    #[test]
    fn nearest_prime_result_is_always_prime_or_one() {
        for n in 0..5_000u64 {
            let p = nearest_prime(n);
            assert!(p == 1 || is_prime(p), "nearest_prime({n}) = {p}");
        }
    }
}
