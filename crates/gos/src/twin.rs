//! Twin/diff machinery of home-based LRC.
//!
//! Before the first write to a cached object in an interval, the node clones the
//! payload (the **twin**). At release time the current payload is compared word-by-word
//! against the twin and only the changed words — the **diff** — travel to the home
//! node. The diff is run-length encoded as `(start, values…)` runs, which is what
//! HLRC implementations ship and what we account on the wire.

use serde::{Deserialize, Serialize};

/// One contiguous run of changed words.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Word index of the first changed word.
    pub start: u32,
    /// The new values.
    pub values: Vec<f64>,
}

/// A word-level diff of an object payload against its twin.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Diff {
    /// Changed runs in increasing `start` order, non-adjacent.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff of `current` against `twin`.
    ///
    /// # Panics
    /// If the lengths differ (twins are exact clones).
    pub fn compute(twin: &[f64], current: &[f64]) -> Diff {
        assert_eq!(twin.len(), current.len(), "twin/current length mismatch");
        let mut runs = Vec::new();
        let mut i = 0;
        while i < current.len() {
            // NaN-safe inequality on the bit pattern: a write of NaN is still a write.
            if twin[i].to_bits() != current[i].to_bits() {
                let start = i;
                while i < current.len() && twin[i].to_bits() != current[i].to_bits() {
                    i += 1;
                }
                runs.push(DiffRun {
                    start: start as u32,
                    values: current[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// Apply this diff onto `target` (the home copy).
    ///
    /// # Panics
    /// If a run falls outside `target`.
    pub fn apply(&self, target: &mut [f64]) {
        for run in &self.runs {
            let start = run.start as usize;
            let end = start + run.values.len();
            assert!(end <= target.len(), "diff run out of bounds");
            target[start..end].copy_from_slice(&run.values);
        }
    }

    /// Number of changed words.
    pub fn changed_words(&self) -> usize {
        self.runs.iter().map(|r| r.values.len()).sum()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Encoded size on the wire: per-run header (start + length, 8 bytes) plus the
    /// changed words.
    pub fn wire_bytes(&self) -> usize {
        self.runs.len() * 8 + self.changed_words() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_diff_for_identical_payloads() {
        let a = vec![1.0, 2.0, 3.0];
        let d = Diff::compute(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.changed_words(), 0);
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn runs_are_coalesced() {
        let twin = vec![0.0; 8];
        let mut cur = twin.clone();
        cur[1] = 1.0;
        cur[2] = 2.0;
        cur[5] = 5.0;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].start, 1);
        assert_eq!(d.runs[0].values, vec![1.0, 2.0]);
        assert_eq!(d.runs[1].start, 5);
        assert_eq!(d.changed_words(), 3);
        assert_eq!(d.wire_bytes(), 2 * 8 + 3 * 8);
    }

    #[test]
    fn apply_reconstructs_current() {
        let twin = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let mut cur = twin.clone();
        cur[0] = -1.0;
        cur[4] = 9.0;
        let d = Diff::compute(&twin, &cur);
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, cur);
    }

    #[test]
    fn nan_writes_are_detected() {
        let twin = vec![0.0];
        let cur = vec![f64::NAN];
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.changed_words(), 1);
        let mut home = vec![0.0];
        d.apply(&mut home);
        assert!(home[0].is_nan());
    }

    #[test]
    fn negative_zero_is_a_write() {
        // 0.0 == -0.0 under PartialEq, but the bit patterns differ; the diff must be
        // bit-exact or the home copy would silently diverge from the writer's view.
        let twin = vec![0.0];
        let cur = vec![-0.0];
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.changed_words(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = Diff::compute(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_out_of_bounds_panics() {
        let d = Diff {
            runs: vec![DiffRun {
                start: 3,
                values: vec![1.0, 2.0],
            }],
        };
        let mut target = vec![0.0; 4];
        d.apply(&mut target);
    }
}
