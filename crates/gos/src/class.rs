//! Classes and per-class sequence numbers.
//!
//! Section II.B differentiates sampling *at class level*: every class owns a sequence
//! counter, and each new instance (or, for arrays, each element — Section II.B.3) draws
//! consecutive sequence numbers from it. The sampling gap is also defined per class; it
//! lives in the profiler (`jessy-core`), not here — the GOS only provides the raw
//! material (classes, sizes, sequence numbers).

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a class in the [`ClassRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub u16);

impl ClassId {
    /// Raw index into per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Static description of one class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassInfo {
    /// Human-readable name, e.g. `"Body"`, `"double[]"`.
    pub name: String,
    /// Is this an array class (variable length, per-element sequence numbers)?
    pub is_array: bool,
    /// For scalar classes: the fixed instance size in 8-byte words.
    /// For array classes: the per-element size in words (≥ 1).
    pub unit_words: u32,
}

impl ClassInfo {
    /// Instance/element size in bytes — the `s` of the paper's `gap = SP / (s · n)`.
    #[inline]
    pub fn unit_bytes(&self) -> usize {
        self.unit_words as usize * 8
    }
}

struct ClassSlot {
    info: ClassInfo,
    seq: AtomicU64,
}

/// Registry of all classes plus their sequence counters.
#[derive(Default)]
pub struct ClassRegistry {
    slots: RwLock<Vec<ClassSlot>>,
}

impl ClassRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a scalar class of `words` 8-byte words per instance.
    pub fn register_scalar(&self, name: &str, words: u32) -> ClassId {
        self.register(ClassInfo {
            name: name.to_string(),
            is_array: false,
            unit_words: words.max(1),
        })
    }

    /// Register an array class of `elem_words` words per element.
    pub fn register_array(&self, name: &str, elem_words: u32) -> ClassId {
        self.register(ClassInfo {
            name: name.to_string(),
            is_array: true,
            unit_words: elem_words.max(1),
        })
    }

    fn register(&self, info: ClassInfo) -> ClassId {
        let mut slots = self.slots.write();
        assert!(slots.len() < u16::MAX as usize, "class table full");
        assert!(
            !slots.iter().any(|s| s.info.name == info.name),
            "class {:?} registered twice",
            info.name
        );
        slots.push(ClassSlot {
            info,
            seq: AtomicU64::new(0),
        });
        ClassId((slots.len() - 1) as u16)
    }

    /// Look up a class (clones the small descriptor).
    pub fn info(&self, class: ClassId) -> ClassInfo {
        self.slots.read()[class.index()].info.clone()
    }

    /// Find a class by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.slots
            .read()
            .iter()
            .position(|s| s.info.name == name)
            .map(|i| ClassId(i as u16))
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw `count` consecutive sequence numbers for `class`, returning the first.
    ///
    /// A scalar allocation draws 1; an array of `L` elements draws `L` so every element
    /// has its own number (Section II.B.3: "every element has its own sequence number
    /// ... we only need to save the first element's").
    pub fn draw_seq(&self, class: ClassId, count: u64) -> u64 {
        self.slots.read()[class.index()]
            .seq
            .fetch_add(count, Ordering::Relaxed)
    }

    /// Current sequence counter value (tests/diagnostics).
    pub fn seq_watermark(&self, class: ClassId) -> u64 {
        self.slots.read()[class.index()].seq.load(Ordering::Relaxed)
    }

    /// Iterate `(ClassId, ClassInfo)` pairs.
    pub fn all(&self) -> Vec<(ClassId, ClassInfo)> {
        self.slots
            .read()
            .iter()
            .enumerate()
            .map(|(i, s)| (ClassId(i as u16), s.info.clone()))
            .collect()
    }
}

impl fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassRegistry")
            .field("classes", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = ClassRegistry::new();
        let body = reg.register_scalar("Body", 8);
        let darr = reg.register_array("double[]", 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.info(body).unit_bytes(), 64);
        assert!(reg.info(darr).is_array);
        assert_eq!(reg.by_name("double[]"), Some(darr));
        assert_eq!(reg.by_name("nope"), None);
    }

    #[test]
    fn sequence_numbers_are_consecutive_per_class() {
        let reg = ClassRegistry::new();
        let a = reg.register_scalar("A", 1);
        let b = reg.register_scalar("B", 1);
        assert_eq!(reg.draw_seq(a, 1), 0);
        assert_eq!(reg.draw_seq(a, 5), 1, "array of 5 draws 5 numbers");
        assert_eq!(reg.draw_seq(a, 1), 6);
        assert_eq!(reg.draw_seq(b, 1), 0, "classes have independent counters");
        assert_eq!(reg.seq_watermark(a), 7);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let reg = ClassRegistry::new();
        reg.register_scalar("X", 1);
        reg.register_scalar("X", 2);
    }

    #[test]
    fn zero_word_classes_are_clamped() {
        let reg = ClassRegistry::new();
        let c = reg.register_scalar("Empty", 0);
        assert_eq!(reg.info(c).unit_words, 1);
    }

    #[test]
    fn concurrent_draws_never_overlap() {
        use std::sync::Arc;
        let reg = Arc::new(ClassRegistry::new());
        let c = reg.register_scalar("C", 1);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..1000 {
                        seen.push(reg.draw_seq(c, 3));
                    }
                    seen
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "ranges must not overlap");
        assert_eq!(reg.seq_watermark(c), 8 * 1000 * 3);
    }
}
