//! Synchronization: write notices, distributed locks and the global barrier.
//!
//! HLRC propagates modifications lazily: diffs are flushed at *release*, and **write
//! notices** tell other nodes at *acquire* which cached objects went stale. We keep a
//! single global, append-only notice log with a per-thread cursor — a lock acquire or
//! barrier exit applies every notice that thread has not yet seen. This is conservative
//! (it may invalidate more than a vector-timestamped HLRC would) but preserves
//! coherence for properly synchronized programs and keeps the at-most-once fault
//! property the profiler exploits.
//!
//! Real synchronization (parking) is done with mutex/condvar pairs; *simulated* time is
//! reconciled alongside: a barrier releases everyone at the latest participant's clock
//! plus the barrier cost, and a lock hand-off floors the acquirer's clock at the
//! previous holder's release time.
//!
//! Under the deterministic executor each primitive has a **cooperative** variant
//! (`acquire_coop`, `release_coop`, `wait_coop`): instead of parking the OS thread on
//! a condvar, a blocked participant registers as a waiter and hands the scheduling
//! token back via [`DetExecutor::block_internal`]; the releasing side unblocks every
//! waiter and the scheduler picks the next holder deterministically. Because at most
//! one task runs at a time, the register-then-block sequence cannot race a release,
//! so the loop-recheck pattern is lost-wakeup-free by construction.

use parking_lot::{Condvar, Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use jessy_net::{DetExecutor, SimNanos};

use crate::object::ObjectId;

/// Wire size of one write notice (object id + version).
pub const NOTICE_BYTES: usize = 12;

/// "Object `obj` reached home version `version`" — invalidate older caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteNotice {
    /// The modified object.
    pub obj: ObjectId,
    /// The home version after the diff was applied.
    pub version: u64,
}

/// Global append-only notice log with per-thread read cursors.
#[derive(Debug)]
pub struct NoticeBoard {
    log: RwLock<Vec<WriteNotice>>,
    cursors: Vec<AtomicUsize>,
}

impl NoticeBoard {
    /// Board with `n_cursors` independent read cursors (one per thread).
    pub fn new(n_cursors: usize) -> Self {
        NoticeBoard {
            log: RwLock::new(Vec::new()),
            cursors: (0..n_cursors).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Append notices (at release time).
    pub fn post(&self, notices: impl IntoIterator<Item = WriteNotice>) {
        let mut log = self.log.write();
        log.extend(notices);
    }

    /// Take every notice cursor `who` has not yet applied, advancing its cursor.
    ///
    /// Concurrent callers for the *same* cursor must be externally serialized (they
    /// are: each cursor belongs to one thread, which takes notices on its own
    /// acquire path only).
    pub fn take_new(&self, who: usize) -> Vec<WriteNotice> {
        let log = self.log.read();
        let cur = self.cursors[who].load(Ordering::Acquire);
        let new = log[cur..].to_vec();
        self.cursors[who].store(log.len(), Ordering::Release);
        new
    }

    /// Total notices ever posted.
    pub fn len(&self) -> usize {
        self.log.read().len()
    }

    /// True if no notices were ever posted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifies a distributed lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(pub u32);

impl LockId {
    /// Raw index into the lock table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[derive(Debug)]
struct RawLockInner {
    held: bool,
    /// Simulated time at which the previous holder released.
    last_release_sim: SimNanos,
    /// Executor tasks parked on a contended cooperative acquire.
    waiters: Vec<usize>,
}

/// A single distributed lock: real mutual exclusion + simulated-time hand-off.
#[derive(Debug)]
pub struct RawLock {
    inner: Mutex<RawLockInner>,
    cv: Condvar,
}

impl RawLock {
    /// A free lock.
    pub fn new() -> Self {
        RawLock {
            inner: Mutex::new(RawLockInner {
                held: false,
                last_release_sim: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until the lock is held; returns the previous holder's release time so the
    /// caller can floor its simulated clock (a later acquirer inherits the releaser's
    /// point in simulated time).
    pub fn acquire(&self) -> SimNanos {
        let mut inner = self.inner.lock();
        while inner.held {
            self.cv.wait(&mut inner);
        }
        inner.held = true;
        inner.last_release_sim
    }

    /// Release the lock, recording the releaser's simulated time.
    ///
    /// # Panics
    /// If the lock is not held.
    pub fn release(&self, now_sim: SimNanos) {
        let mut inner = self.inner.lock();
        assert!(inner.held, "releasing a lock that is not held");
        inner.held = false;
        inner.last_release_sim = inner.last_release_sim.max(now_sim);
        drop(inner);
        self.cv.notify_one();
    }

    /// Cooperative [`acquire`](Self::acquire): a contended acquire registers `task`
    /// as a waiter and yields the scheduling token instead of parking the carrier;
    /// the next holder among the waiters is whichever the executor picks first.
    pub fn acquire_coop(&self, exec: &DetExecutor, task: usize, now_sim: SimNanos) -> SimNanos {
        loop {
            let mut inner = self.inner.lock();
            if !inner.held {
                inner.held = true;
                return inner.last_release_sim;
            }
            inner.waiters.push(task);
            drop(inner);
            exec.block_internal(task, now_sim);
        }
    }

    /// Cooperative [`release`](Self::release): unblocks every registered waiter (they
    /// re-contend; the executor picks the winner deterministically).
    ///
    /// # Panics
    /// If the lock is not held.
    pub fn release_coop(&self, exec: &DetExecutor, now_sim: SimNanos) {
        let mut inner = self.inner.lock();
        assert!(inner.held, "releasing a lock that is not held");
        inner.held = false;
        inner.last_release_sim = inner.last_release_sim.max(now_sim);
        let waiters = std::mem::take(&mut inner.waiters);
        drop(inner);
        for w in waiters {
            exec.unblock(w);
        }
    }
}

impl Default for RawLock {
    fn default() -> Self {
        RawLock::new()
    }
}

/// Table of dynamically registered locks.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: RwLock<Vec<Arc<RawLock>>>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a fresh lock.
    pub fn register(&self) -> LockId {
        let mut locks = self.locks.write();
        locks.push(Arc::new(RawLock::new()));
        LockId((locks.len() - 1) as u32)
    }

    /// Fetch a lock.
    pub fn get(&self, id: LockId) -> Arc<RawLock> {
        self.locks.read()[id.index()].clone()
    }

    /// Number of registered locks.
    pub fn len(&self) -> usize {
        self.locks.read().len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
struct BarrierInner {
    count: usize,
    generation: u64,
    /// Max simulated arrival time of the current generation.
    max_sim: SimNanos,
    /// Release time of the *previous* generation (what leavers floor to).
    release_sim: SimNanos,
    /// Executor tasks parked on a cooperative wait of the current generation.
    waiters: Vec<usize>,
}

/// A reusable global barrier reconciling simulated clocks.
#[derive(Debug)]
pub struct SimBarrier {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

impl SimBarrier {
    /// A fresh barrier.
    pub fn new() -> Self {
        SimBarrier {
            inner: Mutex::new(BarrierInner {
                count: 0,
                generation: 0,
                max_sim: 0,
                release_sim: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Wait for `parties` participants. `now_sim` is the caller's simulated arrival
    /// time; `extra_ns` is the barrier's own cost (network + bookkeeping) added once.
    /// Returns the simulated release time all participants leave at.
    pub fn wait(&self, parties: usize, now_sim: SimNanos, extra_ns: SimNanos) -> SimNanos {
        assert!(parties > 0, "barrier needs at least one party");
        let mut inner = self.inner.lock();
        inner.max_sim = inner.max_sim.max(now_sim);
        inner.count += 1;
        if inner.count == parties {
            inner.release_sim = inner.max_sim + extra_ns;
            inner.count = 0;
            inner.max_sim = 0;
            inner.generation += 1;
            let release = inner.release_sim;
            drop(inner);
            self.cv.notify_all();
            release
        } else {
            let gen = inner.generation;
            while inner.generation == gen {
                self.cv.wait(&mut inner);
            }
            inner.release_sim
        }
    }

    /// Cooperative [`wait`](Self::wait): non-final arrivals register as waiters and
    /// yield the scheduling token; the final arrival computes the release time and
    /// unblocks them all. A generation cannot be overwritten before every waiter of
    /// the previous one has read its release time, because those waiters must pass
    /// through the next `wait_coop` themselves for the count to fill again.
    pub fn wait_coop(
        &self,
        exec: &DetExecutor,
        task: usize,
        parties: usize,
        now_sim: SimNanos,
        extra_ns: SimNanos,
    ) -> SimNanos {
        assert!(parties > 0, "barrier needs at least one party");
        let mut inner = self.inner.lock();
        inner.max_sim = inner.max_sim.max(now_sim);
        inner.count += 1;
        if inner.count == parties {
            inner.release_sim = inner.max_sim + extra_ns;
            inner.count = 0;
            inner.max_sim = 0;
            inner.generation += 1;
            let release = inner.release_sim;
            let waiters = std::mem::take(&mut inner.waiters);
            drop(inner);
            for w in waiters {
                exec.unblock(w);
            }
            release
        } else {
            let gen = inner.generation;
            loop {
                inner.waiters.push(task);
                drop(inner);
                exec.block_internal(task, now_sim);
                inner = self.inner.lock();
                if inner.generation != gen {
                    break;
                }
            }
            inner.release_sim
        }
    }
}

impl Default for SimBarrier {
    fn default() -> Self {
        SimBarrier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn notice_board_cursors_are_independent() {
        let board = NoticeBoard::new(2);
        board.post([WriteNotice {
            obj: ObjectId(1),
            version: 1,
        }]);
        assert_eq!(board.take_new(0).len(), 1);
        board.post([WriteNotice {
            obj: ObjectId(2),
            version: 1,
        }]);
        assert_eq!(board.take_new(0).len(), 1, "only the new notice");
        assert_eq!(board.take_new(1).len(), 2, "node 1 sees both");
        assert!(board.take_new(1).is_empty());
        assert_eq!(board.len(), 2);
    }

    #[test]
    fn raw_lock_mutual_exclusion_and_sim_handoff() {
        let lock = Arc::new(RawLock::new());
        let prev = lock.acquire();
        assert_eq!(prev, 0);
        lock.release(500);
        assert_eq!(lock.acquire(), 500, "acquirer inherits release time");
        lock.release(100);
        // Release times never regress even if a clock was behind.
        assert_eq!(lock.acquire(), 500);
        lock.release(600);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn double_release_panics() {
        let lock = RawLock::new();
        lock.release(0);
    }

    #[test]
    fn raw_lock_serializes_threads() {
        let lock = Arc::new(RawLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..500 {
                        lock.acquire();
                        let mut c = counter.lock();
                        let v = *c;
                        // A data race here would be caught by lost updates.
                        *c = v + 1;
                        drop(c);
                        lock.release(0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 500);
    }

    #[test]
    fn barrier_releases_at_max_plus_extra() {
        let barrier = Arc::new(SimBarrier::new());
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let b = Arc::clone(&barrier);
                thread::spawn(move || b.wait(4, i * 100, 50))
            })
            .collect();
        let releases: Vec<SimNanos> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(releases.iter().all(|&r| r == 300 + 50), "{releases:?}");
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let barrier = Arc::new(SimBarrier::new());
        for round in 0..3u64 {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&barrier);
                    thread::spawn(move || b.wait(3, round * 10, 0))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), round * 10);
            }
        }
    }

    #[test]
    fn lock_table_registration() {
        let t = LockTable::new();
        let a = t.register();
        let b = t.register();
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        t.get(a).acquire();
        t.get(a).release(1);
    }
}
