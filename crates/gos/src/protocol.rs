//! The Global Object Space protocol engine.
//!
//! [`Gos`] ties together the class registry, the global object table, per-thread heaps
//! (cache copies live "in the local heap of the current thread", Section II.A), the
//! notice board, locks and the barrier into the home-based lazy release consistency
//! protocol the paper's profiling techniques instrument:
//!
//! * **Access check** — every [`Gos::read`]/[`Gos::write`] models the JIT-inlined 2-bit
//!   state check. `Home`/`Valid` states proceed at check cost; `Invalid` faults the
//!   object from its home (an accounted `ObjFetch`/`ObjData` round trip);
//!   `FalseInvalid` traps into the service routine, is cancelled back to the real
//!   state, and is reported in the returned [`AccessOutcome`] so the profiler can log
//!   the access.
//! * **Release** — [`Gos::flush_thread`] diffs the thread's dirty cache copies against
//!   their twins, ships the diffs home (batched per home node), bumps home versions
//!   and posts write notices. Called from `lock_release` and `barrier_wait`.
//! * **Acquire** — [`Gos::lock_acquire`]/[`Gos::barrier_wait`] apply all pending write
//!   notices, invalidating the thread's stale cache copies.
//!
//! The per-thread at-most-once property falls out: within one interval a (thread,
//! object) pair faults at most once, so logging on faults is cheap — exactly what
//! Section II.A exploits, with [`Gos::set_false_invalid`] re-arming traps per interval.
//!
//! The acting thread is identified by the [`ClockHandle`] passed to every operation
//! (one clock per thread); the node it currently runs on is passed explicitly because
//! thread migration changes it.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jessy_net::{
    ClockHandle, Fabric, FaultPlan, LatencyModel, MsgClass, NetError, NetworkStats, NodeId,
    ThreadId,
};

use crate::class::{ClassId, ClassRegistry};
use crate::costs::CostModel;
use crate::heap::{AccessEntry, ThreadSpace};
use crate::object::{AccessState, ObjectCore, ObjectId, RealState, OBJ_HEADER_BYTES};
use crate::sync::{LockId, LockTable, NoticeBoard, SimBarrier, WriteNotice, NOTICE_BYTES};
use crate::twin::Diff;

/// Fixed wire size of small control requests (lock/fetch/barrier bodies).
const CTRL_BYTES: usize = 16;

/// Which consistency discipline scopes the write notices — the two interval-based
/// relaxed models the paper names (Section III: "our definition is specific to relaxed
/// memory models like LRC and ScC, which have the concept of intervals and the
/// at-most-once property").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyModel {
    /// Home-based LRC with a single global notice history: a lock acquire applies
    /// *all* pending notices (conservative; what the main experiments run).
    GlobalHlrc,
    /// Scope consistency (Iftode et al., SPAA'96): notices produced inside a lock's
    /// critical section attach to that lock; an acquire applies only that lock's
    /// history (barriers remain global). Fewer invalidations, weaker visibility.
    Scoped,
}

/// Configuration of a [`Gos`] instance.
#[derive(Debug, Clone)]
pub struct GosConfig {
    /// Number of cluster nodes.
    pub n_nodes: usize,
    /// Number of application threads (per-thread heaps and notice cursors).
    pub n_threads: usize,
    /// Network cost model.
    pub latency: LatencyModel,
    /// CPU cost model.
    pub costs: CostModel,
    /// Connectivity-based object prefetching: on a real fault, objects reachable
    /// within this many reference hops ride along on the reply (0 disables — the
    /// "path-analytic object prefetching" optimization the paper's evaluation runs
    /// with; the path analysis itself is the companion ISPAN'09 paper).
    pub prefetch_depth: u32,
    /// Notice-scoping discipline (LRC-style global history vs scope consistency).
    pub consistency: ConsistencyModel,
    /// Chaos schedule for the interconnect; `None` (and a plan with all
    /// probabilities zero) runs the fabric fault-free.
    pub faults: Option<FaultPlan>,
}

impl Default for GosConfig {
    fn default() -> Self {
        GosConfig {
            n_nodes: 8,
            n_threads: 8,
            latency: LatencyModel::fast_ethernet(),
            costs: CostModel::pentium4_2ghz(),
            prefetch_depth: 0,
            consistency: ConsistencyModel::GlobalHlrc,
            faults: None,
        }
    }
}

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read access bytecode (getfield / aload etc.).
    Read,
    /// Write access bytecode (putfield / astore etc.).
    Write,
}

/// Everything the profiler needs to know about one access, returned by
/// [`Gos::read`]/[`Gos::write`]. The GOS itself never logs — decoupling the substrate
/// from the contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// The object accessed.
    pub obj: ObjectId,
    /// Its class.
    pub class: ClassId,
    /// Its home node.
    pub home: NodeId,
    /// Read or write.
    pub kind: AccessKind,
    /// The object's sampled tag at access time.
    pub sampled: bool,
    /// The access trapped on a profiler-armed false-invalid state.
    pub false_invalid: bool,
    /// The access took a real fault (cold or invalidated cache).
    pub real_fault: bool,
    /// This is the thread's first-ever touch of the object (its access entry was just
    /// created). For objects homed at the thread's node this is the only trap the
    /// first interval gets — the profiler logs it like a correlation fault, after
    /// which normal interval arming takes over.
    pub first_touch: bool,
    /// Payload bytes fetched from the home (0 on hits).
    pub fetched_bytes: usize,
    /// Full payload size in bytes.
    pub payload_bytes: usize,
    /// Array instance? (per-element sampling applies)
    pub is_array: bool,
    /// Sequence number of the object / first array element.
    pub elem_seq0: u64,
    /// Element count (1 for scalars).
    pub len_elems: u32,
    /// Per-instance (scalar) or per-element (array) size in bytes.
    pub unit_bytes: u32,
}

impl AccessOutcome {
    /// Did this access trap into the GOS service routine at all?
    #[inline]
    pub fn faulted(&self) -> bool {
        self.false_invalid || self.real_fault
    }

    /// Should the profiler consider logging this access? (Any service-routine entry:
    /// fault, correlation fault, or first touch.)
    #[inline]
    pub fn loggable(&self) -> bool {
        self.false_invalid || self.real_fault || self.first_touch
    }
}

/// Aggregate protocol event counters (diagnostics and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolCounters {
    /// Real object faults served (cold misses + invalidations).
    pub real_faults: u64,
    /// False-invalid traps served (correlation faults, Section II.A).
    pub false_invalid_faults: u64,
    /// Total accesses checked.
    pub accesses: u64,
    /// Diffs shipped home.
    pub diffs_flushed: u64,
    /// Write notices applied (cache invalidations checked).
    pub notices_applied: u64,
    /// Object homes relocated.
    pub home_migrations: u64,
    /// Objects moved by connectivity prefetching (riding on fault replies).
    pub objects_prefetched: u64,
}

#[derive(Debug, Default)]
struct Counters {
    real_faults: AtomicU64,
    false_invalid_faults: AtomicU64,
    accesses: AtomicU64,
    diffs_flushed: AtomicU64,
    notices_applied: AtomicU64,
    home_migrations: AtomicU64,
    objects_prefetched: AtomicU64,
}

/// The Global Object Space.
pub struct Gos {
    config: GosConfig,
    classes: ClassRegistry,
    fabric: Fabric,
    objects: RwLock<Vec<Arc<ObjectCore>>>,
    by_class: RwLock<Vec<Vec<ObjectId>>>,
    spaces: Vec<ThreadSpace>,
    dirty: Vec<parking_lot::Mutex<Vec<ObjectId>>>,
    notices: NoticeBoard,
    lock_boards: RwLock<Vec<Arc<NoticeBoard>>>,
    locks: LockTable,
    barrier: SimBarrier,
    counters: Counters,
}

impl Gos {
    /// Build a GOS for `config.n_nodes` nodes and `config.n_threads` threads.
    ///
    /// Panics on an invalid topology or fault plan; use [`Gos::try_new`] to handle
    /// those as typed errors.
    pub fn new(config: GosConfig) -> Self {
        Self::try_new(config).expect("invalid GOS configuration")
    }

    /// Build a GOS, surfacing an empty cluster or an invalid fault plan as a
    /// [`NetError`] instead of a panic.
    pub fn try_new(config: GosConfig) -> Result<Self, NetError> {
        assert!(config.n_threads > 0, "GOS needs at least one thread");
        let fabric = match &config.faults {
            Some(plan) => Fabric::with_faults(config.n_nodes, config.latency, plan.clone())?,
            None => Fabric::new(config.n_nodes, config.latency)?,
        };
        Ok(Gos {
            classes: ClassRegistry::new(),
            fabric,
            objects: RwLock::new(Vec::new()),
            by_class: RwLock::new(Vec::new()),
            spaces: (0..config.n_threads)
                .map(|i| ThreadSpace::new(ThreadId(i as u32)))
                .collect(),
            dirty: (0..config.n_threads)
                .map(|_| parking_lot::Mutex::new(Vec::new()))
                .collect(),
            notices: NoticeBoard::new(config.n_threads),
            lock_boards: RwLock::new(Vec::new()),
            locks: LockTable::new(),
            barrier: SimBarrier::new(),
            counters: Counters::default(),
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &GosConfig {
        &self.config
    }

    /// The class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// The CPU cost model.
    pub fn costs(&self) -> &CostModel {
        &self.config.costs
    }

    /// The simulated interconnect (for traffic snapshots).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Snapshot of network traffic so far.
    pub fn net_stats(&self) -> NetworkStats {
        self.fabric.stats()
    }

    /// Traffic counters of one directed link (diagnostics).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> jessy_net::fabric::LinkStats {
        self.fabric.link(from, to)
    }

    /// Snapshot of protocol event counters.
    pub fn proto_counters(&self) -> ProtocolCounters {
        ProtocolCounters {
            real_faults: self.counters.real_faults.load(Ordering::Relaxed),
            false_invalid_faults: self.counters.false_invalid_faults.load(Ordering::Relaxed),
            accesses: self.counters.accesses.load(Ordering::Relaxed),
            diffs_flushed: self.counters.diffs_flushed.load(Ordering::Relaxed),
            notices_applied: self.counters.notices_applied.load(Ordering::Relaxed),
            home_migrations: self.counters.home_migrations.load(Ordering::Relaxed),
            objects_prefetched: self.counters.objects_prefetched.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------ allocation

    /// Allocate a scalar instance of `class` homed at `node`, optionally initializing
    /// its payload. Draws one per-class sequence number. The sampled tag starts
    /// `false`; the profiler decides and calls [`ObjectCore::set_sampled`].
    pub fn alloc_scalar(
        &self,
        node: NodeId,
        class: ClassId,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        let info = self.classes.info(class);
        assert!(!info.is_array, "use alloc_array for array classes");
        let seq = self.classes.draw_seq(class, 1);
        self.alloc_inner(node, class, info.unit_words, seq, false, clock, init)
    }

    /// Allocate an array of `len_elems` elements of `class` homed at `node`. Draws
    /// `len_elems` consecutive sequence numbers (Section II.B.3).
    pub fn alloc_array(
        &self,
        node: NodeId,
        class: ClassId,
        len_elems: u32,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        assert!(len_elems > 0, "zero-length arrays not supported");
        let info = self.classes.info(class);
        assert!(info.is_array, "use alloc_scalar for scalar classes");
        let seq0 = self.classes.draw_seq(class, len_elems as u64);
        let words = info.unit_words * len_elems;
        self.alloc_inner(node, class, words, seq0, true, clock, init)
    }

    #[allow(clippy::too_many_arguments)]
    fn alloc_inner(
        &self,
        node: NodeId,
        class: ClassId,
        len_words: u32,
        seq0: u64,
        is_array: bool,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        self.assert_node(node);
        clock.spend(self.config.costs.alloc_ns);
        let mut objects = self.objects.write();
        let id = ObjectId(objects.len() as u32);
        let core = Arc::new(ObjectCore::new(id, class, node, len_words, seq0, is_array, false));
        if let Some(init) = init {
            core.with_home_data(|d| {
                assert_eq!(init.len(), d.len(), "init length mismatch for {id}");
                d.copy_from_slice(init);
            });
        }
        objects.push(Arc::clone(&core));
        drop(objects);
        let mut by_class = self.by_class.write();
        if by_class.len() <= class.index() {
            by_class.resize_with(class.index() + 1, Vec::new);
        }
        by_class[class.index()].push(id);
        core
    }

    /// Look up an object by id.
    pub fn object(&self, id: ObjectId) -> Arc<ObjectCore> {
        self.objects.read()[id.index()].clone()
    }

    /// Number of objects ever allocated.
    pub fn n_objects(&self) -> usize {
        self.objects.read().len()
    }

    /// Visit every object of `class` (resampling walks after a rate change).
    pub fn for_each_object_of_class(&self, class: ClassId, mut f: impl FnMut(&Arc<ObjectCore>)) {
        let ids: Vec<ObjectId> = match self.by_class.read().get(class.index()) {
            Some(v) => v.clone(),
            None => return,
        };
        let objects = self.objects.read();
        for id in ids {
            f(&objects[id.index()]);
        }
    }

    /// Visit every object.
    pub fn for_each_object(&self, mut f: impl FnMut(&Arc<ObjectCore>)) {
        let objects = self.objects.read();
        for core in objects.iter() {
            f(core);
        }
    }

    // ------------------------------------------------------------------ access path

    /// Read access by the clock's thread running on `node`: runs `f` over the
    /// (possibly freshly faulted) payload.
    pub fn read<R>(
        &self,
        node: NodeId,
        obj: ObjectId,
        clock: &ClockHandle,
        f: impl FnOnce(&[f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(node, obj, AccessKind::Read, clock, |data| f(data))
    }

    /// Write access: runs `f` over the mutable payload; creates the twin on the first
    /// write of the interval and marks the entry dirty for the next flush.
    pub fn write<R>(
        &self,
        node: NodeId,
        obj: ObjectId,
        clock: &ClockHandle,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(node, obj, AccessKind::Write, clock, |data| f(data))
    }

    fn access<R>(
        &self,
        node: NodeId,
        obj: ObjectId,
        kind: AccessKind,
        clock: &ClockHandle,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.assert_node(node);
        let thread = clock.thread();
        let costs = &self.config.costs;
        clock.spend(costs.access_check_ns);
        self.counters.accesses.fetch_add(1, Ordering::Relaxed);

        let core = self.object(obj);
        let info = self.classes.info(core.class);
        let len_elems = if core.is_array {
            core.len_words / info.unit_words
        } else {
            1
        };
        let mut outcome = AccessOutcome {
            obj,
            class: core.class,
            home: core.home(),
            kind,
            sampled: core.is_sampled(),
            false_invalid: false,
            real_fault: false,
            first_touch: false,
            fetched_bytes: 0,
            payload_bytes: core.payload_bytes(),
            is_array: core.is_array,
            elem_seq0: core.elem_seq0,
            len_elems,
            unit_bytes: info.unit_words * 8,
        };

        let space = &self.spaces[thread.index()];
        let entry = match space.entry(obj) {
            Some(e) => e,
            None => {
                outcome.first_touch = true;
                space.entry_or_insert(obj, || {
                    if core.home() == node {
                        AccessEntry::home_resident()
                    } else {
                        AccessEntry::absent()
                    }
                })
            }
        };
        let mut e = entry.lock();

        if outcome.first_touch && e.real == RealState::HomeResident {
            // First touch of a home-resident object enters the service routine once
            // (entry initialization + the logging opportunity).
            clock.spend(costs.fault_service_ns);
        }

        if e.state == AccessState::FalseInvalid {
            // Correlation fault: enter the service routine, cancel back to real state.
            outcome.false_invalid = true;
            clock.spend(costs.fault_service_ns);
            self.counters.false_invalid_faults.fetch_add(1, Ordering::Relaxed);
            e.cancel_false_invalid();
        }

        if e.state == AccessState::Invalid {
            // Real object fault: fetch the latest copy from home.
            outcome.real_fault = true;
            clock.spend(costs.fault_service_ns);
            self.counters.real_faults.fetch_add(1, Ordering::Relaxed);
            let bytes = core.payload_bytes();
            self.fabric.charge_round_trip(
                node,
                core.home(),
                MsgClass::ObjFetch,
                CTRL_BYTES,
                MsgClass::ObjData,
                bytes + OBJ_HEADER_BYTES,
                clock,
            );
            let (data, version) = core.with_home_data(|d| (d.clone(), core.version()));
            e.data = Some(data);
            e.cached_version = version;
            e.state = AccessState::Valid;
            e.real = RealState::CacheValid;
            outcome.fetched_bytes = bytes;
            if self.config.prefetch_depth > 0 {
                // Connectivity prefetch: same-home objects within `prefetch_depth`
                // reference hops ride along on the reply. Must not touch `e`'s lock
                // again — the helper takes only other objects' entries.
                drop(e);
                self.connectivity_prefetch(thread, node, &core, clock);
                e = entry.lock();
            }
        }

        let result = match e.real {
            RealState::HomeResident => {
                if kind == AccessKind::Write && !e.dirty {
                    e.dirty = true;
                    self.dirty[thread.index()].lock().push(obj);
                }
                core.with_home_data(|d| f(d))
            }
            RealState::CacheValid => {
                if kind == AccessKind::Write {
                    if e.twin.is_none() {
                        let data = e.data.as_ref().expect("valid cache without data");
                        clock.spend(costs.twin_ns(data.len()));
                        e.twin = Some(data.clone());
                    }
                    if !e.dirty {
                        e.dirty = true;
                        self.dirty[thread.index()].lock().push(obj);
                    }
                }
                f(e.data.as_mut().expect("valid cache without data"))
            }
            RealState::CacheInvalid => unreachable!("fault path must have validated the cache"),
        };
        (result, outcome)
    }

    /// Walk `root`'s reference neighbourhood (up to `prefetch_depth` hops) and install
    /// cache copies of same-home objects the thread does not already hold. The extra
    /// payload is accounted as a batched `Prefetch` message from the home.
    fn connectivity_prefetch(
        &self,
        thread: ThreadId,
        node: NodeId,
        root: &Arc<ObjectCore>,
        clock: &ClockHandle,
    ) {
        let home = root.home();
        let mut frontier = root.refs();
        let mut bytes = 0usize;
        let mut moved = 0u64;
        for _hop in 0..self.config.prefetch_depth {
            let mut next = Vec::new();
            for obj in frontier.drain(..) {
                let core = self.object(obj);
                if core.home() != home || home == node {
                    continue; // cross-home neighbours are not on this reply path
                }
                let entry = self.spaces[thread.index()].entry_or_insert(obj, AccessEntry::absent);
                let mut pe = entry.lock();
                if pe.real == RealState::CacheValid || pe.real == RealState::HomeResident {
                    continue;
                }
                let (data, version) = core.with_home_data(|d| (d.clone(), core.version()));
                pe.data = Some(data);
                pe.cached_version = version;
                pe.state = AccessState::Valid;
                pe.real = RealState::CacheValid;
                bytes += core.payload_bytes() + OBJ_HEADER_BYTES;
                moved += 1;
                next.extend(core.refs());
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if bytes > 0 {
            self.fabric.send(home, node, MsgClass::Prefetch, bytes, clock);
            self.counters.objects_prefetched.fetch_add(moved, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------ profiling hooks

    /// Arm false-invalid traps on `objs` in `thread`'s heap (interval-open,
    /// Section II.A). Only entries whose real state holds usable data are armed; an
    /// already-invalid cache will take a real fault (and be loggable) anyway. Returns
    /// how many traps were armed.
    pub fn set_false_invalid(
        &self,
        thread: ThreadId,
        objs: impl IntoIterator<Item = ObjectId>,
    ) -> usize {
        let mut armed = 0;
        for obj in objs {
            if let Some(entry) = self.spaces[thread.index()].entry(obj) {
                let mut e = entry.lock();
                match e.real {
                    RealState::HomeResident | RealState::CacheValid => {
                        e.state = AccessState::FalseInvalid;
                        armed += 1;
                    }
                    RealState::CacheInvalid => {}
                }
            }
        }
        armed
    }

    /// The access state of `obj` as seen by `thread` (tests/diagnostics).
    pub fn access_state(&self, thread: ThreadId, obj: ObjectId) -> Option<AccessState> {
        self.spaces[thread.index()].entry(obj).map(|e| e.lock().state)
    }

    // ------------------------------------------------------------------ release/acquire

    /// Flush every dirty copy of the clock's thread: diff against twins, ship diffs
    /// home from `node` (one batched `DiffUpdate` per home node), bump versions and
    /// post write notices (to the global history — barrier/release semantics).
    /// Returns the number of objects flushed.
    pub fn flush_thread(&self, node: NodeId, clock: &ClockHandle) -> usize {
        self.flush_thread_scoped(node, clock, None)
    }

    fn flush_thread_scoped(
        &self,
        node: NodeId,
        clock: &ClockHandle,
        scope: Option<LockId>,
    ) -> usize {
        self.assert_node(node);
        let thread = clock.thread();
        let dirty: Vec<ObjectId> = std::mem::take(&mut *self.dirty[thread.index()].lock());
        if dirty.is_empty() {
            return 0;
        }
        let costs = &self.config.costs;
        let mut notices = Vec::new();
        let mut per_home: Vec<usize> = vec![0; self.config.n_nodes];
        let mut flushed = 0;

        for obj in dirty {
            let entry = match self.spaces[thread.index()].entry(obj) {
                Some(e) => e,
                None => continue, // cleared by a migration
            };
            let mut e = entry.lock();
            if !e.dirty {
                continue;
            }
            e.dirty = false;
            let core = self.object(obj);
            match e.real {
                RealState::HomeResident => {
                    let v = core.bump_version();
                    notices.push(WriteNotice { obj, version: v });
                    flushed += 1;
                }
                RealState::CacheValid => {
                    let twin = e.twin.take().expect("dirty cache without twin");
                    let data = e.data.as_ref().expect("dirty cache without data");
                    clock.spend(costs.diff_ns(data.len()));
                    let diff = Diff::compute(&twin, data);
                    if !diff.is_empty() {
                        clock.spend(costs.apply_ns(diff.changed_words()));
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        e.cached_version = v;
                        notices.push(WriteNotice { obj, version: v });
                        per_home[core.home().index()] += diff.wire_bytes() + 8;
                        self.counters.diffs_flushed.fetch_add(1, Ordering::Relaxed);
                        flushed += 1;
                    }
                }
                RealState::CacheInvalid => {
                    // Invalidated (and force-flushed) by a concurrent notice application.
                }
            }
        }

        for (home, bytes) in per_home.iter().enumerate() {
            if *bytes > 0 {
                self.fabric
                    .send(node, NodeId(home as u16), MsgClass::DiffUpdate, *bytes, clock);
            }
        }
        match (self.config.consistency, scope) {
            (ConsistencyModel::Scoped, Some(lock)) => {
                // Scope consistency: the critical section's writes attach to its lock.
                self.lock_boards.read()[lock.index()].post(notices);
            }
            _ => self.notices.post(notices),
        }
        flushed
    }

    /// Apply every pending write notice for the clock's thread, invalidating stale
    /// caches. A dirty copy hit by a notice is force-flushed (from `node`) first so no
    /// writes are lost. Returns the number of notices processed.
    pub fn apply_notices(&self, node: NodeId, clock: &ClockHandle) -> usize {
        let board = &self.notices;
        self.apply_notices_from(board, node, clock)
    }

    fn apply_notices_from(&self, board: &NoticeBoard, node: NodeId, clock: &ClockHandle) -> usize {
        self.assert_node(node);
        let thread = clock.thread();
        let costs = &self.config.costs;
        let new = board.take_new(thread.index());
        let count = new.len();
        if count == 0 {
            return 0;
        }
        clock.spend(costs.notice_apply_ns * count as u64);
        self.counters
            .notices_applied
            .fetch_add(count as u64, Ordering::Relaxed);
        let mut follow_up = Vec::new();
        for notice in new {
            let entry = match self.spaces[thread.index()].entry(notice.obj) {
                Some(e) => e,
                None => continue,
            };
            let mut e = entry.lock();
            if e.real == RealState::HomeResident && self.object(notice.obj).home() != node {
                // The home migrated away from under this thread: its entry becomes an
                // ordinary (invalid) cache entry and the next access faults normally.
                e.state = AccessState::Invalid;
                e.real = RealState::CacheInvalid;
                e.data = None;
                e.twin = None;
                e.dirty = false;
                continue;
            }
            if e.real != RealState::CacheValid || e.cached_version >= notice.version {
                continue;
            }
            if e.dirty {
                // Unflushed writes race with the invalidation: flush before dropping.
                e.dirty = false;
                let core = self.object(notice.obj);
                if let Some(twin) = e.twin.take() {
                    let data = e.data.as_ref().expect("dirty cache without data");
                    clock.spend(costs.diff_ns(data.len()));
                    let diff = Diff::compute(&twin, data);
                    if !diff.is_empty() {
                        clock.spend(costs.apply_ns(diff.changed_words()));
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        follow_up.push(WriteNotice {
                            obj: notice.obj,
                            version: v,
                        });
                        self.fabric.send(
                            node,
                            core.home(),
                            MsgClass::DiffUpdate,
                            diff.wire_bytes() + 8,
                            clock,
                        );
                        self.counters.diffs_flushed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            e.state = AccessState::Invalid;
            e.real = RealState::CacheInvalid;
            e.data = None;
            e.twin = None;
        }
        self.notices.post(follow_up);
        count
    }

    // ------------------------------------------------------------------ sync API

    /// Register a distributed lock. The manager node is `id % n_nodes`.
    pub fn register_lock(&self) -> LockId {
        let id = self.locks.register();
        self.lock_boards
            .write()
            .push(Arc::new(NoticeBoard::new(self.config.n_threads)));
        id
    }

    fn lock_manager(&self, id: LockId) -> NodeId {
        NodeId((id.index() % self.config.n_nodes) as u16)
    }

    /// Acquire a distributed lock from `node`: round trip to the manager, inherit the
    /// previous holder's simulated release time, then apply pending write notices
    /// (piggybacked on the grant). Returns the number of notices applied.
    pub fn lock_acquire(&self, id: LockId, node: NodeId, clock: &ClockHandle) -> usize {
        self.assert_node(node);
        clock.spend(self.config.costs.lock_local_ns);
        let prev_release = self.locks.get(id).acquire();
        clock.raise_to(prev_release);
        let applied = match self.config.consistency {
            ConsistencyModel::GlobalHlrc => self.apply_notices(node, clock),
            ConsistencyModel::Scoped => {
                let board = self.lock_boards.read()[id.index()].clone();
                self.apply_notices_from(&board, node, clock)
            }
        };
        let manager = self.lock_manager(id);
        self.fabric.charge_round_trip(
            node,
            manager,
            MsgClass::LockAcquire,
            CTRL_BYTES,
            MsgClass::LockGrant,
            CTRL_BYTES + NOTICE_BYTES * applied,
            clock,
        );
        applied
    }

    /// Release a distributed lock from `node`: flush the thread's dirty copies (the
    /// interval ends here), notify the manager, record the simulated release time.
    pub fn lock_release(&self, id: LockId, node: NodeId, clock: &ClockHandle) {
        self.assert_node(node);
        self.flush_thread_scoped(node, clock, Some(id));
        clock.spend(self.config.costs.lock_local_ns);
        let manager = self.lock_manager(id);
        self.fabric
            .send(node, manager, MsgClass::LockRelease, CTRL_BYTES, clock);
        self.locks.get(id).release(clock.now());
    }

    /// Enter the global barrier as one of `parties` participants: flush (release
    /// semantics), synchronize real threads and simulated clocks, apply notices
    /// (acquire semantics). Returns the number of notices applied.
    pub fn barrier_wait(&self, node: NodeId, parties: usize, clock: &ClockHandle) -> usize {
        self.assert_node(node);
        self.flush_thread(node, clock);
        self.fabric
            .send(node, NodeId::MASTER, MsgClass::BarrierEnter, CTRL_BYTES, clock);
        let hdr = MsgClass::BarrierRelease.header_bytes();
        let extra =
            self.config.costs.barrier_local_ns + self.config.latency.one_way_ns(CTRL_BYTES + hdr);
        let release_sim = self.barrier.wait(parties, clock.now(), extra);
        clock.raise_to(release_sim);
        let applied = self.apply_notices(node, clock);
        // The release broadcast carries the notices this thread just applied.
        self.fabric.account_async(
            NodeId::MASTER,
            node,
            MsgClass::BarrierRelease,
            CTRL_BYTES + NOTICE_BYTES * applied,
        );
        applied
    }

    // ------------------------------------------------------------------ home migration

    /// Relocate `obj`'s home to `dest` (the object home-migration optimization the
    /// paper's evaluation runs with; see also its Section II: "Relocating home of one
    /// object for locality of one thread may sacrifice locality of other threads").
    ///
    /// The home payload transfer is accounted (`ObjData` old-home → new-home) and a
    /// write notice is posted so every cached copy revalidates against the new home.
    /// Threads holding a stale home-resident view are repaired when they next apply
    /// notices. Returns `false` if the home was already `dest`.
    pub fn migrate_home(&self, obj: ObjectId, dest: NodeId, clock: &ClockHandle) -> bool {
        self.assert_node(dest);
        let core = self.object(obj);
        let old = core.home();
        if old == dest {
            return false;
        }
        self.fabric.send(
            old,
            dest,
            MsgClass::ObjData,
            core.payload_bytes() + OBJ_HEADER_BYTES,
            clock,
        );
        core.set_home(dest);
        let v = core.bump_version();
        self.notices.post([WriteNotice { obj, version: v }]);
        self.counters.home_migrations.fetch_add(1, Ordering::Relaxed);
        true
    }

    // ------------------------------------------------------------------ migration support

    /// Prefetch `objs` into the clock's thread's heap at `node` (the sticky-set
    /// prefetch accompanying a migration, Section III). Objects homed at `node` or
    /// already valid are skipped. Data is accounted as batched `Prefetch` messages,
    /// one per home node, charged to `clock`. Returns the payload bytes moved.
    pub fn prefetch_into(
        &self,
        node: NodeId,
        objs: impl IntoIterator<Item = ObjectId>,
        clock: &ClockHandle,
    ) -> usize {
        self.assert_node(node);
        let thread = clock.thread();
        let mut per_home: Vec<usize> = vec![0; self.config.n_nodes];
        for obj in objs {
            let core = self.object(obj);
            if core.home() == node {
                continue;
            }
            let entry = self.spaces[thread.index()].entry_or_insert(obj, AccessEntry::absent);
            let mut e = entry.lock();
            if e.real == RealState::CacheValid {
                continue;
            }
            let (data, version) = core.with_home_data(|d| (d.clone(), core.version()));
            e.data = Some(data);
            e.cached_version = version;
            e.state = AccessState::Valid;
            e.real = RealState::CacheValid;
            per_home[core.home().index()] += core.payload_bytes() + OBJ_HEADER_BYTES;
        }
        let mut total = 0;
        for (home, bytes) in per_home.iter().enumerate() {
            if *bytes > 0 {
                total += *bytes;
                self.fabric
                    .send(NodeId(home as u16), node, MsgClass::Prefetch, *bytes, clock);
            }
        }
        total
    }

    /// Drop the clock's thread's entire local heap (it migrated to a new node and its
    /// cache copies stayed behind). Unflushed writes are flushed from `from_node`
    /// first so nothing is lost.
    pub fn drop_thread_cache(&self, from_node: NodeId, clock: &ClockHandle) {
        self.flush_thread(from_node, clock);
        self.spaces[clock.thread().index()].clear();
    }

    fn assert_node(&self, n: NodeId) {
        assert!(
            n.index() < self.config.n_nodes,
            "node {n} out of range ({} nodes)",
            self.config.n_nodes
        );
    }
}

impl std::fmt::Debug for Gos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gos")
            .field("n_nodes", &self.config.n_nodes)
            .field("n_threads", &self.config.n_threads)
            .field("objects", &self.n_objects())
            .field("classes", &self.classes.len())
            .finish()
    }
}
