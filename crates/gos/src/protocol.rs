//! The Global Object Space protocol engine.
//!
//! [`Gos`] ties together the class registry, the global object table, per-thread heaps
//! (cache copies live "in the local heap of the current thread", Section II.A), the
//! notice board, locks and the barrier into the home-based lazy release consistency
//! protocol the paper's profiling techniques instrument:
//!
//! * **Access check** — every [`Gos::read`]/[`Gos::write`] models the JIT-inlined 2-bit
//!   state check. `Home`/`Valid` states proceed at check cost; `Invalid` faults the
//!   object from its home (an accounted `ObjFetch`/`ObjData` round trip); a live
//!   false-invalid trap (armed epoch-lazily, see [`crate::heap`]) enters the service
//!   routine, is cancelled back to the real state, and is reported in the returned
//!   [`AccessOutcome`] so the profiler can log the access.
//! * **Release** — [`Gos::flush_thread`] diffs the thread's dirty cache copies against
//!   their twins, ships the diffs home (batched per home node), bumps home versions
//!   and posts write notices. Called from `lock_release` and `barrier_wait`.
//! * **Acquire** — [`Gos::lock_acquire`]/[`Gos::barrier_wait`] apply all pending write
//!   notices. Invalidation is *version-based*: the walk advances the thread's
//!   per-entry visibility watermark and the access check treats an outrun copy as
//!   invalid — no cross-thread heap mutation anywhere in the protocol.
//!
//! Every operation that touches a thread's heap takes that heap as
//! `&mut` [`ThreadSpace`] — the single-writer discipline: a thread's arena is
//! exclusively owned by the thread driving it, so the access fast path is a couple
//! of bit tests on one packed word instead of the seed's per-access
//! `RwLock`/`Arc`/`Mutex` trio (retained in [`crate::heap::reference`] for
//! differential testing and benchmarking).
//!
//! The per-thread at-most-once property falls out: within one interval a (thread,
//! object) pair faults at most once, so logging on faults is cheap — exactly what
//! Section II.A exploits, with [`ThreadSpace::arm_next_interval`] re-arming traps per
//! interval at access-log time.
//!
//! The acting thread is identified by the [`ThreadSpace`] (and the [`ClockHandle`]
//! passed alongside); the node it currently runs on is passed explicitly because
//! thread migration changes it.

use jessy_obs::{EventKind, TraceSink};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use jessy_net::{
    ClockHandle, DetExecutor, Fabric, FaultPlan, LatencyModel, MsgClass, NetError, NetworkStats,
    NodeId,
};

use crate::class::{ClassId, ClassRegistry};
use crate::costs::CostModel;
use crate::heap::{ThreadSpace, ST_ABSENT, ST_HOME, ST_INVALID, ST_VALID};
use crate::object::{ObjectCore, ObjectId, OBJ_HEADER_BYTES};
use crate::sync::{LockId, LockTable, NoticeBoard, SimBarrier, WriteNotice, NOTICE_BYTES};
use crate::twin::Diff;

/// Fixed wire size of small control requests (lock/fetch/barrier bodies).
const CTRL_BYTES: usize = 16;

/// Which consistency discipline scopes the write notices — the two interval-based
/// relaxed models the paper names (Section III: "our definition is specific to relaxed
/// memory models like LRC and ScC, which have the concept of intervals and the
/// at-most-once property").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyModel {
    /// Home-based LRC with a single global notice history: a lock acquire applies
    /// *all* pending notices (conservative; what the main experiments run).
    GlobalHlrc,
    /// Scope consistency (Iftode et al., SPAA'96): notices produced inside a lock's
    /// critical section attach to that lock; an acquire applies only that lock's
    /// history (barriers remain global). Fewer invalidations, weaker visibility.
    Scoped,
}

/// Configuration of a [`Gos`] instance.
#[derive(Debug, Clone)]
pub struct GosConfig {
    /// Number of cluster nodes.
    pub n_nodes: usize,
    /// Number of application threads (notice cursors).
    pub n_threads: usize,
    /// Network cost model.
    pub latency: LatencyModel,
    /// CPU cost model.
    pub costs: CostModel,
    /// Connectivity-based object prefetching: on a real fault, objects reachable
    /// within this many reference hops ride along on the reply (0 disables — the
    /// "path-analytic object prefetching" optimization the paper's evaluation runs
    /// with; the path analysis itself is the companion ISPAN'09 paper).
    pub prefetch_depth: u32,
    /// Notice-scoping discipline (LRC-style global history vs scope consistency).
    pub consistency: ConsistencyModel,
    /// Chaos schedule for the interconnect; `None` (and a plan with all
    /// probabilities zero) runs the fabric fault-free.
    pub faults: Option<FaultPlan>,
}

impl Default for GosConfig {
    fn default() -> Self {
        GosConfig {
            n_nodes: 8,
            n_threads: 8,
            latency: LatencyModel::fast_ethernet(),
            costs: CostModel::pentium4_2ghz(),
            prefetch_depth: 0,
            consistency: ConsistencyModel::GlobalHlrc,
            faults: None,
        }
    }
}

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read access bytecode (getfield / aload etc.).
    Read,
    /// Write access bytecode (putfield / astore etc.).
    Write,
}

/// Everything the profiler needs to know about one access, returned by
/// [`Gos::read`]/[`Gos::write`]. The GOS itself never logs — decoupling the substrate
/// from the contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// The object accessed.
    pub obj: ObjectId,
    /// Its class.
    pub class: ClassId,
    /// Its home node.
    pub home: NodeId,
    /// Read or write.
    pub kind: AccessKind,
    /// The object's sampled tag at access time.
    pub sampled: bool,
    /// The access trapped on a profiler-armed false-invalid state.
    pub false_invalid: bool,
    /// The access took a real fault (cold or invalidated cache).
    pub real_fault: bool,
    /// This is the thread's first-ever touch of the object (its access entry was just
    /// created). For objects homed at the thread's node this is the only trap the
    /// first interval gets — the profiler logs it like a correlation fault, after
    /// which normal interval arming takes over.
    pub first_touch: bool,
    /// Payload bytes fetched from the home (0 on hits).
    pub fetched_bytes: usize,
    /// Full payload size in bytes.
    pub payload_bytes: usize,
    /// Array instance? (per-element sampling applies)
    pub is_array: bool,
    /// Sequence number of the object / first array element.
    pub elem_seq0: u64,
    /// Element count (1 for scalars).
    pub len_elems: u32,
    /// Per-instance (scalar) or per-element (array) size in bytes.
    pub unit_bytes: u32,
}

impl AccessOutcome {
    /// Did this access trap into the GOS service routine at all?
    #[inline]
    pub fn faulted(&self) -> bool {
        self.false_invalid || self.real_fault
    }

    /// Should the profiler consider logging this access? (Any service-routine entry:
    /// fault, correlation fault, or first touch.)
    #[inline]
    pub fn loggable(&self) -> bool {
        self.false_invalid || self.real_fault || self.first_touch
    }
}

/// Aggregate protocol event counters (diagnostics and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolCounters {
    /// Real object faults served (cold misses + invalidations).
    pub real_faults: u64,
    /// False-invalid traps served (correlation faults, Section II.A).
    pub false_invalid_faults: u64,
    /// Total accesses checked.
    pub accesses: u64,
    /// Diffs shipped home.
    pub diffs_flushed: u64,
    /// Write notices applied (cache invalidations checked).
    pub notices_applied: u64,
    /// Object homes relocated.
    pub home_migrations: u64,
    /// Faults served locally because the home had migrated onto the faulting
    /// node (the entry rebinds to home-resident; no fabric round trip).
    pub home_promotions: u64,
    /// Objects moved by connectivity prefetching (riding on fault replies).
    pub objects_prefetched: u64,
}

#[derive(Debug, Default)]
struct Counters {
    real_faults: AtomicU64,
    false_invalid_faults: AtomicU64,
    accesses: AtomicU64,
    diffs_flushed: AtomicU64,
    notices_applied: AtomicU64,
    home_migrations: AtomicU64,
    home_promotions: AtomicU64,
    objects_prefetched: AtomicU64,
}

/// Borrowed or shared handle to an [`ObjectCore`]: the frozen prefix of the object
/// table hands out plain references (no refcount traffic on the access path); the
/// post-freeze overflow region falls back to an `Arc` clone under the table lock.
enum CoreRef<'a> {
    Frozen(&'a ObjectCore),
    Shared(Arc<ObjectCore>),
}

impl std::ops::Deref for CoreRef<'_> {
    type Target = ObjectCore;
    #[inline]
    fn deref(&self) -> &ObjectCore {
        match self {
            CoreRef::Frozen(c) => c,
            CoreRef::Shared(c) => c,
        }
    }
}

/// The Global Object Space.
pub struct Gos {
    config: GosConfig,
    classes: ClassRegistry,
    fabric: Fabric,
    objects: RwLock<Vec<Arc<ObjectCore>>>,
    /// Immutable snapshot of the object table taken when the cluster starts running
    /// ([`Gos::freeze_object_table`]): the access path indexes it without taking the
    /// `objects` lock or cloning an `Arc`. Objects allocated after the freeze (e.g.
    /// Barnes-Hut tree cells built mid-run) live past the snapshot length and take
    /// the slow lookup.
    frozen: OnceLock<Box<[Arc<ObjectCore>]>>,
    by_class: RwLock<Vec<Vec<ObjectId>>>,
    notices: NoticeBoard,
    lock_boards: RwLock<Vec<Arc<NoticeBoard>>>,
    locks: LockTable,
    barrier: SimBarrier,
    counters: Counters,
    /// Journal for protocol slow-path events (faults, traps, home migrations,
    /// notice application). `None` emits nothing; the access-check *hit* lane has
    /// no emission site at all, so tracing cannot slow it down.
    sink: Option<Arc<dyn TraceSink>>,
    /// Deterministic executor, when the cluster runs cooperatively scheduled
    /// tasks. Blocking sync ops (lock acquire, barrier) route through their
    /// cooperative variants for tasks the executor currently runs; any other
    /// caller (unit tests, post-run adoption) keeps the condvar path.
    exec: Option<Arc<DetExecutor>>,
}

impl Gos {
    /// Build a GOS for `config.n_nodes` nodes and `config.n_threads` threads.
    ///
    /// Panics on an invalid topology or fault plan; use [`Gos::try_new`] to handle
    /// those as typed errors.
    pub fn new(config: GosConfig) -> Self {
        Self::try_new(config).expect("invalid GOS configuration")
    }

    /// Build a GOS, surfacing an empty cluster or an invalid fault plan as a
    /// [`NetError`] instead of a panic.
    pub fn try_new(config: GosConfig) -> Result<Self, NetError> {
        assert!(config.n_threads > 0, "GOS needs at least one thread");
        let fabric = match &config.faults {
            Some(plan) => Fabric::with_faults(config.n_nodes, config.latency, plan.clone())?,
            None => Fabric::new(config.n_nodes, config.latency)?,
        };
        Ok(Gos {
            classes: ClassRegistry::new(),
            fabric,
            objects: RwLock::new(Vec::new()),
            frozen: OnceLock::new(),
            by_class: RwLock::new(Vec::new()),
            notices: NoticeBoard::new(config.n_threads),
            lock_boards: RwLock::new(Vec::new()),
            locks: LockTable::new(),
            barrier: SimBarrier::new(),
            counters: Counters::default(),
            sink: None,
            exec: None,
            config,
        })
    }

    /// Install an event journal for protocol slow-path events, and share it with
    /// the fabric so message-level events land in the same journal.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.fabric.set_trace_sink(Arc::clone(&sink));
        self.sink = Some(sink);
    }

    /// Install the deterministic executor: blocking sync ops of tasks it runs
    /// switch from condvar parking to cooperative scheduling.
    pub fn set_executor(&mut self, exec: Arc<DetExecutor>) {
        self.exec = Some(exec);
    }

    /// The cooperative route for `clock`'s thread, if the executor currently
    /// runs it as a task (the task id is the thread's clock-board index).
    fn coop(&self, clock: &ClockHandle) -> Option<(&DetExecutor, usize)> {
        let exec = self.exec.as_deref()?;
        let task = clock.thread().index();
        exec.task_is_live(task).then_some((exec, task))
    }

    /// The configuration in force.
    pub fn config(&self) -> &GosConfig {
        &self.config
    }

    /// The class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// The CPU cost model.
    pub fn costs(&self) -> &CostModel {
        &self.config.costs
    }

    /// The simulated interconnect (for traffic snapshots).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Snapshot of network traffic so far.
    pub fn net_stats(&self) -> NetworkStats {
        self.fabric.stats()
    }

    /// Traffic counters of one directed link (diagnostics).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> jessy_net::fabric::LinkStats {
        self.fabric.link(from, to)
    }

    /// Snapshot of protocol event counters.
    pub fn proto_counters(&self) -> ProtocolCounters {
        ProtocolCounters {
            real_faults: self.counters.real_faults.load(Ordering::Relaxed),
            false_invalid_faults: self.counters.false_invalid_faults.load(Ordering::Relaxed),
            accesses: self.counters.accesses.load(Ordering::Relaxed),
            diffs_flushed: self.counters.diffs_flushed.load(Ordering::Relaxed),
            notices_applied: self.counters.notices_applied.load(Ordering::Relaxed),
            home_migrations: self.counters.home_migrations.load(Ordering::Relaxed),
            home_promotions: self.counters.home_promotions.load(Ordering::Relaxed),
            objects_prefetched: self.counters.objects_prefetched.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------ allocation

    /// Allocate a scalar instance of `class` homed at `node`, optionally initializing
    /// its payload. Draws one per-class sequence number. The sampled tag starts
    /// `false`; the profiler decides and calls [`ObjectCore::set_sampled`].
    pub fn alloc_scalar(
        &self,
        node: NodeId,
        class: ClassId,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        let info = self.classes.info(class);
        assert!(!info.is_array, "use alloc_array for array classes");
        let seq = self.classes.draw_seq(class, 1);
        self.alloc_inner(node, class, info.unit_words, info.unit_words, seq, false, clock, init)
    }

    /// Allocate an array of `len_elems` elements of `class` homed at `node`. Draws
    /// `len_elems` consecutive sequence numbers (Section II.B.3).
    pub fn alloc_array(
        &self,
        node: NodeId,
        class: ClassId,
        len_elems: u32,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        assert!(len_elems > 0, "zero-length arrays not supported");
        let info = self.classes.info(class);
        assert!(info.is_array, "use alloc_scalar for scalar classes");
        let seq0 = self.classes.draw_seq(class, len_elems as u64);
        let words = info.unit_words * len_elems;
        self.alloc_inner(node, class, words, info.unit_words, seq0, true, clock, init)
    }

    #[allow(clippy::too_many_arguments)]
    fn alloc_inner(
        &self,
        node: NodeId,
        class: ClassId,
        len_words: u32,
        unit_words: u32,
        seq0: u64,
        is_array: bool,
        clock: &ClockHandle,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        self.assert_node(node);
        clock.spend(self.config.costs.alloc_ns);
        let mut objects = self.objects.write();
        let id = ObjectId(objects.len() as u32);
        let core = Arc::new(ObjectCore::new(
            id, class, node, len_words, unit_words, seq0, is_array, false,
        ));
        if let Some(init) = init {
            core.with_home_data(|d| {
                assert_eq!(init.len(), d.len(), "init length mismatch for {id}");
                d.copy_from_slice(init);
            });
        }
        objects.push(Arc::clone(&core));
        drop(objects);
        let mut by_class = self.by_class.write();
        if by_class.len() <= class.index() {
            by_class.resize_with(class.index() + 1, Vec::new);
        }
        by_class[class.index()].push(id);
        core
    }

    /// Freeze the current object table for lock-free access-path lookup. Called once
    /// when the cluster starts running (registration and setup allocation happen
    /// before threads start); idempotent, and later allocations still work — they
    /// land past the frozen prefix and are resolved through the locked table.
    pub fn freeze_object_table(&self) {
        let snap: Box<[Arc<ObjectCore>]> =
            self.objects.read().iter().cloned().collect::<Vec<_>>().into_boxed_slice();
        let _ = self.frozen.set(snap);
    }

    /// Access-path object lookup: a plain indexed read in the frozen prefix, the
    /// locked table (plus `Arc` clone) past it.
    #[inline]
    fn core(&self, id: ObjectId) -> CoreRef<'_> {
        if let Some(frozen) = self.frozen.get() {
            if let Some(core) = frozen.get(id.index()) {
                return CoreRef::Frozen(core);
            }
        }
        CoreRef::Shared(self.objects.read()[id.index()].clone())
    }

    /// Look up an object by id.
    pub fn object(&self, id: ObjectId) -> Arc<ObjectCore> {
        if let Some(frozen) = self.frozen.get() {
            if let Some(core) = frozen.get(id.index()) {
                return Arc::clone(core);
            }
        }
        self.objects.read()[id.index()].clone()
    }

    /// Number of objects ever allocated.
    pub fn n_objects(&self) -> usize {
        self.objects.read().len()
    }

    /// Re-arm false-invalid traps in `space` for every resident object whose
    /// shared header carries the sampled tag. Called by a thread at the first
    /// interval open after a coordinator rate change: the resampling walk
    /// retags headers globally, but objects that regained the tag while their
    /// per-thread armed chain was dead would never trap (hence never log)
    /// again on a read-only path. The walk cost is charged to `clock` like the
    /// coordinator's own resampling walk. Returns the number of traps armed.
    pub fn rearm_sampled(&self, space: &mut ThreadSpace, clock: &ClockHandle) -> usize {
        let objects = self.objects.read();
        let (visited, armed) = space.arm_matching(|obj| {
            objects.get(obj.index()).is_some_and(|c| c.is_sampled())
        });
        clock.spend(self.costs().resample_ns_per_obj * visited as u64);
        armed
    }

    /// Visit every object of `class` (resampling walks after a rate change).
    pub fn for_each_object_of_class(&self, class: ClassId, mut f: impl FnMut(&Arc<ObjectCore>)) {
        let ids: Vec<ObjectId> = match self.by_class.read().get(class.index()) {
            Some(v) => v.clone(),
            None => return,
        };
        let objects = self.objects.read();
        for id in ids {
            f(&objects[id.index()]);
        }
    }

    /// Visit every object.
    pub fn for_each_object(&self, mut f: impl FnMut(&Arc<ObjectCore>)) {
        let objects = self.objects.read();
        for core in objects.iter() {
            f(core);
        }
    }

    // ------------------------------------------------------------------ access path

    /// Read access by `space`'s thread running on `node`: runs `f` over the
    /// (possibly freshly faulted) payload.
    pub fn read<R>(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        obj: ObjectId,
        clock: &ClockHandle,
        f: impl FnOnce(&[f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(space, node, obj, AccessKind::Read, clock, |data| f(data))
    }

    /// Write access: runs `f` over the mutable payload; creates the twin on the first
    /// write of the interval and marks the entry dirty for the next flush.
    pub fn write<R>(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        obj: ObjectId,
        clock: &ClockHandle,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(space, node, obj, AccessKind::Write, clock, f)
    }

    fn access<R>(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        obj: ObjectId,
        kind: AccessKind,
        clock: &ClockHandle,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.assert_node(node);
        debug_assert_eq!(space.thread(), clock.thread(), "space/clock thread mismatch");
        let costs = &self.config.costs;
        clock.spend(costs.access_check_ns);
        self.counters.accesses.fetch_add(1, Ordering::Relaxed);

        let core = self.core(obj);
        let mut outcome = AccessOutcome {
            obj,
            class: core.class,
            home: core.home(),
            kind,
            sampled: core.is_sampled(),
            false_invalid: false,
            real_fault: false,
            first_touch: false,
            fetched_bytes: 0,
            payload_bytes: core.payload_bytes(),
            is_array: core.is_array,
            elem_seq0: core.elem_seq0,
            len_elems: core.len_elems(),
            unit_bytes: core.unit_words * 8,
        };

        // The inlined 2-bit check, on one packed word. `effective_state` folds
        // version-based invalidation in: a valid copy whose acquired visibility
        // watermark passed its cached version reads as invalid.
        let mut st = space.effective_state(obj);
        if st == ST_ABSENT {
            outcome.first_touch = true;
            let at_home = core.home() == node;
            space.insert(obj, at_home);
            if at_home {
                // First touch of a home-resident object enters the service routine
                // once (entry initialization + the logging opportunity).
                clock.spend(costs.fault_service_ns);
            }
            st = if at_home { ST_HOME } else { ST_INVALID };
        } else if st == ST_INVALID && space.peek_stale(space.peek(obj)) {
            // Materialize the lazy invalidation (payload/twin buffers retained).
            space.demote_stale(obj);
        }

        if st != ST_INVALID && space.peek_armed(space.peek(obj)) {
            // Correlation fault: enter the service routine, cancel the trap.
            outcome.false_invalid = true;
            clock.spend(costs.fault_service_ns);
            self.counters.false_invalid_faults.fetch_add(1, Ordering::Relaxed);
            space.disarm(obj);
            if let Some(sink) = &self.sink {
                sink.emit(
                    clock.now(),
                    clock.thread().0,
                    EventKind::FalseInvalidTrap {
                        obj: obj.0,
                        class: core.class.0 as u32,
                        node: node.0,
                    },
                );
            }
        }

        if st == ST_INVALID && core.home() == node {
            // The home migrated onto this node after first touch: serve the
            // fault from the now-local home copy and rebind the entry to
            // home-resident — no fabric round trip, ever again.
            outcome.real_fault = true;
            clock.spend(costs.fault_service_ns);
            self.counters.real_faults.fetch_add(1, Ordering::Relaxed);
            self.counters.home_promotions.fetch_add(1, Ordering::Relaxed);
            space.promote_home(obj);
            if let Some(sink) = &self.sink {
                sink.emit(
                    clock.now(),
                    clock.thread().0,
                    EventKind::ObjectFault {
                        obj: obj.0,
                        class: core.class.0 as u32,
                        home: core.home().0,
                        node: node.0,
                        bytes: 0,
                    },
                );
            }
            st = ST_HOME;
        } else if st == ST_INVALID {
            // Real object fault: fetch the latest copy from home.
            outcome.real_fault = true;
            clock.spend(costs.fault_service_ns);
            self.counters.real_faults.fetch_add(1, Ordering::Relaxed);
            let bytes = core.payload_bytes();
            self.fabric.charge_round_trip(
                node,
                core.home(),
                MsgClass::ObjFetch,
                CTRL_BYTES,
                MsgClass::ObjData,
                bytes + OBJ_HEADER_BYTES,
                clock,
            );
            core.with_home_data(|d| {
                let version = core.version();
                space.install_copy(obj, d, version);
            });
            outcome.fetched_bytes = bytes;
            if let Some(sink) = &self.sink {
                sink.emit(
                    clock.now(),
                    clock.thread().0,
                    EventKind::ObjectFault {
                        obj: obj.0,
                        class: core.class.0 as u32,
                        home: core.home().0,
                        node: node.0,
                        bytes: bytes as u64,
                    },
                );
            }
            if self.config.prefetch_depth > 0 {
                // Connectivity prefetch: same-home objects within `prefetch_depth`
                // reference hops ride along on the reply.
                self.connectivity_prefetch(space, node, &core, clock);
            }
            st = ST_VALID;
        }

        let result = if st == ST_HOME {
            if kind == AccessKind::Write && !space.dirty_bit(space.peek(obj)) {
                space.mark_dirty(obj);
            }
            core.with_home_data(|d| f(d))
        } else {
            if kind == AccessKind::Write {
                if !space.twin_bit(space.peek(obj)) {
                    clock.spend(costs.twin_ns(space.data_len(obj)));
                    space.make_twin(obj);
                }
                if !space.dirty_bit(space.peek(obj)) {
                    space.mark_dirty(obj);
                }
            }
            f(space.data_mut(obj))
        };
        (result, outcome)
    }

    /// Walk `root`'s reference neighbourhood (up to `prefetch_depth` hops) and install
    /// cache copies of same-home objects the thread does not already hold. The extra
    /// payload is accounted as a batched `Prefetch` message from the home.
    fn connectivity_prefetch(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        root: &ObjectCore,
        clock: &ClockHandle,
    ) {
        let home = root.home();
        let mut frontier = root.refs();
        let mut bytes = 0usize;
        let mut moved = 0u64;
        for _hop in 0..self.config.prefetch_depth {
            let mut next = Vec::new();
            for obj in frontier.drain(..) {
                let core = self.core(obj);
                if core.home() != home || home == node {
                    continue; // cross-home neighbours are not on this reply path
                }
                match space.effective_state(obj) {
                    ST_HOME | ST_VALID => continue, // already holds usable data
                    ST_ABSENT => space.insert(obj, false),
                    _ => {}
                }
                core.with_home_data(|d| {
                    let version = core.version();
                    space.install_copy(obj, d, version);
                });
                bytes += core.payload_bytes() + OBJ_HEADER_BYTES;
                moved += 1;
                next.extend(core.refs());
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if bytes > 0 {
            self.fabric.send(home, node, MsgClass::Prefetch, bytes, clock);
            self.counters.objects_prefetched.fetch_add(moved, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------ release/acquire

    /// Flush every dirty copy of `space`'s thread: diff against twins, ship diffs
    /// home from `node` (one batched `DiffUpdate` per home node), bump versions and
    /// post write notices (to the global history — barrier/release semantics).
    /// Returns the number of objects flushed.
    pub fn flush_thread(&self, space: &mut ThreadSpace, node: NodeId, clock: &ClockHandle) -> usize {
        self.flush_thread_scoped(space, node, clock, None)
    }

    fn flush_thread_scoped(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        clock: &ClockHandle,
        scope: Option<LockId>,
    ) -> usize {
        self.assert_node(node);
        if space.dirty_is_empty() {
            return 0;
        }
        let dirty = space.take_dirty();
        let costs = &self.config.costs;
        let mut notices = Vec::new();
        let mut per_home: Vec<usize> = vec![0; self.config.n_nodes];
        let mut flushed = 0;

        for &obj in &dirty {
            let w = space.peek(obj);
            if !space.dirty_bit(w) {
                continue; // force-flushed at acquire, or repaired by a home migration
            }
            space.clear_dirty_bit(obj);
            let core = self.core(obj);
            match space.effective_state(obj) {
                ST_HOME => {
                    let v = core.bump_version();
                    notices.push(WriteNotice { obj, version: v });
                    flushed += 1;
                }
                ST_VALID => {
                    debug_assert!(space.twin_bit(w), "dirty cache without twin");
                    clock.spend(costs.diff_ns(space.data_len(obj)));
                    let diff = space.with_twin_and_data(obj, Diff::compute);
                    space.drop_twin(obj);
                    if !diff.is_empty() {
                        clock.spend(costs.apply_ns(diff.changed_words()));
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        space.set_cached_version(obj, v);
                        notices.push(WriteNotice { obj, version: v });
                        per_home[core.home().index()] += diff.wire_bytes() + 8;
                        self.counters.diffs_flushed.fetch_add(1, Ordering::Relaxed);
                        flushed += 1;
                    }
                }
                _ => {
                    // Invalidated (and force-flushed) by notice application.
                }
            }
        }
        space.recycle_dirty(dirty);

        for (home, bytes) in per_home.iter().enumerate() {
            if *bytes > 0 {
                self.fabric
                    .send(node, NodeId(home as u16), MsgClass::DiffUpdate, *bytes, clock);
            }
        }
        match (self.config.consistency, scope) {
            (ConsistencyModel::Scoped, Some(lock)) => {
                // Scope consistency: the critical section's writes attach to its lock.
                self.lock_boards.read()[lock.index()].post(notices);
            }
            _ => self.notices.post(notices),
        }
        flushed
    }

    /// Apply every pending write notice for `space`'s thread, advancing its
    /// visibility watermarks (version-based invalidation — stale copies read as
    /// invalid on the next access check). A dirty copy hit by a notice is
    /// force-flushed (from `node`) first so no writes are lost. Returns the number
    /// of notices processed.
    pub fn apply_notices(&self, space: &mut ThreadSpace, node: NodeId, clock: &ClockHandle) -> usize {
        self.apply_notices_from(&self.notices, space, node, clock)
    }

    fn apply_notices_from(
        &self,
        board: &NoticeBoard,
        space: &mut ThreadSpace,
        node: NodeId,
        clock: &ClockHandle,
    ) -> usize {
        self.assert_node(node);
        let costs = &self.config.costs;
        let new = board.take_new(space.thread().index());
        let count = new.len();
        if count == 0 {
            return 0;
        }
        clock.spend(costs.notice_apply_ns * count as u64);
        self.counters
            .notices_applied
            .fetch_add(count as u64, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.emit(
                clock.now(),
                clock.thread().0,
                EventKind::NoticesApplied {
                    thread: space.thread().0,
                    count: count as u64,
                },
            );
        }
        let mut follow_up = Vec::new();
        for notice in new {
            let obj = notice.obj;
            let w = space.peek(obj);
            match w & 0b11 {
                ST_HOME => {
                    if self.core(obj).home() != node {
                        // The home migrated away from under this thread: its entry
                        // becomes an ordinary (cold) cache entry and the next access
                        // faults normally.
                        space.reset_to_cold(obj);
                    }
                    continue;
                }
                ST_VALID => {}
                _ => continue, // absent or already-invalid cache
            }
            if space.cached_version(obj) >= notice.version {
                continue;
            }
            if space.dirty_bit(w) {
                // Unflushed writes race with the invalidation: flush before the copy
                // goes stale.
                space.clear_dirty_bit(obj);
                let core = self.core(obj);
                if space.twin_bit(w) {
                    clock.spend(costs.diff_ns(space.data_len(obj)));
                    let diff = space.with_twin_and_data(obj, Diff::compute);
                    space.drop_twin(obj);
                    if !diff.is_empty() {
                        clock.spend(costs.apply_ns(diff.changed_words()));
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        follow_up.push(WriteNotice { obj, version: v });
                        self.fabric.send(
                            node,
                            core.home(),
                            MsgClass::DiffUpdate,
                            diff.wire_bytes() + 8,
                            clock,
                        );
                        self.counters.diffs_flushed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Version-based lazy invalidation: advance the watermark; the payload
            // stays for the refetch to reuse and the access check does the rest.
            space.note_visible(obj, notice.version);
        }
        self.notices.post(follow_up);
        count
    }

    // ------------------------------------------------------------------ sync API

    /// Register a distributed lock. The manager node is `id % n_nodes`.
    pub fn register_lock(&self) -> LockId {
        let id = self.locks.register();
        self.lock_boards
            .write()
            .push(Arc::new(NoticeBoard::new(self.config.n_threads)));
        id
    }

    fn lock_manager(&self, id: LockId) -> NodeId {
        NodeId((id.index() % self.config.n_nodes) as u16)
    }

    /// Acquire a distributed lock from `node`: round trip to the manager, inherit the
    /// previous holder's simulated release time, then apply pending write notices
    /// (piggybacked on the grant). Returns the number of notices applied.
    pub fn lock_acquire(
        &self,
        space: &mut ThreadSpace,
        id: LockId,
        node: NodeId,
        clock: &ClockHandle,
    ) -> usize {
        self.assert_node(node);
        clock.spend(self.config.costs.lock_local_ns);
        let prev_release = match self.coop(clock) {
            Some((exec, task)) => self.locks.get(id).acquire_coop(exec, task, clock.now()),
            None => self.locks.get(id).acquire(),
        };
        clock.raise_to(prev_release);
        let applied = match self.config.consistency {
            ConsistencyModel::GlobalHlrc => self.apply_notices(space, node, clock),
            ConsistencyModel::Scoped => {
                let board = self.lock_boards.read()[id.index()].clone();
                self.apply_notices_from(&board, space, node, clock)
            }
        };
        let manager = self.lock_manager(id);
        self.fabric.charge_round_trip(
            node,
            manager,
            MsgClass::LockAcquire,
            CTRL_BYTES,
            MsgClass::LockGrant,
            CTRL_BYTES + NOTICE_BYTES * applied,
            clock,
        );
        applied
    }

    /// Release a distributed lock from `node`: flush the thread's dirty copies (the
    /// interval ends here), notify the manager, record the simulated release time.
    pub fn lock_release(
        &self,
        space: &mut ThreadSpace,
        id: LockId,
        node: NodeId,
        clock: &ClockHandle,
    ) {
        self.assert_node(node);
        self.flush_thread_scoped(space, node, clock, Some(id));
        clock.spend(self.config.costs.lock_local_ns);
        let manager = self.lock_manager(id);
        self.fabric
            .send(node, manager, MsgClass::LockRelease, CTRL_BYTES, clock);
        match self.coop(clock) {
            Some((exec, _)) => self.locks.get(id).release_coop(exec, clock.now()),
            None => self.locks.get(id).release(clock.now()),
        }
    }

    /// Enter the global barrier as one of `parties` participants: flush (release
    /// semantics), synchronize real threads and simulated clocks, apply notices
    /// (acquire semantics). Returns the number of notices applied.
    pub fn barrier_wait(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        parties: usize,
        clock: &ClockHandle,
    ) -> usize {
        self.assert_node(node);
        self.flush_thread(space, node, clock);
        self.fabric
            .send(node, NodeId::MASTER, MsgClass::BarrierEnter, CTRL_BYTES, clock);
        let hdr = MsgClass::BarrierRelease.header_bytes();
        let extra =
            self.config.costs.barrier_local_ns + self.config.latency.one_way_ns(CTRL_BYTES + hdr);
        let release_sim = match self.coop(clock) {
            Some((exec, task)) => self.barrier.wait_coop(exec, task, parties, clock.now(), extra),
            None => self.barrier.wait(parties, clock.now(), extra),
        };
        clock.raise_to(release_sim);
        let applied = self.apply_notices(space, node, clock);
        // The release broadcast carries the notices this thread just applied.
        self.fabric.account_async(
            NodeId::MASTER,
            node,
            MsgClass::BarrierRelease,
            CTRL_BYTES + NOTICE_BYTES * applied,
        );
        applied
    }

    // ------------------------------------------------------------------ home migration

    /// Relocate `obj`'s home to `dest` (the object home-migration optimization the
    /// paper's evaluation runs with; see also its Section II: "Relocating home of one
    /// object for locality of one thread may sacrifice locality of other threads").
    ///
    /// The home payload transfer is accounted (`ObjData` old-home → new-home) and a
    /// write notice is posted so every cached copy revalidates against the new home.
    /// Threads holding a stale home-resident view are repaired when they next apply
    /// notices. Returns `false` if the home was already `dest`.
    pub fn migrate_home(&self, obj: ObjectId, dest: NodeId, clock: &ClockHandle) -> bool {
        self.assert_node(dest);
        let core = self.core(obj);
        let old = core.home();
        if old == dest {
            return false;
        }
        self.fabric.send(
            old,
            dest,
            MsgClass::ObjData,
            core.payload_bytes() + OBJ_HEADER_BYTES,
            clock,
        );
        core.set_home(dest);
        let v = core.bump_version();
        self.notices.post([WriteNotice { obj, version: v }]);
        self.counters.home_migrations.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.emit(
                clock.now(),
                clock.thread().0,
                EventKind::HomeMigration {
                    obj: obj.0,
                    from: old.0,
                    to: dest.0,
                },
            );
        }
        true
    }

    // ------------------------------------------------------------------ migration support

    /// Prefetch `objs` into `space` at `node` (the sticky-set prefetch accompanying a
    /// migration, Section III). Objects homed at `node` or already valid are skipped.
    /// Data is accounted as batched `Prefetch` messages, one per home node, charged
    /// to `clock`. Returns the payload bytes moved.
    pub fn prefetch_into(
        &self,
        space: &mut ThreadSpace,
        node: NodeId,
        objs: impl IntoIterator<Item = ObjectId>,
        clock: &ClockHandle,
    ) -> usize {
        self.assert_node(node);
        let mut per_home: Vec<usize> = vec![0; self.config.n_nodes];
        for obj in objs {
            let core = self.core(obj);
            if core.home() == node {
                continue;
            }
            match space.effective_state(obj) {
                ST_VALID => continue, // usable copy already present
                ST_ABSENT => space.insert(obj, false),
                _ => {}
            }
            core.with_home_data(|d| {
                let version = core.version();
                space.install_copy(obj, d, version);
            });
            per_home[core.home().index()] += core.payload_bytes() + OBJ_HEADER_BYTES;
        }
        let mut total = 0;
        for (home, bytes) in per_home.iter().enumerate() {
            if *bytes > 0 {
                total += *bytes;
                self.fabric
                    .send(NodeId(home as u16), node, MsgClass::Prefetch, *bytes, clock);
            }
        }
        total
    }

    /// Drop `space`'s entire contents (its thread migrated to a new node and its
    /// cache copies stayed behind). Unflushed writes are flushed from `from_node`
    /// first so nothing is lost; the arena allocation is recycled.
    pub fn drop_thread_cache(
        &self,
        space: &mut ThreadSpace,
        from_node: NodeId,
        clock: &ClockHandle,
    ) {
        self.flush_thread(space, from_node, clock);
        space.clear();
    }

    fn assert_node(&self, n: NodeId) {
        assert!(
            n.index() < self.config.n_nodes,
            "node {n} out of range ({} nodes)",
            self.config.n_nodes
        );
    }
}

impl std::fmt::Debug for Gos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gos")
            .field("n_nodes", &self.config.n_nodes)
            .field("n_threads", &self.config.n_threads)
            .field("objects", &self.n_objects())
            .field("classes", &self.classes.len())
            .finish()
    }
}
