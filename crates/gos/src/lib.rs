//! # jessy-gos — the Global Object Space
//!
//! This crate reimplements, from scratch, the object-sharing substrate the paper's
//! profiling techniques live in: the **Global Object Space (GOS)** of the JESSICA2
//! distributed JVM, running **home-based lazy release consistency** (HLRC, Zhou et al.
//! OSDI'96) over the simulated interconnect of `jessy-net`.
//!
//! ## Protocol model
//!
//! * Every shared object has a **home node** — the node that allocated it. The home
//!   holds the master copy ([`object::ObjectCore`]).
//! * A node accessing a remote object **faults** the latest copy from the home
//!   (accounted as an `ObjFetch`/`ObjData` round trip) and installs a **cache copy**.
//! * Writes to a cache copy first create a **twin**; at release time (unlock or
//!   barrier) a word-level **diff** against the twin is flushed to the home
//!   ([`twin`]), the home version is bumped, and a **write notice** is published.
//! * At acquire time (lock or barrier) a node applies pending write notices,
//!   invalidating stale cache copies. This yields HLRC's *at-most-once* property:
//!   within one interval, a given object faults (and can therefore be access-logged)
//!   at most once per node — the property Section II.A of the paper builds on.
//!
//! One deliberate simplification vs. true vector-timestamped HLRC: write notices are
//! kept in a single global history and lock acquires apply *all* pending notices
//! (conservative over-invalidation) instead of only causally-ordered ones. This keeps
//! the protocol trivially coherent for the barrier-dominant SPLASH-2 workloads while
//! preserving every property the profiler relies on. The simplification is recorded in
//! DESIGN.md.
//!
//! ## Profiling hooks
//!
//! The profiler (crate `jessy-core`) does **not** live inside the GOS. Instead:
//!
//! * every access entry carries the paper's 2-bit access state including the
//!   **false-invalid** value ([`object::AccessState`]), packed into a single word of
//!   the owning thread's arena ([`heap::ThreadSpace`]), plus a per-class **sequence
//!   number** and a **sampled** tag on the shared header ([`object`]);
//! * [`heap::ThreadSpace::arm_next_interval`] and [`heap::ThreadSpace::arm_traps`]
//!   let the profiler arm correlation faults epoch-lazily (no accessed-set walk at
//!   the interval boundary);
//! * every read/write returns an [`protocol::AccessOutcome`] describing exactly what
//!   happened (hit, false-invalid fault, cold/real fault, remote bytes moved), which
//!   the runtime forwards to the profiler.
//!
//! Simulated time is charged through [`costs::CostModel`]; network traffic through
//! `jessy-net`'s [`jessy_net::Fabric`].


#![warn(missing_docs)]
pub mod class;
pub mod costs;
pub mod heap;
pub mod object;
pub mod prime;
pub mod protocol;
pub mod sync;
pub mod twin;

pub use class::{ClassId, ClassInfo, ClassRegistry};
pub use costs::CostModel;
pub use heap::ThreadSpace;
pub use object::{AccessState, ObjectCore, ObjectId, RealState};
pub use protocol::{AccessKind, AccessOutcome, Gos, GosConfig};
pub use sync::LockId;
