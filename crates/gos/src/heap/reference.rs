//! The retained seed access path — differential oracle and bench baseline.
//!
//! This module preserves, verbatim in structure and semantics, the pre-refactor
//! per-thread heap ([`AccessEntry`] behind `RwLock<Vec<Option<Arc<Mutex<_>>>>>`)
//! and the protocol decisions the seed `Gos` made around it, with the cost/fabric
//! accounting stripped: [`ReferenceGos`] runs the same HLRC state machine — 2-bit
//! check, false-invalid cancel, twin/diff on first write, flush/notice/invalidate,
//! sticky prefetch, migration clear — against the same [`ObjectCore`] home copies,
//! and returns the same [`AccessOutcome`]s.
//!
//! It exists for two reasons (mirroring `core::tcm::reference` from the TCM
//! reduction rework):
//!
//! 1. **Differential testing** — the property suite drives arbitrary
//!    access/sync/migration schedules through both engines and asserts bit-identical
//!    outcomes, access states, home payloads, per-interval OALs and final TCM.
//! 2. **Benchmarking** — the `access_path` bench measures the seed layout's
//!    per-access `RwLock` read + `Arc` clone + `Mutex` lock (plus the per-access
//!    `ClassInfo` clone the seed paid for the unit size) against the packed
//!    single-writer arena.

use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

use jessy_net::{NodeId, ThreadId};

use crate::class::{ClassId, ClassRegistry};
use crate::object::{AccessState, ObjectCore, ObjectId, RealState, OBJ_HEADER_BYTES};
use crate::protocol::{AccessKind, AccessOutcome};
use crate::sync::{NoticeBoard, WriteNotice};
use crate::twin::Diff;

/// One thread's view of one object (the seed layout: a lock around every entry).
#[derive(Debug)]
pub struct AccessEntry {
    /// The 2-bit header state checked on every access.
    pub state: AccessState,
    /// The real consistency status (false-invalid cancels back to this).
    pub real: RealState,
    /// Cache payload; `None` when the object is homed at the thread's node.
    pub data: Option<Vec<f64>>,
    /// Twin created before the first write of the current interval.
    pub twin: Option<Vec<f64>>,
    /// Version of the home copy this cache was last synchronized with.
    pub cached_version: u64,
    /// Written since the last release flush.
    pub dirty: bool,
}

impl AccessEntry {
    /// Entry for an object homed at the thread's current node.
    pub fn home_resident() -> Self {
        AccessEntry {
            state: AccessState::Home,
            real: RealState::HomeResident,
            data: None,
            twin: None,
            cached_version: 0,
            dirty: false,
        }
    }

    /// Entry for a remote object not yet faulted in.
    pub fn absent() -> Self {
        AccessEntry {
            state: AccessState::Invalid,
            real: RealState::CacheInvalid,
            data: None,
            twin: None,
            cached_version: 0,
            dirty: false,
        }
    }

    /// Cancel a false-invalid trap back to the real state (Section II.A).
    pub fn cancel_false_invalid(&mut self) {
        if self.state == AccessState::FalseInvalid {
            self.state = self.real.to_access_state();
        }
    }
}

/// The seed per-thread heap: lazily grown `Option<Arc<Mutex<AccessEntry>>>` table
/// behind a `RwLock` — three synchronization hits on every access.
#[derive(Debug)]
pub struct RefSpace {
    thread: ThreadId,
    entries: RwLock<Vec<Option<Arc<Mutex<AccessEntry>>>>>,
}

impl RefSpace {
    /// Empty space for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        RefSpace {
            thread,
            entries: RwLock::new(Vec::new()),
        }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The entry for `obj`, if this thread has ever touched it.
    pub fn entry(&self, obj: ObjectId) -> Option<Arc<Mutex<AccessEntry>>> {
        self.entries.read().get(obj.index()).cloned().flatten()
    }

    /// The entry for `obj`, creating it with `init` if absent.
    pub fn entry_or_insert(
        &self,
        obj: ObjectId,
        init: impl FnOnce() -> AccessEntry,
    ) -> Arc<Mutex<AccessEntry>> {
        if let Some(e) = self.entry(obj) {
            return e;
        }
        let mut entries = self.entries.write();
        if entries.len() <= obj.index() {
            entries.resize_with(obj.index() + 1, || None);
        }
        entries[obj.index()]
            .get_or_insert_with(|| Arc::new(Mutex::new(init())))
            .clone()
    }

    /// Drop every entry (migration; the seed dropped the allocation too).
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Number of populated entries (the seed's O(objects) scan).
    pub fn populated(&self) -> usize {
        self.entries.read().iter().filter(|s| s.is_some()).count()
    }
}

/// The seed protocol engine: exact pre-refactor access/flush/notice/prefetch
/// semantics over [`RefSpace`] heaps, minus simulated-time and fabric accounting
/// (which are orthogonal to the state machine and identical in both engines).
pub struct ReferenceGos {
    classes: ClassRegistry,
    objects: RwLock<Vec<Arc<ObjectCore>>>,
    spaces: Vec<RefSpace>,
    dirty: Vec<Mutex<Vec<ObjectId>>>,
    notices: NoticeBoard,
    n_nodes: usize,
}

impl ReferenceGos {
    /// Engine for `n_nodes` nodes and `n_threads` per-thread heaps.
    pub fn new(n_nodes: usize, n_threads: usize) -> Self {
        ReferenceGos {
            classes: ClassRegistry::new(),
            objects: RwLock::new(Vec::new()),
            spaces: (0..n_threads)
                .map(|i| RefSpace::new(ThreadId(i as u32)))
                .collect(),
            dirty: (0..n_threads).map(|_| Mutex::new(Vec::new())).collect(),
            notices: NoticeBoard::new(n_threads),
            n_nodes,
        }
    }

    /// The class registry (register classes identically on both engines).
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Allocate a scalar instance of `class` homed at `node`.
    pub fn alloc_scalar(
        &self,
        node: NodeId,
        class: ClassId,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        let info = self.classes.info(class);
        assert!(!info.is_array, "use alloc_array for array classes");
        let seq = self.classes.draw_seq(class, 1);
        self.alloc_inner(node, class, info.unit_words, info.unit_words, seq, false, init)
    }

    /// Allocate an array of `len_elems` elements of `class` homed at `node`.
    pub fn alloc_array(
        &self,
        node: NodeId,
        class: ClassId,
        len_elems: u32,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        assert!(len_elems > 0, "zero-length arrays not supported");
        let info = self.classes.info(class);
        assert!(info.is_array, "use alloc_scalar for scalar classes");
        let seq0 = self.classes.draw_seq(class, len_elems as u64);
        let words = info.unit_words * len_elems;
        self.alloc_inner(node, class, words, info.unit_words, seq0, true, init)
    }

    #[allow(clippy::too_many_arguments)]
    fn alloc_inner(
        &self,
        node: NodeId,
        class: ClassId,
        len_words: u32,
        unit_words: u32,
        seq0: u64,
        is_array: bool,
        init: Option<&[f64]>,
    ) -> Arc<ObjectCore> {
        assert!(node.index() < self.n_nodes, "node {node} out of range");
        let mut objects = self.objects.write();
        let id = ObjectId(objects.len() as u32);
        let core = Arc::new(ObjectCore::new(
            id, class, node, len_words, unit_words, seq0, is_array, false,
        ));
        if let Some(init) = init {
            core.with_home_data(|d| {
                assert_eq!(init.len(), d.len(), "init length mismatch for {id}");
                d.copy_from_slice(init);
            });
        }
        objects.push(Arc::clone(&core));
        core
    }

    /// Look up an object (the seed's per-access `RwLock` read + `Arc` clone).
    pub fn object(&self, id: ObjectId) -> Arc<ObjectCore> {
        self.objects.read()[id.index()].clone()
    }

    /// Number of objects allocated.
    pub fn n_objects(&self) -> usize {
        self.objects.read().len()
    }

    /// Read access by `thread` running on `node`.
    pub fn read<R>(
        &self,
        thread: ThreadId,
        node: NodeId,
        obj: ObjectId,
        f: impl FnOnce(&[f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(thread, node, obj, AccessKind::Read, |data| f(data))
    }

    /// Write access by `thread` running on `node`.
    pub fn write<R>(
        &self,
        thread: ThreadId,
        node: NodeId,
        obj: ObjectId,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        self.access(thread, node, obj, AccessKind::Write, f)
    }

    fn access<R>(
        &self,
        thread: ThreadId,
        node: NodeId,
        obj: ObjectId,
        kind: AccessKind,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> (R, AccessOutcome) {
        let core = self.object(obj);
        let info = self.classes.info(core.class);
        let len_elems = if core.is_array {
            core.len_words / info.unit_words
        } else {
            1
        };
        let mut outcome = AccessOutcome {
            obj,
            class: core.class,
            home: core.home(),
            kind,
            sampled: core.is_sampled(),
            false_invalid: false,
            real_fault: false,
            first_touch: false,
            fetched_bytes: 0,
            payload_bytes: core.payload_bytes(),
            is_array: core.is_array,
            elem_seq0: core.elem_seq0,
            len_elems,
            unit_bytes: info.unit_words * 8,
        };

        let space = &self.spaces[thread.index()];
        let entry = match space.entry(obj) {
            Some(e) => e,
            None => {
                outcome.first_touch = true;
                space.entry_or_insert(obj, || {
                    if core.home() == node {
                        AccessEntry::home_resident()
                    } else {
                        AccessEntry::absent()
                    }
                })
            }
        };
        let mut e = entry.lock();

        if e.state == AccessState::FalseInvalid {
            outcome.false_invalid = true;
            e.cancel_false_invalid();
        }

        if e.state == AccessState::Invalid {
            outcome.real_fault = true;
            if core.home() == node {
                // Home promotion: the object's home has arrived at this node
                // since the copy was invalidated, so the fault is served from
                // the local home copy — rebind to home-resident, fetch nothing.
                e.data = None;
                e.twin = None;
                e.state = AccessState::Home;
                e.real = RealState::HomeResident;
            } else {
                let (data, version) = core.with_home_data(|d| (d.clone(), core.version()));
                e.data = Some(data);
                e.cached_version = version;
                e.state = AccessState::Valid;
                e.real = RealState::CacheValid;
                outcome.fetched_bytes = core.payload_bytes();
            }
        }

        let result = match e.real {
            RealState::HomeResident => {
                if kind == AccessKind::Write && !e.dirty {
                    e.dirty = true;
                    self.dirty[thread.index()].lock().push(obj);
                }
                core.with_home_data(|d| f(d))
            }
            RealState::CacheValid => {
                if kind == AccessKind::Write {
                    if e.twin.is_none() {
                        e.twin = Some(e.data.as_ref().expect("valid cache without data").clone());
                    }
                    if !e.dirty {
                        e.dirty = true;
                        self.dirty[thread.index()].lock().push(obj);
                    }
                }
                f(e.data.as_mut().expect("valid cache without data"))
            }
            RealState::CacheInvalid => unreachable!("fault path must have validated the cache"),
        };
        (result, outcome)
    }

    /// Arm false-invalid traps on `objs` in `thread`'s heap (seed interval-open
    /// walk). Returns how many traps were armed.
    pub fn set_false_invalid(
        &self,
        thread: ThreadId,
        objs: impl IntoIterator<Item = ObjectId>,
    ) -> usize {
        let mut armed = 0;
        for obj in objs {
            if let Some(entry) = self.spaces[thread.index()].entry(obj) {
                let mut e = entry.lock();
                match e.real {
                    RealState::HomeResident | RealState::CacheValid => {
                        e.state = AccessState::FalseInvalid;
                        armed += 1;
                    }
                    RealState::CacheInvalid => {}
                }
            }
        }
        armed
    }

    /// The access state of `obj` as seen by `thread`.
    pub fn access_state(&self, thread: ThreadId, obj: ObjectId) -> Option<AccessState> {
        self.spaces[thread.index()]
            .entry(obj)
            .map(|e| e.lock().state)
    }

    /// Number of entries `thread`'s heap holds.
    pub fn populated(&self, thread: ThreadId) -> usize {
        self.spaces[thread.index()].populated()
    }

    /// Flush `thread`'s dirty copies: diff against twins, apply home-side, bump
    /// versions, post write notices. Returns the number of objects flushed.
    pub fn flush_thread(&self, thread: ThreadId, _node: NodeId) -> usize {
        let dirty: Vec<ObjectId> = std::mem::take(&mut *self.dirty[thread.index()].lock());
        if dirty.is_empty() {
            return 0;
        }
        let mut notices = Vec::new();
        let mut flushed = 0;
        for obj in dirty {
            let entry = match self.spaces[thread.index()].entry(obj) {
                Some(e) => e,
                None => continue, // cleared by a migration
            };
            let mut e = entry.lock();
            if !e.dirty {
                continue;
            }
            e.dirty = false;
            let core = self.object(obj);
            match e.real {
                RealState::HomeResident => {
                    let v = core.bump_version();
                    notices.push(WriteNotice { obj, version: v });
                    flushed += 1;
                }
                RealState::CacheValid => {
                    let twin = e.twin.take().expect("dirty cache without twin");
                    let data = e.data.as_ref().expect("dirty cache without data");
                    let diff = Diff::compute(&twin, data);
                    if !diff.is_empty() {
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        e.cached_version = v;
                        notices.push(WriteNotice { obj, version: v });
                        flushed += 1;
                    }
                }
                RealState::CacheInvalid => {}
            }
        }
        self.notices.post(notices);
        flushed
    }

    /// Apply every pending write notice for `thread` running on `node`. Returns the
    /// number of notices processed.
    pub fn apply_notices(&self, thread: ThreadId, node: NodeId) -> usize {
        let new = self.notices.take_new(thread.index());
        let count = new.len();
        if count == 0 {
            return 0;
        }
        let mut follow_up = Vec::new();
        for notice in new {
            let entry = match self.spaces[thread.index()].entry(notice.obj) {
                Some(e) => e,
                None => continue,
            };
            let mut e = entry.lock();
            if e.real == RealState::HomeResident && self.object(notice.obj).home() != node {
                e.state = AccessState::Invalid;
                e.real = RealState::CacheInvalid;
                e.data = None;
                e.twin = None;
                e.dirty = false;
                continue;
            }
            if e.real != RealState::CacheValid || e.cached_version >= notice.version {
                continue;
            }
            if e.dirty {
                e.dirty = false;
                let core = self.object(notice.obj);
                if let Some(twin) = e.twin.take() {
                    let data = e.data.as_ref().expect("dirty cache without data");
                    let diff = Diff::compute(&twin, data);
                    if !diff.is_empty() {
                        core.with_home_data(|d| diff.apply(d));
                        let v = core.bump_version();
                        follow_up.push(WriteNotice {
                            obj: notice.obj,
                            version: v,
                        });
                    }
                }
            }
            e.state = AccessState::Invalid;
            e.real = RealState::CacheInvalid;
            e.data = None;
            e.twin = None;
        }
        self.notices.post(follow_up);
        count
    }

    /// Relocate `obj`'s home to `dest` and post the invalidating notice. Returns
    /// `false` if the home was already `dest`.
    pub fn migrate_home(&self, obj: ObjectId, dest: NodeId) -> bool {
        assert!(dest.index() < self.n_nodes, "node {dest} out of range");
        let core = self.object(obj);
        if core.home() == dest {
            return false;
        }
        core.set_home(dest);
        let v = core.bump_version();
        self.notices.post([WriteNotice { obj, version: v }]);
        true
    }

    /// Sticky-set prefetch into `thread`'s heap at `node`. Returns payload bytes
    /// moved (headers included, as the fabric would account them).
    pub fn prefetch_into(
        &self,
        thread: ThreadId,
        node: NodeId,
        objs: impl IntoIterator<Item = ObjectId>,
    ) -> usize {
        let mut total = 0;
        for obj in objs {
            let core = self.object(obj);
            if core.home() == node {
                continue;
            }
            let entry = self.spaces[thread.index()].entry_or_insert(obj, AccessEntry::absent);
            let mut e = entry.lock();
            if e.real == RealState::CacheValid {
                continue;
            }
            let (data, version) = core.with_home_data(|d| (d.clone(), core.version()));
            e.data = Some(data);
            e.cached_version = version;
            e.state = AccessState::Valid;
            e.real = RealState::CacheValid;
            total += core.payload_bytes() + OBJ_HEADER_BYTES;
        }
        total
    }

    /// Flush then drop `thread`'s entire heap (thread migration).
    pub fn drop_thread_cache(&self, thread: ThreadId, node: NodeId) {
        self.flush_thread(thread, node);
        self.spaces[thread.index()].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_entry_shapes() {
        let e = AccessEntry::home_resident();
        assert_eq!(e.state, AccessState::Home);
        assert_eq!(e.real, RealState::HomeResident);
        assert!(e.data.is_none() && e.twin.is_none() && !e.dirty);

        let mut e = AccessEntry::absent();
        e.real = RealState::CacheValid;
        e.state = AccessState::FalseInvalid;
        e.cancel_false_invalid();
        assert_eq!(e.state, AccessState::Valid);
    }

    #[test]
    fn seed_engine_runs_the_hlrc_cycle() {
        let g = ReferenceGos::new(2, 2);
        let c = g.classes().register_scalar("X", 2);
        let obj = g.alloc_scalar(NodeId(0), c, Some(&[1.0, 2.0])).id;

        // Thread 1 on node 1: cold fault, then write.
        let (_, out) = g.read(ThreadId(1), NodeId(1), obj, |d| d[0]);
        assert!(out.real_fault && out.first_touch);
        let (_, out) = g.write(ThreadId(1), NodeId(1), obj, |d| d[0] = 9.0);
        assert!(!out.faulted());
        assert_eq!(g.flush_thread(ThreadId(1), NodeId(1)), 1);

        // Thread 0 at home applies the notice and sees the write.
        assert_eq!(g.apply_notices(ThreadId(0), NodeId(0)), 1);
        let (v, out) = g.read(ThreadId(0), NodeId(0), obj, |d| d[0]);
        assert_eq!(v, 9.0);
        assert!(out.first_touch && !out.real_fault, "home access never faults");

        // Arm + trap + cancel.
        assert_eq!(g.set_false_invalid(ThreadId(0), [obj]), 1);
        let (_, out) = g.read(ThreadId(0), NodeId(0), obj, |d| d[0]);
        assert!(out.false_invalid && !out.real_fault);
        assert_eq!(g.access_state(ThreadId(0), obj), Some(AccessState::Home));
    }
}
